"""Package metadata for the eg-walker reproduction.

The package ships a ``py.typed`` marker (PEP 561): the ``repro.core`` /
``repro.history`` / ``repro.storage`` packages are checked under
``mypy --strict`` in CI (see ``mypy.ini``), so downstream users get full
inline types.
"""

from setuptools import find_packages, setup

setup(
    name="repro-eg-walker",
    version="0.8.0",
    description=(
        "Reproduction of 'Collaborative Text Editing with Eg-walker: Better, "
        "Faster, Smaller' (EuroSys 2025): event-graph replay, history "
        "browsing, columnar storage, and a collaboration server"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=[],  # stdlib only, by design
    extras_require={
        "dev": ["pytest", "hypothesis", "mypy"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Developers",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Software Development :: Libraries",
        "Typing :: Typed",
    ],
)
