"""Table 1 — editing trace statistics.

Regenerates the statistics the paper reports for each benchmark trace (number
of events, average concurrency, graph runs, authors, surviving characters,
final size) and prints them next to the paper's values.  The timing itself is
incidental; the deliverable is the table, which is echoed into the benchmark
report via ``extra_info``.
"""

from __future__ import annotations

from repro.traces.datasets import PAPER_TABLE1
from repro.traces.stats import compute_stats


def test_table1_statistics(benchmark, trace):
    stats = benchmark.pedantic(compute_stats, args=(trace,), rounds=1, iterations=1)
    row = stats.as_row()
    paper_row = PAPER_TABLE1[trace.name]
    benchmark.extra_info["measured"] = row
    benchmark.extra_info["paper"] = paper_row

    # Structural sanity: the trace has the right *shape* relative to the paper.
    assert row["events_k"] > 0
    if paper_row["avg_concurrency"] == 0.0:
        assert row["avg_concurrency"] == 0.0
        assert row["graph_runs"] == 1
    else:
        assert row["avg_concurrency"] > 0.0
        assert row["graph_runs"] > 1
    assert row["authors"] >= 1
    assert 0 < row["chars_remaining_pct"] <= 100
