"""Ablation X1 — sensitivity of Eg-walker to the topological-sort order (§4.3).

The paper notes that on highly concurrent graphs (A2) a poorly chosen
traversal order makes merging up to 8× slower, because the walker has to
retreat and advance events far more often.  This benchmark replays the
concurrent and asynchronous traces under the branch-aware heuristic, the plain
local order, and a deliberately interleaved (breadth-first) order.
"""

from __future__ import annotations

import pytest

from repro.core.walker import EgWalker
from repro.traces.datasets import get_trace

STRATEGIES = ["branch_aware", "local", "interleaved"]
TRACES = ["C1", "C2", "A1", "A2"]


@pytest.mark.parametrize("trace_name", TRACES)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_sort_order_sensitivity(benchmark, trace_name, strategy):
    trace = get_trace(trace_name)
    walker = EgWalker(trace.graph, sort_strategy=strategy)
    benchmark.group = f"x1-sort-order-{trace_name}"
    text = benchmark.pedantic(walker.replay_text, rounds=1, iterations=1)
    stats = walker.last_stats
    benchmark.extra_info["trace"] = trace_name
    benchmark.extra_info["sort_order"] = strategy
    benchmark.extra_info["retreats"] = stats.retreats
    benchmark.extra_info["advances"] = stats.advances
    # The traversal order must never change the result (Lemma C.8).
    assert text == trace.final_text
