"""Figure 11 — file size when the full editing history is retained.

Compares the Eg-walker columnar event-graph encodings (§3.8) — the legacy v2
interleaved layout and the v3 random-access container with per-column
compression — with and without a cached copy of the final document, against
the Automerge-like full-history format.  The lightly shaded lower bound in
the paper's chart — the concatenated length of all inserted text — is
reported alongside.

The v3 variants carry a structural gate: on every trace family the v3 file
must be no larger than the v2 file it replaces (same options), which is the
"Smaller" extension claimed by ROADMAP item 2.
"""

from __future__ import annotations

import pytest

from repro.bench.adapters import AutomergeLikeAdapter, EgWalkerAdapter

VARIANTS = [
    "egwalker",
    "egwalker+cached-doc",
    "egwalker-v3",
    "egwalker-v3+cached-doc",
    "automerge-like",
]


@pytest.mark.parametrize("variant", VARIANTS)
def test_full_history_file_size(benchmark, trace, variant):
    benchmark.group = f"fig11-filesize-{trace.name}"
    inserted_text_bytes = sum(
        len(e.op.content.encode()) for e in trace.graph.events() if e.op.is_insert
    )

    if variant == "automerge-like":
        adapter = AutomergeLikeAdapter()
        outcome = adapter.merge(trace)
        encode = lambda: adapter.save(trace, outcome)  # noqa: E731
    else:
        cached = variant.endswith("+cached-doc")
        version = 3 if "-v3" in variant else 2
        adapter = EgWalkerAdapter(cache_final_doc=cached, format_version=version)
        outcome = adapter.merge(trace)
        encode = lambda: adapter.save(trace, outcome)  # noqa: E731

    data = benchmark.pedantic(encode, rounds=1, iterations=1)
    benchmark.extra_info["trace"] = trace.name
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["file_bytes"] = len(data)
    benchmark.extra_info["inserted_text_bytes"] = inserted_text_bytes

    if "-v3" not in variant:
        # The inserted text is a lower bound on any *uncompressed*
        # full-history format (v3 compresses per column, so it may dip below).
        assert len(data) > inserted_text_bytes
    if variant.startswith("egwalker"):
        # The event-graph encoding keeps the overhead over raw text modest.
        assert len(data) < inserted_text_bytes * 4 + 10_000
    if "-v3" in variant:
        # The "Smaller" gate: v3 must never regress on v2 for any family.
        v2_data = EgWalkerAdapter(cache_final_doc=cached).save(trace, outcome)
        assert len(data) <= len(v2_data), (
            f"v3 file ({len(data)} B) larger than v2 ({len(v2_data)} B) on {trace.name}"
        )
