"""Figure 11 — file size when the full editing history is retained.

Compares the Eg-walker columnar event-graph encoding (§3.8), with and without
a cached copy of the final document, against the Automerge-like full-history
format.  The lightly shaded lower bound in the paper's chart — the
concatenated length of all inserted text — is reported alongside.
"""

from __future__ import annotations

import pytest

from repro.bench.adapters import AutomergeLikeAdapter, EgWalkerAdapter

VARIANTS = ["egwalker", "egwalker+cached-doc", "automerge-like"]


@pytest.mark.parametrize("variant", VARIANTS)
def test_full_history_file_size(benchmark, trace, variant):
    benchmark.group = f"fig11-filesize-{trace.name}"
    inserted_text_bytes = sum(
        len(e.op.content.encode()) for e in trace.graph.events() if e.op.is_insert
    )

    if variant == "automerge-like":
        adapter = AutomergeLikeAdapter()
        outcome = adapter.merge(trace)
        encode = lambda: adapter.save(trace, outcome)  # noqa: E731
    else:
        adapter = EgWalkerAdapter(cache_final_doc=(variant == "egwalker+cached-doc"))
        outcome = adapter.merge(trace)
        encode = lambda: adapter.save(trace, outcome)  # noqa: E731

    data = benchmark.pedantic(encode, rounds=1, iterations=1)
    benchmark.extra_info["trace"] = trace.name
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["file_bytes"] = len(data)
    benchmark.extra_info["inserted_text_bytes"] = inserted_text_bytes

    # The inserted text is a lower bound on any full-history format.
    assert len(data) > inserted_text_bytes
    if variant.startswith("egwalker"):
        # The event-graph encoding keeps the overhead over raw text modest.
        assert len(data) < inserted_text_bytes * 4 + 10_000
