"""End-to-end replay throughput — the hot-path acceptance curve.

A fresh replica consumes a whole trace in small batches (see
:func:`repro.bench.harness.run_replay_throughput`): the live-session shape,
where every batch is one merge against a growing history.  Two traces bracket
the behaviour:

* **S3** (sequential): every delivery takes the transform-free fast path, so
  the replica never builds walker state at all;
* **C2** (concurrent): two authors interleave, so merges run the walker
  against the resident :class:`~repro.core.merge_engine.WalkerCheckpoint` —
  the trace that measures whether checkpoints actually survive between
  merges.  Every re-carving interop split or in-place run extension that
  *drops* the checkpoint forces the next merge to re-replay the whole
  post-critical-cut window, which multiplies ``replayed_window_events``.

Results (events/sec plus the attribution counters) are written to
``BENCH_replay_throughput.json`` so the perf trajectory accumulates alongside
``BENCH_merge_latency.json``.  The regression gate asserts on **work
counters**, not wall-clock: machine speed cancels out, so a regression back
to checkpoint-dropping (or to fast-path misses on sequential input) fails on
any hardware.

``REPRO_TRACE_SCALE`` scales the traces (the perf-smoke CI job runs reduced
ones); the JSON always records the scale used.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.harness import run_replay_throughput
from repro.traces.datasets import default_scale, get_trace

TRACE_NAMES = ("S3", "C2")
BATCH_SIZE = 8
RESULT_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_replay_throughput.json"
)


@pytest.fixture(scope="module")
def throughput_rows():
    traces = {name: get_trace(name) for name in TRACE_NAMES}
    rows = run_replay_throughput(traces, TRACE_NAMES, BATCH_SIZE)
    payload = {
        "benchmark": "replay_throughput",
        "trace_scale": default_scale(),
        "batch_size": BATCH_SIZE,
        "rows": rows,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return rows


def _row(rows, trace, incremental):
    matches = [
        r for r in rows if r["trace"] == trace and r["incremental"] is incremental
    ]
    assert len(matches) == 1
    return matches[0]


def test_sequential_trace_never_touches_the_walker(throughput_rows):
    """S3 is purely sequential: every event must take the fast path, with no
    window replay and no walker state ever built."""
    row = _row(throughput_rows, "S3", True)
    assert row["fast_path_events"] == row["run_events"]
    assert row["replayed_window_events"] == 0
    assert row["checkpoints_kept"] == 0


def test_concurrent_trace_reuses_checkpoints(throughput_rows):
    """C2's concurrent episodes must run against resident walker state:
    checkpoints survive interop splits and extensions (patched, not
    dropped), so most walker merges are resumes, not fresh window replays."""
    row = _row(throughput_rows, "C2", True)
    assert row["checkpoints_dropped"] == 0, (
        "interop splits/extensions must patch the resident checkpoint "
        "surgically, not drop it"
    )
    assert row["resumed_merges"] > row["fresh_replays"]


def test_window_replay_stays_proportional_to_new_events(throughput_rows):
    """The redundant-work bound: total window events replayed across the
    whole C2 session must stay below the new events integrated.  (Before
    checkpoint patching the ratio was ~16x the other way.)"""
    row = _row(throughput_rows, "C2", True)
    assert row["replayed_window_events"] <= row["replayed_new_events"]


def test_incremental_beats_legacy_on_work(throughput_rows):
    """The ablation contrast, on counters: the legacy path replays every
    event through a rebuilt walker (fast-pathing nothing), the incremental
    engine fast-paths sequential input and replays a fraction of the
    window work on concurrent input."""
    for trace in TRACE_NAMES:
        legacy = _row(throughput_rows, trace, False)
        assert legacy["fast_path_events"] == 0
    assert _row(throughput_rows, "S3", True)["fast_path_events"] > 0
    c2_incremental = _row(throughput_rows, "C2", True)
    c2_legacy = _row(throughput_rows, "C2", False)
    assert (
        c2_incremental["replayed_window_events"]
        < c2_legacy["replayed_window_events"] / 4
    )


def test_result_file_written(throughput_rows):
    with open(RESULT_PATH, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["benchmark"] == "replay_throughput"
    assert len(payload["rows"]) == 2 * len(TRACE_NAMES)
