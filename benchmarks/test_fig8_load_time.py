"""Figure 8 (load series) — CPU time to reload a document from disk.

After a merge, each algorithm persists its document and we measure the time to
load it back into a state where the user can view and edit it:

* Eg-walker and OT read the cached plain-text snapshot — the event graph stays
  on disk — so loads are orders of magnitude faster than the CRDTs;
* the CRDTs must rebuild their full per-character structure (Automerge-like
  even replays its stored operation history), which is why the paper reports
  CRDT loads costing as much as merges.
"""

from __future__ import annotations

import pytest

from repro.bench.adapters import (
    AutomergeLikeAdapter,
    EgWalkerAdapter,
    OTAdapter,
    RefCRDTAdapter,
    YjsLikeAdapter,
)

ADAPTERS = {
    "eg-walker": EgWalkerAdapter,
    "ot": OTAdapter,
    "ref-crdt": RefCRDTAdapter,
    "automerge-like": AutomergeLikeAdapter,
    "yjs-like": YjsLikeAdapter,
}


@pytest.mark.parametrize("algorithm", list(ADAPTERS))
def test_load_document_from_disk(benchmark, trace, algorithm):
    adapter = ADAPTERS[algorithm]()
    outcome = adapter.merge(trace)
    if algorithm in ("eg-walker", "ot"):
        # The steady-state load path: just the cached document snapshot
        # (the event graph file is only opened when a concurrent merge needs it).
        saved = (
            adapter.save_snapshot_only(outcome, trace)
            if algorithm == "eg-walker"
            else adapter.save(trace, outcome)
        )
        loader = adapter.load_snapshot if algorithm == "eg-walker" else adapter.load
    else:
        saved = adapter.save(trace, outcome)
        loader = adapter.load

    benchmark.group = f"fig8-load-{trace.name}"
    rounds = 3 if algorithm in ("eg-walker", "ot") else 1
    text = benchmark.pedantic(loader, args=(saved,), rounds=rounds, iterations=1)
    benchmark.extra_info["trace"] = trace.name
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["file_bytes"] = len(saved)
    assert text == outcome.text
