"""Figure 10 — RAM while merging a remote editing trace.

For every algorithm and trace we record (via tracemalloc) the peak memory
allocated while merging and the memory still retained afterwards (the steady
state).  The paper's claims reproduced here:

* Eg-walker and OT retain only the document text once the merge completes —
  one to two orders of magnitude less than any CRDT (claim C5);
* Eg-walker's peak (while the merge is running) is in the same ballpark as the
  reference CRDT's steady state.

The benchmark time measured here includes the tracemalloc overhead, so it is
not comparable with Figure 8's numbers; the memory readings are attached as
``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.bench.adapters import (
    AutomergeLikeAdapter,
    EgWalkerAdapter,
    OTAdapter,
    RefCRDTAdapter,
    YjsLikeAdapter,
)
from repro.bench.memory import measure_memory

ADAPTERS = {
    "eg-walker": EgWalkerAdapter,
    "ot": OTAdapter,
    "ref-crdt": RefCRDTAdapter,
    "automerge-like": AutomergeLikeAdapter,
    "yjs-like": YjsLikeAdapter,
}


@pytest.mark.parametrize("algorithm", list(ADAPTERS))
def test_memory_while_merging(benchmark, trace, algorithm):
    adapter = ADAPTERS[algorithm]()
    benchmark.group = f"fig10-memory-{trace.name}"

    def run():
        return measure_memory(lambda: adapter.merge(trace))

    outcome, measurement = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["trace"] = trace.name
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["peak_kib"] = round(measurement.peak_bytes / 1024, 1)
    benchmark.extra_info["steady_kib"] = round(measurement.retained_bytes / 1024, 1)
    benchmark.extra_info["text_kib"] = round(len(outcome.text.encode()) / 1024, 1)
    # Run-length-encoding accounting: how many run events / span records the
    # replay touched vs. the per-character counts the seed implementation paid.
    benchmark.extra_info["char_events"] = trace.graph.num_chars
    benchmark.extra_info["run_events"] = len(trace.graph)
    if algorithm == "eg-walker":
        stats = adapter.last_stats
        assert stats is not None
        benchmark.extra_info["peak_span_records"] = stats.peak_records
        benchmark.extra_info["peak_span_record_chars"] = stats.peak_record_chars
        benchmark.extra_info["fast_path_run_events"] = stats.events_fast_path
        benchmark.extra_info["fast_path_chars"] = stats.chars_fast_path

    assert measurement.peak_bytes >= measurement.retained_bytes
    if algorithm in ("eg-walker", "ot"):
        # Steady state is essentially just the text (plus small constants).
        assert measurement.retained_bytes < 40 * len(outcome.text.encode()) + 200_000
    else:
        # CRDTs keep per-character metadata alive.
        assert measurement.retained_bytes > len(outcome.text.encode())


def test_steady_state_ratio_egwalker_vs_ref_crdt(benchmark, all_traces):
    """Claim C5: Eg-walker's steady state is far below the reference CRDT's."""

    def run():
        ratios = {}
        for name, trace in all_traces.items():
            _, eg = measure_memory(lambda: EgWalkerAdapter().merge(trace))
            _, crdt = measure_memory(lambda: RefCRDTAdapter().merge(trace))
            ratios[name] = crdt.retained_bytes / max(1, eg.retained_bytes)
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["crdt_over_egwalker_steady_ratio"] = {
        name: round(value, 1) for name, value in ratios.items()
    }
    assert all(value > 2 for value in ratios.values())
