"""Per-merge latency vs. history length — the merge engine's acceptance curve.

A live replica receives one event at a time from a peer while its history
grows (see :func:`repro.bench.harness.run_merge_latency`).  The quantity
that matters is the cost of *each* merge as a function of how much history
already exists:

* the incremental :class:`~repro.core.merge_engine.MergeEngine` must be
  **flat** — a sequential delivery touches exactly the new event (fast
  path), and a concurrent delivery touches the new event plus the small
  post-critical-cut window kept resident between merges;
* the legacy rebuild path (``incremental=False``) grows **linearly**: every
  merge materialises the full local order and re-scans it for critical
  versions, regardless of how little arrived.

Both the latency and the engine's own work counters are recorded per history
checkpoint and written to ``BENCH_merge_latency.json`` (the perf-smoke CI
job uploads it, so the perf trajectory accumulates).  The regression gate
asserts on the **work counters**, not wall-clock: per-merge events touched
must stay constant for the engine and must scale with history for the
rebuild path, so a regression back to O(history) bookkeeping fails the test
on any machine, however fast.

``REPRO_MERGE_LATENCY_EVENTS`` scales the history length (default 1600).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.harness import run_merge_latency

MAX_EVENTS = int(os.environ.get("REPRO_MERGE_LATENCY_EVENTS", "1600"))
CHECKPOINTS = [MAX_EVENTS // 8, MAX_EVENTS // 4, MAX_EVENTS // 2, MAX_EVENTS]
RESULT_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_merge_latency.json"
)


@pytest.fixture(scope="module")
def latency_rows():
    rows = run_merge_latency(MAX_EVENTS, CHECKPOINTS)
    payload = {
        "benchmark": "merge_latency",
        "max_events": MAX_EVENTS,
        "checkpoints": CHECKPOINTS,
        "rows": rows,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return rows


def _series(rows, incremental, delivery):
    return [
        r for r in rows if r["incremental"] is incremental and r["delivery"] == delivery
    ]


def test_incremental_sequential_merges_are_flat(latency_rows):
    """Fast-path deliveries touch exactly the new event at every history
    length — the flat curve, asserted on work counters."""
    series = _series(latency_rows, True, "sequential")
    assert len(series) == len(CHECKPOINTS)
    assert all(row["merge_work_events"] == 1 for row in series)


def test_incremental_concurrent_merges_are_flat(latency_rows):
    """Concurrent deliveries replay the resident window, whose size is set
    by the concurrency (O(1) here), not by the history length."""
    series = _series(latency_rows, True, "concurrent")
    works = [row["merge_work_events"] for row in series]
    assert max(works) <= 8, works
    assert works[0] == works[-1], "window size must not grow with history"


def test_incremental_engine_never_does_o_history_bookkeeping(latency_rows):
    summary = _series(latency_rows, True, "summary")[0]
    assert summary["walkers_rebuilt"] == 0
    assert summary["cut_scan_events"] == 0
    assert summary["order_events_materialised"] == 0
    assert summary["fast_path_merges"] >= summary["merges"] * 0.9


def test_legacy_rebuild_path_grows_linearly(latency_rows):
    """The ablation contrast: per-merge work scales with history length."""
    for delivery in ("sequential", "concurrent"):
        series = _series(latency_rows, False, delivery)
        first, last = series[0], series[-1]
        assert last["merge_work_events"] >= last["history_events"]
        # Work grows one-for-one with the history between the checkpoints.
        assert last["merge_work_events"] - first["merge_work_events"] >= (
            last["history_events"] - first["history_events"]
        )


def test_result_file_written(latency_rows):
    with open(RESULT_PATH, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["benchmark"] == "merge_latency"
    assert len(payload["rows"]) == 2 * (2 * len(CHECKPOINTS) + 1)
