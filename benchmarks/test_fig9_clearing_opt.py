"""Figure 9 — Eg-walker merge time with and without the §3.5 optimisations.

The state-clearing / fast-path optimisation is what lets Eg-walker skip the
CRDT machinery entirely on the (dominant) sequential portions of a history.
The paper reports a 5–10× speed-up on the sequential traces and essentially no
difference on the highly concurrent ones (A2 has no critical versions at all);
this benchmark reproduces both halves of that comparison.
"""

from __future__ import annotations

import pytest

from repro.core.walker import EgWalker


@pytest.mark.parametrize("optimisation", ["enabled", "disabled"])
def test_merge_with_and_without_clearing(benchmark, trace, optimisation):
    walker = EgWalker(trace.graph, enable_clearing=(optimisation == "enabled"))
    benchmark.group = f"fig9-{trace.name}"
    text = benchmark.pedantic(walker.replay_text, rounds=1, iterations=1)
    stats = walker.last_stats
    benchmark.extra_info["trace"] = trace.name
    benchmark.extra_info["optimisation"] = optimisation
    benchmark.extra_info["fast_path_events"] = stats.events_fast_path
    benchmark.extra_info["state_clears"] = stats.state_clears
    benchmark.extra_info["peak_records"] = stats.peak_records
    assert text == trace.final_text
    if optimisation == "disabled":
        assert stats.events_fast_path == 0
    elif trace.kind == "sequential":
        # Sequential histories are entirely fast-pathed when the optimisation is on.
        assert stats.events_fast_path == len(trace.graph)
