"""Collaboration-server latency and throughput under concurrent clients.

Real sockets, real frames: a :class:`~repro.server.CollabServer` on loopback
is driven by the loadgen in two modes —

* **live** — N full-replica WebSocket clients typing concurrently at a fixed
  cadence.  Delivery latency is measured per run event from the sender's
  ``send`` to every *other* replica's apply, so the reported p50/p99 include
  framing, the event loop, the server's causal buffering and the client-side
  merge.  The client count sweeps (2, 4, 8 by default), which is the paper's
  live-session shape at increasing fan-out.
* **trace replay** — the A1 trace-suite session (24 authors at full scale,
  8 at the CI scale) replayed with one WebSocket client per author, each
  feeding its author's events as their causal parents become visible.  The
  final text must match the per-character oracle byte for byte.

Every row lands in ``BENCH_server_latency.json`` (sustained edits/sec, p50
and p99 delivery latency, client count, leak counts).  The regression gates
are machine-independent: byte-identical convergence everywhere, zero events
parked in any causal buffer after quiesce, and ≥ 8 concurrent clients in the
replay row.  Wall-clock numbers are recorded for the trajectory, not gated.

Tunables: ``REPRO_SERVER_BENCH_CLIENTS`` (comma list, default ``2,4,8``),
``REPRO_SERVER_BENCH_EDITS`` (edits per client, default 30) and
``REPRO_SERVER_TRACE_SCALE`` (A1 scale, default 0.1 — the smallest scale
with 8 distinct authors).
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile

import pytest

from repro.server import CollabServer, DurabilityOptions, run_loadgen, run_trace_replay
from repro.traces.datasets import get_trace

RESULT_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_server_latency.json"
)
CLIENT_COUNTS = tuple(
    int(n) for n in os.environ.get("REPRO_SERVER_BENCH_CLIENTS", "2,4,8").split(",")
)
EDITS_PER_CLIENT = int(os.environ.get("REPRO_SERVER_BENCH_EDITS", "30"))
TRACE_SCALE = float(os.environ.get("REPRO_SERVER_TRACE_SCALE", "0.1"))
REPLAY_TRACE = "A1"
#: Durability ablation: the same live load with the WAL off, with fsync
#: batched by the group-commit loop, and with an fsync per ingested delta.
DURABILITY_MODES = ("off", "group", "always")
ABLATION_CLIENTS = int(os.environ.get("REPRO_SERVER_BENCH_ABLATION_CLIENTS", "4"))


async def _collect_rows() -> list[dict]:
    rows = []
    for clients in CLIENT_COUNTS:
        async with CollabServer() as server:
            result = await run_loadgen(
                server.host,
                server.port,
                doc=f"live-{clients}",
                clients=clients,
                edits_per_client=EDITS_PER_CLIENT,
                edit_interval=0.002,
                transport="ws",
            )
        rows.append(result.as_row())
    trace = get_trace(REPLAY_TRACE, TRACE_SCALE)
    async with CollabServer() as server:
        result = await run_trace_replay(server.host, server.port, trace)
    row = result.as_row()
    row["trace"] = REPLAY_TRACE
    row["trace_scale"] = TRACE_SCALE
    rows.append(row)
    return rows


async def _collect_durability_rows() -> list[dict]:
    """The same live WS load at each durability setting, WAL stats attached.

    Wall-clock cost of fsync varies wildly across filesystems, so the gates
    below are structural (fsync counts, record counts, convergence); the
    edits/sec and latency columns land in the JSON for the trajectory.
    """
    rows = []
    for mode in DURABILITY_MODES:
        with tempfile.TemporaryDirectory() as tmp:
            kwargs = {}
            if mode != "off":
                kwargs = dict(
                    data_dir=tmp,
                    durability=DurabilityOptions(
                        fsync_policy=mode, group_interval=0.01
                    ),
                )
            async with CollabServer(**kwargs) as server:
                result = await run_loadgen(
                    server.host,
                    server.port,
                    doc="ablation",
                    clients=ABLATION_CLIENTS,
                    edits_per_client=EDITS_PER_CLIENT,
                    edit_interval=0.002,
                    transport="ws",
                )
                row = result.as_row()
                row["durability"] = mode
                if mode != "off":
                    row["wal"] = server.room("ablation").storage.stats.as_dict()
            rows.append(row)
    return rows


@pytest.fixture(scope="module")
def latency_rows():
    rows = asyncio.run(_collect_rows())
    durability_rows = asyncio.run(_collect_durability_rows())
    payload = {
        "benchmark": "server_latency",
        "client_counts": list(CLIENT_COUNTS),
        "edits_per_client": EDITS_PER_CLIENT,
        "replay_trace": REPLAY_TRACE,
        "replay_trace_scale": TRACE_SCALE,
        "rows": rows,
        "durability_rows": durability_rows,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return rows


@pytest.fixture(scope="module")
def durability_rows(latency_rows):
    with open(RESULT_PATH, encoding="utf-8") as fh:
        return json.load(fh)["durability_rows"]


def _live_rows(rows):
    return [r for r in rows if r["mode"] == "live"]


def _replay_row(rows):
    matches = [r for r in rows if r["mode"].startswith("trace:")]
    assert len(matches) == 1
    return matches[0]


def test_live_sessions_converge_at_every_fanout(latency_rows):
    """Byte-identical convergence across all clients and the server replica,
    at every client count in the sweep."""
    live = _live_rows(latency_rows)
    assert [row["clients"] for row in live] == list(CLIENT_COUNTS)
    for row in live:
        assert row["converged"], row
        assert row["edits"] == row["clients"] * EDITS_PER_CLIENT


def test_latency_is_measured_per_delivery(latency_rows):
    """Every live row must carry real latency samples (sender send → peer
    apply) and a sustained edits/sec figure."""
    for row in _live_rows(latency_rows):
        if row["clients"] < 2:
            continue
        assert row["latency_samples"] > 0, row
        assert row["latency_p99_ms"] >= row["latency_p50_ms"] > 0, row
        assert row["edits_per_sec"] > 0, row


def test_no_buffer_leaks_after_quiesce(latency_rows):
    """After convergence no causal buffer — the room's inbound, any session's
    outbound, any client's — may still hold parked events."""
    for row in latency_rows:
        assert row["leaked_events"] == 0, row


def test_trace_replay_with_eight_plus_ws_clients(latency_rows):
    """The acceptance gate: ≥ 8 concurrent WebSocket clients replaying a
    trace-suite session to byte-identical convergence against the
    per-character oracle."""
    row = _replay_row(latency_rows)
    assert row["clients"] >= 8, row
    assert row["converged"], row
    assert row["leaked_events"] == 0, row


def test_durability_ablation_converges_in_every_mode(durability_rows):
    """Durability must never cost correctness: the identical live load
    converges byte-identically with the WAL off, group-committed, and
    fsynced per delta."""
    assert [row["durability"] for row in durability_rows] == list(DURABILITY_MODES)
    for row in durability_rows:
        assert row["converged"], row
        assert row["leaked_events"] == 0, row


def test_durability_ablation_wal_accounting(durability_rows):
    """Structural gates on the WAL stats: both durable modes persisted every
    ingested delta, and fsync-per-delta paid at least as many fsyncs as the
    group-commit loop (that gap is the latency headroom the group policy
    buys)."""
    by_mode = {row["durability"]: row for row in durability_rows}
    assert "wal" not in by_mode["off"]
    group, always = by_mode["group"]["wal"], by_mode["always"]["wal"]
    for wal in (group, always):
        assert wal["records_appended"] > 0, wal
        assert wal["events_appended"] > 0, wal
        assert wal["torn_writes"] == 0, wal
    assert always["fsyncs"] >= always["records_appended"]
    assert always["fsyncs"] >= group["fsyncs"]


def test_result_file_written(latency_rows):
    with open(RESULT_PATH, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["benchmark"] == "server_latency"
    assert len(payload["rows"]) == len(CLIENT_COUNTS) + 1
    assert len(payload["durability_rows"]) == len(DURABILITY_MODES)
