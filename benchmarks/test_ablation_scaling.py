"""Ablation X2 — merge cost of two long offline branches (§1, §3.7).

Two users each perform k events while offline and then merge.  The paper's
complexity analysis says Eg-walker pays O((k+m)·log(k+m)) while OT pays at
least O(k·m); this benchmark sweeps the branch length and records the cost of
each algorithm so the scaling exponents (and the crossover against the
reference CRDT) can be read off the report.
"""

from __future__ import annotations

import pytest

from repro.core.walker import EgWalker
from repro.crdt.ref_crdt import RefCRDTDocument
from repro.ot.ot_replica import OTDocument
from repro.traces.generator import generate_async

BRANCH_SIZES = [250, 500, 1000, 2000]
ALGORITHMS = ["eg-walker", "ot", "ref-crdt"]


def _two_branch_trace(branch_size: int):
    return generate_async(
        f"scaling-{branch_size}",
        target_events=2 * branch_size,
        seed=9000 + branch_size,
        concurrent_branches=2,
        events_per_branch=branch_size,
        authors=2,
    )


@pytest.fixture(scope="module", params=BRANCH_SIZES)
def scaling_trace(request):
    return request.param, _two_branch_trace(request.param)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_two_branch_merge_scaling(benchmark, scaling_trace, algorithm):
    branch_size, trace = scaling_trace
    benchmark.group = f"x2-scaling-k={branch_size}"
    benchmark.extra_info["branch_events"] = branch_size
    benchmark.extra_info["total_events"] = len(trace.graph)
    benchmark.extra_info["algorithm"] = algorithm

    if algorithm == "eg-walker":
        walker = EgWalker(trace.graph)
        text = benchmark.pedantic(walker.replay_text, rounds=1, iterations=1)
        assert text == trace.final_text
    elif algorithm == "ot":
        document = OTDocument()
        text = benchmark.pedantic(
            document.merge_event_graph, args=(trace.graph,), rounds=1, iterations=1
        )
        benchmark.extra_info["ot_work_units"] = document.work_units
        assert len(text) == len(trace.final_text)
    else:
        document = RefCRDTDocument()
        text = benchmark.pedantic(
            document.merge_event_graph, args=(trace.graph,), rounds=1, iterations=1
        )
        assert text == trace.final_text
