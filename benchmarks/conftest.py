"""Shared fixtures for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper (see
DESIGN.md §3 and EXPERIMENTS.md).  The traces are the synthetic S/C/A suite of
:mod:`repro.traces.datasets`; their size can be scaled with the
``REPRO_TRACE_SCALE`` environment variable (default 1.0).  Traces are generated
once per session and shared across benchmark modules.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

from repro.traces.datasets import TRACE_NAMES, get_trace  # noqa: E402


def pytest_report_header(config):
    scale = os.environ.get("REPRO_TRACE_SCALE", "1.0")
    return f"repro benchmark traces: {', '.join(TRACE_NAMES)} (REPRO_TRACE_SCALE={scale})"


@pytest.fixture(scope="session", params=TRACE_NAMES)
def trace(request):
    """One benchmark trace per parametrised run (S1..A2)."""
    return get_trace(request.param)


@pytest.fixture(scope="session")
def all_traces():
    return {name: get_trace(name) for name in TRACE_NAMES}
