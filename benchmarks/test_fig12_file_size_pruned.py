"""Figure 12 — file size when deleted text content is omitted (as Yjs does).

Compares the pruned Eg-walker event-graph encoding (structure kept, deleted
characters' content dropped) against the Yjs-like item format, with the final
document size as the lower bound.
"""

from __future__ import annotations

import pytest

from repro.bench.adapters import EgWalkerAdapter, YjsLikeAdapter

VARIANTS = ["egwalker-pruned", "yjs-like"]


@pytest.mark.parametrize("variant", VARIANTS)
def test_pruned_file_size(benchmark, trace, variant):
    benchmark.group = f"fig12-filesize-{trace.name}"
    final_doc_bytes = len(trace.final_text.encode())

    if variant == "yjs-like":
        adapter = YjsLikeAdapter()
        outcome = adapter.merge(trace)
        encode = lambda: adapter.save(trace, outcome)  # noqa: E731
    else:
        adapter = EgWalkerAdapter()
        outcome = adapter.merge(trace)
        encode = lambda: adapter.save_pruned(trace, outcome)  # noqa: E731

    data = benchmark.pedantic(encode, rounds=1, iterations=1)
    benchmark.extra_info["trace"] = trace.name
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["file_bytes"] = len(data)
    benchmark.extra_info["final_doc_bytes"] = final_doc_bytes

    # The final document text is (approximately) a lower bound for both formats.
    assert len(data) > final_doc_bytes * 0.5
