"""Figure 12 — file size when deleted text content is omitted (as Yjs does).

Compares the pruned Eg-walker event-graph encodings (structure kept, deleted
characters' content dropped) — legacy v2 and the compressed v3 container —
against the Yjs-like item format, with the final document size as the lower
bound.  The v3 variant is gated to never exceed v2 on any trace family.
"""

from __future__ import annotations

import pytest

from repro.bench.adapters import EgWalkerAdapter, YjsLikeAdapter

VARIANTS = ["egwalker-pruned", "egwalker-v3-pruned", "yjs-like"]


@pytest.mark.parametrize("variant", VARIANTS)
def test_pruned_file_size(benchmark, trace, variant):
    benchmark.group = f"fig12-filesize-{trace.name}"
    final_doc_bytes = len(trace.final_text.encode())

    if variant == "yjs-like":
        adapter = YjsLikeAdapter()
        outcome = adapter.merge(trace)
        encode = lambda: adapter.save(trace, outcome)  # noqa: E731
    else:
        version = 3 if "-v3" in variant else 2
        adapter = EgWalkerAdapter(format_version=version)
        outcome = adapter.merge(trace)
        encode = lambda: adapter.save_pruned(trace, outcome)  # noqa: E731

    data = benchmark.pedantic(encode, rounds=1, iterations=1)
    benchmark.extra_info["trace"] = trace.name
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["file_bytes"] = len(data)
    benchmark.extra_info["final_doc_bytes"] = final_doc_bytes

    if "-v3" not in variant:
        # The final document text is (approximately) a lower bound for the
        # uncompressed formats (v3 compresses per column and may dip below).
        assert len(data) > final_doc_bytes * 0.5
    else:
        # The "Smaller" gate: pruned v3 must never regress on pruned v2.
        v2_data = EgWalkerAdapter().save_pruned(trace, outcome)
        assert len(data) <= len(v2_data), (
            f"pruned v3 ({len(data)} B) larger than v2 ({len(v2_data)} B) "
            f"on {trace.name}"
        )
