"""Figure 8 (merge series) — CPU time to merge a remote editing trace.

For every trace and every algorithm, measure the time to integrate the entire
editing history — as received from a remote replica — into an empty local
document.  The paper's headline results reproduced here:

* on sequential traces (S1–S3) Eg-walker and OT are fast and the CRDTs pay a
  constant per-character overhead;
* on the asynchronous traces (A1–A2) OT blows up quadratically while Eg-walker
  stays close to the reference CRDT;
* Eg-walker is never far behind the best algorithm on any trace (claim C1).
"""

from __future__ import annotations

import pytest

from repro.bench.adapters import (
    AutomergeLikeAdapter,
    EgWalkerAdapter,
    OTAdapter,
    RefCRDTAdapter,
    YjsLikeAdapter,
)

ADAPTERS = {
    "eg-walker": EgWalkerAdapter,
    "ot": OTAdapter,
    "ref-crdt": RefCRDTAdapter,
    "automerge-like": AutomergeLikeAdapter,
    "yjs-like": YjsLikeAdapter,
}


@pytest.mark.parametrize("algorithm", list(ADAPTERS))
def test_merge_remote_trace(benchmark, trace, algorithm):
    adapter = ADAPTERS[algorithm]()
    benchmark.group = f"fig8-merge-{trace.name}"
    outcome = benchmark.pedantic(adapter.merge, args=(trace,), rounds=1, iterations=1)
    benchmark.extra_info["trace"] = trace.name
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["events"] = len(trace.graph)
    benchmark.extra_info["final_chars"] = len(outcome.text)
    # Every algorithm must produce the same merged document as Eg-walker
    # produces (OT may reorder concurrent runs, so compare lengths there).
    if algorithm == "ot":
        assert len(outcome.text) == len(trace.final_text)
    else:
        assert outcome.text == trace.final_text
