"""Cold-load-to-first-text from a storage-v3 container — the selective-read
acceptance gate.

The production cold-start story (ROADMAP items 2–3) is: an evicted document
is a pruned v3 container with a snapshot column, and waking it up to *display*
must not pay for its history.  :func:`repro.bench.harness.run_cold_load`
persists every trace that way and loads it cold three ways (selective text,
lazy history, full decode); results land in ``BENCH_cold_load.json``.

The regression gates are **structural counters**, not timings (machine speed
cancels out, so a regression to eager hydration fails on any hardware):

* a cold text read materialises **zero** ``EventGraph`` events and touches
  only a fraction of the file's bytes;
* the first ``History`` access hydrates the remaining columns **exactly
  once** — repeated accesses never re-decode;
* the full decode baseline materialises every event, which is what the
  selective path is measured against.

``REPRO_TRACE_SCALE`` scales the traces (the storage-format CI job runs
reduced ones); the JSON always records the scale used.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.harness import run_cold_load
from repro.traces.datasets import TRACE_NAMES, default_scale, get_trace

RESULT_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_cold_load.json"
)


@pytest.fixture(scope="module")
def cold_load_rows():
    traces = {name: get_trace(name) for name in TRACE_NAMES}
    rows = run_cold_load(traces)
    payload = {
        "benchmark": "cold_load",
        "trace_scale": default_scale(),
        "rows": rows,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return rows


def _row(rows, trace):
    matches = [r for r in rows if r["trace"] == trace]
    assert len(matches) == 1
    return matches[0]


def test_cold_text_materialises_zero_events(cold_load_rows):
    """The headline claim: current text from a pruned v3 file without
    materialising a single event graph event."""
    for name in TRACE_NAMES:
        row = _row(cold_load_rows, name)
        assert row["cold_text_ok"], f"{name}: cold text does not match the oracle"
        assert row["cold_text_events_materialised"] == 0, (
            f"{name}: selective text read materialised "
            f"{row['cold_text_events_materialised']} events"
        )


def test_cold_text_reads_a_fraction_of_the_file(cold_load_rows):
    """Selective reads must skip the history columns' bytes, not just their
    decoding: the snapshot-only load stays well under the full file size."""
    for name in TRACE_NAMES:
        row = _row(cold_load_rows, name)
        assert row["cold_text_bytes_read"] < row["file_bytes"], name
        assert row["cold_text_read_fraction"] < 0.9, (
            f"{name}: cold text read {row['cold_text_read_fraction']:.0%} "
            "of the file; selective column reads are not selective"
        )


def test_history_hydrates_exactly_once(cold_load_rows):
    """Lazy hydration: first ``History`` access decodes the history columns
    once; the second access in the harness must not re-hydrate."""
    for name in TRACE_NAMES:
        row = _row(cold_load_rows, name)
        assert row["history_hydrations"] == 1, (
            f"{name}: {row['history_hydrations']} hydrations for two accesses"
        )


def test_full_load_materialises_every_event(cold_load_rows):
    """The baseline the selective path is measured against really does decode
    the whole graph."""
    for name in TRACE_NAMES:
        row = _row(cold_load_rows, name)
        assert row["full_load_events"] == len(get_trace(name).graph)
        assert row["full_load_bytes_read"] >= row["cold_text_bytes_read"]


def test_sequential_traces_serve_text_without_a_snapshot(cold_load_rows):
    """Linear histories reconstruct their text from ops+content alone
    (span-wise replay), even with no snapshot column stored."""
    for name in ("S1", "S2", "S3"):
        assert _row(cold_load_rows, name)["selective_text_without_snapshot"], name


def test_result_file_written(cold_load_rows):
    with open(RESULT_PATH, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["benchmark"] == "cold_load"
    assert len(payload["rows"]) == len(TRACE_NAMES)
