"""Tests for the collaboration server's wire protocol (socketless).

Covers the JSON frame codec (round trips, strict rejection of malformed
frames with machine-readable error codes) and the raw RFC 6455 frame codec
used by the WebSocket transport.
"""

import json

import pytest

from repro.core.ids import EventId, delete_op, insert_op
from repro.core.oplog import RemoteEvent
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    bye_frame,
    decode_frame,
    delta_frame,
    encode_frame,
    error_frame,
    hello_frame,
    presence_frame,
    welcome_frame,
)
from repro.server.wire import (
    OP_BINARY,
    OP_CLOSE,
    OP_PING,
    OP_TEXT,
    build_ws_frame,
    parse_ws_frame_header,
    websocket_accept_key,
)


def sample_events():
    return [
        RemoteEvent(
            id=EventId("alice", 0),
            parents=(),
            op=insert_op(0, "héllo ✎"),  # non-ASCII survives the codec
        ),
        RemoteEvent(
            id=EventId("bob", 4),
            parents=(EventId("alice", 6), EventId("carol", 2)),
            op=delete_op(3, 4),
        ),
    ]


class TestFrameRoundTrips:
    def test_delta_round_trip(self):
        events = sample_events()
        decoded = decode_frame(encode_frame(delta_frame(events)))
        assert decoded["type"] == "delta"
        assert decoded["events"] == events

    def test_hello_round_trip(self):
        ids = (EventId("alice", 6), EventId("bob", 4))
        decoded = decode_frame(encode_frame(hello_frame("doc-1", "carol", ids)))
        assert decoded["doc"] == "doc-1"
        assert decoded["agent"] == "carol"
        assert decoded["version"] == ids
        assert decoded["protocol"] == PROTOCOL_VERSION

    def test_welcome_round_trip(self):
        ids = (EventId("a", 0),)
        decoded = decode_frame(encode_frame(welcome_frame("d", "s7", ids)))
        assert decoded["session"] == "s7"
        assert decoded["version"] == ids

    def test_presence_round_trip(self):
        decoded = decode_frame(
            encode_frame(presence_frame("alice", [EventId("alice", 9)]))
        )
        assert decoded["agent"] == "alice"
        assert decoded["cursor"] == (EventId("alice", 9),)

    def test_error_and_bye_round_trip(self):
        err = decode_frame(encode_frame(error_frame("bad-op", "nope")))
        assert (err["code"], err["reason"]) == ("bad-op", "nope")
        assert decode_frame(encode_frame(bye_frame()))["type"] == "bye"

    def test_decode_accepts_bytes(self):
        raw = encode_frame(bye_frame()).encode("utf-8")
        assert decode_frame(raw)["type"] == "bye"


class TestMalformedFrames:
    """Every malformed frame maps to a ProtocolError with a stable code —
    the server answers with an ``error`` frame instead of dropping the
    connection, so the code is part of the wire contract."""

    def expect(self, code, text):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(text)
        assert excinfo.value.code == code

    def test_invalid_json(self):
        self.expect("bad-json", "{not json")

    def test_non_object_frame(self):
        self.expect("bad-frame", "[1,2,3]")

    def test_unknown_type(self):
        self.expect("unknown-type", json.dumps({"type": "teleport"}))

    def test_missing_field(self):
        self.expect("missing-field", json.dumps({"type": "delta"}))
        self.expect("missing-field", json.dumps({"type": "presence", "agent": "a"}))

    def test_bad_protocol_version(self):
        frame = hello_frame("d", "a")
        frame["protocol"] = PROTOCOL_VERSION + 1
        self.expect("bad-protocol-version", json.dumps(frame))

    def test_bad_id_shapes(self):
        for bad in (["alice"], ["alice", -1], ["alice", 1.5], [0, 1], "alice:0"):
            frame = delta_frame([])
            frame["events"] = [{"id": bad, "parents": [], "op": {"kind": "ins", "pos": 0, "content": "x"}}]
            self.expect("bad-id", json.dumps(frame))

    def test_bad_ops(self):
        cases = [
            {"kind": "ins", "pos": 0, "content": ""},  # empty insert
            {"kind": "ins", "pos": -1, "content": "x"},
            {"kind": "del", "pos": 0, "len": 0},
            {"kind": "del", "pos": 0},  # no length
            {"kind": "move", "pos": 0},  # unknown kind
            "not an object",
        ]
        for bad in cases:
            frame = delta_frame([])
            frame["events"] = [{"id": ["a", 0], "parents": [], "op": bad}]
            self.expect("bad-op", json.dumps(frame))

    def test_bad_event_shapes(self):
        frame = delta_frame([])
        frame["events"] = ["not an object"]
        self.expect("bad-event", json.dumps(frame))
        frame["events"] = [{"id": ["a", 0], "parents": "oops", "op": {"kind": "ins", "pos": 0, "content": "x"}}]
        self.expect("bad-event", json.dumps(frame))

    def test_oversized_frame(self):
        frame = delta_frame([])
        frame["padding"] = "x" * MAX_FRAME_BYTES
        self.expect("frame-too-large", json.dumps(frame))


class TestWebSocketFrameCodec:
    """The raw RFC 6455 codec, exercised without a socket."""

    def round_trip(self, opcode, payload, *, mask):
        raw = build_ws_frame(opcode, payload, mask=mask)
        parsed = parse_ws_frame_header(raw)
        assert parsed is not None
        got_opcode, fin, length, mask_key, header_size = parsed
        assert got_opcode == opcode and fin
        assert length == len(payload)
        body = raw[header_size : header_size + length]
        if mask_key is not None:
            body = bytes(b ^ mask_key[i % 4] for i, b in enumerate(body))
        assert body == payload
        return mask_key

    def test_unmasked_server_frame(self):
        assert self.round_trip(OP_TEXT, "server → client".encode(), mask=False) is None

    def test_masked_client_frame(self):
        assert self.round_trip(OP_TEXT, b"client to server", mask=True) is not None

    def test_length_encodings(self):
        # 7-bit, 16-bit and 64-bit payload length encodings.
        for size in (0, 125, 126, 65535, 65536):
            self.round_trip(OP_BINARY, b"a" * size, mask=True)

    def test_control_frames(self):
        self.round_trip(OP_PING, b"keepalive", mask=False)
        self.round_trip(OP_CLOSE, (1000).to_bytes(2, "big"), mask=False)

    def test_incomplete_header_returns_none(self):
        raw = build_ws_frame(OP_TEXT, b"x" * 300, mask=True)
        assert parse_ws_frame_header(raw[:1]) is None
        assert parse_ws_frame_header(raw[:3]) is None  # 16-bit length cut short

    def test_accept_key_rfc_vector(self):
        # The worked example from RFC 6455 §1.3.
        assert (
            websocket_accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )
