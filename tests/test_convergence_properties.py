"""Property-based tests: convergence of random collaborative editing sessions.

These are the randomised tests the paper mentions in §4 ("We also performed
randomised property testing on the implementations, including checking that
our implementations converge to the same result"): hypothesis generates random
multi-replica editing sessions (edits interleaved with merges), and every
algorithm configuration must agree on the final document.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import given, settings, strategies as st

from repro.core.document import Document
from repro.core.walker import EgWalker
from repro.crdt import SimpleListCRDT, event_graph_to_crdt_ops
from repro.ot import replay_ot

ALPHABET = "abcdefgh "


@dataclass(frozen=True)
class Edit:
    """One scripted action in a random session."""

    replica: int
    kind: str  # "insert", "delete" or "merge"
    position_seed: int
    char: str
    other: int


edit_strategy = st.builds(
    Edit,
    replica=st.integers(min_value=0, max_value=2),
    kind=st.sampled_from(["insert", "insert", "insert", "delete", "merge"]),
    position_seed=st.integers(min_value=0, max_value=10_000),
    char=st.sampled_from(ALPHABET),
    other=st.integers(min_value=0, max_value=2),
)


def run_session(script: list[Edit], num_replicas: int = 3) -> list[Document]:
    docs = [Document(f"user{i}") for i in range(num_replicas)]
    for step in script:
        doc = docs[step.replica % num_replicas]
        if step.kind == "insert":
            pos = step.position_seed % (len(doc.text) + 1)
            doc.insert(pos, step.char)
        elif step.kind == "delete":
            if len(doc.text) == 0:
                continue
            pos = step.position_seed % len(doc.text)
            doc.delete(pos)
        else:
            other = docs[step.other % num_replicas]
            if other is not doc:
                doc.merge(other)
    return docs


@given(st.lists(edit_strategy, min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_replicas_converge_after_full_exchange(script):
    """Strong eventual consistency: replicas with the same events agree (§2.1)."""
    docs = run_session(script)
    # Exchange everything, twice, so every replica has every event.
    for _ in range(2):
        for doc in docs:
            for other in docs:
                if doc is not other:
                    doc.merge(other)
    texts = {doc.text for doc in docs}
    assert len(texts) == 1


@given(st.lists(edit_strategy, min_size=1, max_size=50))
@settings(max_examples=40, deadline=None)
def test_every_walker_configuration_agrees(script):
    """The optimisations (§3.4–3.6) never change the result, only the cost."""
    docs = run_session(script)
    for doc in docs:
        for other in docs:
            if doc is not other:
                doc.merge(other)
    graph = docs[0].oplog.graph
    texts = {
        EgWalker(graph, backend=backend, enable_clearing=clearing).replay_text()
        for backend in ("list", "tree")
        for clearing in (True, False)
    }
    assert len(texts) == 1
    assert texts.pop() == docs[0].text


@given(st.lists(edit_strategy, min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_walker_agrees_with_independent_crdt(script):
    """Differential test against the independent list CRDT (§2.5 construction)."""
    docs = run_session(script)
    for doc in docs:
        for other in docs:
            if doc is not other:
                doc.merge(other)
    graph = docs[0].oplog.graph
    ops = event_graph_to_crdt_ops(graph)
    replica = SimpleListCRDT("oracle")
    replica.apply_all(ops)
    assert replica.text() == docs[0].text


@given(st.lists(edit_strategy, min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_ot_produces_a_document_of_the_same_shape(script):
    """OT interprets the same event graph into a document of the same length.

    OT may order concurrent insertion runs differently from Eg-walker, and a
    deletion whose index falls inside such a run can then target a different
    character, so character-for-character equality is not required — but no
    characters may be lost or duplicated overall.
    """
    docs = run_session(script)
    for doc in docs:
        for other in docs:
            if doc is not other:
                doc.merge(other)
    graph = docs[0].oplog.graph
    ot_text = replay_ot(graph).text
    assert len(ot_text) == len(docs[0].text)


@given(st.lists(edit_strategy, min_size=1, max_size=40), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_merge_is_idempotent_and_commutative(script, extra_seed):
    """Merging the same events repeatedly, or in a different order, changes nothing."""
    docs_a = run_session(script)
    docs_b = run_session(script)
    # docs_a merges in one order, docs_b in the reverse order.
    for doc in docs_a:
        for other in docs_a:
            if doc is not other:
                doc.merge(other)
                doc.merge(other)  # idempotent
    for doc in reversed(docs_b):
        for other in reversed(docs_b):
            if doc is not other:
                doc.merge(other)
    final_a = {doc.text for doc in docs_a}
    final_b = {doc.text for doc in docs_b}
    assert final_a == final_b
    assert len(final_a) == 1
