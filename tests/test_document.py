"""Tests for the high-level Document API: local editing, merging, history."""

import pytest

from repro.core.document import Document
from repro.core.ids import EventId
from repro.history import Version


class TestLocalEditing:
    def test_insert_and_read(self):
        doc = Document("alice")
        doc.insert(0, "hello")
        doc.insert(5, " world")
        assert doc.text == "hello world"
        assert len(doc) == 11

    def test_delete(self):
        doc = Document("alice")
        doc.insert(0, "hello world")
        removed = doc.delete(5, 6)
        assert removed == " world"
        assert doc.text == "hello"

    def test_empty_insert_is_noop(self):
        doc = Document("alice")
        doc.insert(0, "")
        assert doc.text == ""
        assert len(doc.oplog) == 0

    def test_insert_out_of_range(self):
        doc = Document("alice")
        with pytest.raises(IndexError):
            doc.insert(1, "x")

    def test_delete_out_of_range(self):
        doc = Document("alice")
        doc.insert(0, "ab")
        with pytest.raises(IndexError):
            doc.delete(1, 5)

    def test_events_are_run_length_encoded(self):
        doc = Document("alice")
        doc.insert(0, "abc")
        doc.delete(0, 2)
        # One event per run, covering all its characters.
        assert len(doc.oplog) == 2
        assert doc.oplog.graph.num_chars == 5

    def test_version_advances_with_edits(self):
        doc = Document("alice")
        assert doc.local_version == ()
        assert doc.version().is_root
        doc.insert(0, "ab")
        assert doc.local_version == (0,)
        assert doc.version() == Version([EventId("alice", 1)])
        # Typing straight on extends the frontier run in place (sender-side
        # coalescing): still one event, covering all four characters — but the
        # id-based handle advances (it names the run's new last character).
        doc.insert(2, "cd")
        assert doc.local_version == (0,)
        assert doc.version() == Version([EventId("alice", 3)])
        assert len(doc.oplog) == 1
        assert doc.oplog.graph.num_chars == 4
        # A non-continuing edit (here: a jump back) starts a new run event.
        doc.insert(0, "x")
        assert doc.local_version == (1,)

    def test_local_run_coalescing_can_be_disabled(self):
        doc = Document("alice", coalesce_local_runs=False)
        doc.insert(0, "ab")
        doc.insert(2, "cd")
        assert doc.local_version == (1,)
        assert len(doc.oplog) == 2

    # (OpLog.version deprecation parity is pinned in
    # tests/test_deprecation_shims.py::TestOpLogShims.)


class TestMerging:
    def test_one_way_merge(self):
        alice = Document("alice")
        alice.insert(0, "hello")
        bob = Document("bob")
        ops = bob.merge(alice)
        assert bob.text == "hello"
        # The whole run arrives as a single transformed operation.
        assert len(ops) == 1
        assert ops[0].content == "hello"

    def test_merge_is_idempotent(self):
        alice = Document("alice")
        alice.insert(0, "hello")
        bob = Document("bob")
        bob.merge(alice)
        assert bob.merge(alice) == []
        assert bob.text == "hello"

    def test_paper_figure1_scenario(self):
        user1 = Document("user1")
        user2 = Document("user2")
        user1.insert(0, "Helo")
        user2.merge(user1)
        user1.insert(3, "l")
        user2.insert(4, "!")
        user1.merge(user2)
        user2.merge(user1)
        assert user1.text == user2.text == "Hello!"

    def test_concurrent_deletes_converge(self):
        alice = Document("alice")
        alice.insert(0, "abcdef")
        bob = Document("bob")
        bob.merge(alice)
        alice.delete(1, 2)  # remove "bc"
        bob.delete(2, 2)  # remove "cd"
        alice.merge(bob)
        bob.merge(alice)
        assert alice.text == bob.text == "aef"

    def test_three_replicas_converge(self, two_branch_documents):
        alice, bob = two_branch_documents
        carol = Document("carol")
        carol.merge(alice)
        carol.insert(0, "[carol] ")
        for first, second in [(alice, bob), (bob, carol), (carol, alice)]:
            first.merge(second)
            second.merge(first)
        alice.merge(carol)
        bob.merge(carol)
        carol.merge(bob)
        alice.merge(bob)
        assert alice.text == bob.text == carol.text

    def test_merge_returns_transformed_operations(self, two_branch_documents):
        alice, bob = two_branch_documents
        before = alice.text
        ops = alice.merge(bob)
        assert ops, "merging a diverged replica must produce operations"
        # Replaying the returned operations over the old text reproduces the
        # new text (the incremental-update contract of §2.4).
        rebuilt = before
        for op in ops:
            rebuilt = op.apply_to(rebuilt)
        assert rebuilt == alice.text

    def test_offline_editing_long_branches(self):
        alice = Document("alice")
        alice.insert(0, "chapter one. ")
        bob = Document("bob")
        bob.merge(alice)
        # Both go offline and write a lot.
        for i in range(40):
            alice.insert(len(alice.text), f"alice sentence {i}. ")
        for i in range(40):
            bob.insert(len(bob.text), f"bob sentence {i}. ")
        alice.merge(bob)
        bob.merge(alice)
        assert alice.text == bob.text
        assert "alice sentence 39. " in alice.text
        assert "bob sentence 39. " in alice.text

    def test_exchange_via_remote_events(self):
        alice = Document("alice")
        alice.insert(0, "shared")
        bob = Document("bob")
        bob.apply_remote_events(alice.oplog.export_events())
        assert bob.text == "shared"
        bob.insert(6, "!")
        missing = bob.events_since(alice.version())
        assert [e.id for e in missing] == [EventId("bob", 0)]
        alice.apply_remote_events(missing)
        assert alice.text == "shared!"

    def test_events_since_accepts_raw_ids_and_version_handles(self):
        alice = Document("alice")
        alice.insert(0, "shared")
        bob = Document("bob")
        bob.merge(alice)
        bob.insert(6, "!")
        handle = alice.version()
        assert bob.events_since(handle) == bob.events_since(handle.ids)


class TestHistory:
    def test_text_at_saved_version(self):
        doc = Document("alice")
        doc.insert(0, "abc")
        version_after_abc = doc.version()
        doc.insert(3, "def")
        doc.delete(0, 1)
        assert doc.text_at(version_after_abc) == "abc"
        assert doc.text_at(doc.version()) == doc.text

    def test_version_handle_survives_run_coalescing(self):
        """A handle keeps naming the same prefix even after the frontier run
        grows in place (the id names a character, not a run)."""
        doc = Document("alice")
        doc.insert(0, "abc")
        snapshot = doc.version()
        doc.insert(3, "def")  # extends the same run event
        doc.delete(0, 1)
        assert len(doc.oplog) == 2  # the two inserts coalesced
        assert doc.text_at(snapshot) == "abc"
        assert doc.text_at(doc.version()) == doc.text

    def test_version_resolution_is_order_independent(self):
        """Resolving a handle must not be corrupted by the run splits the
        resolution itself performs (each split shifts later indices)."""
        p = Document("p")
        p.insert(0, "pppp")
        q = Document("q")
        q.merge(p)
        q.insert(0, "SSSS")
        p.insert(4, "RRRR")  # concurrent with q's insert, coalesces with run
        p.merge(q)
        q.merge(p)
        expected = p.text_at(Version((EventId("p", 5), EventId("q", 1))))
        assert p.text_at(Version((EventId("q", 1), EventId("p", 5)))) == expected
        assert "SS" in expected and "pppp" in expected

    def test_versions_enumeration(self):
        doc = Document("alice")
        doc.insert(0, "x")
        doc.insert(1, "y")  # continues the run: same event
        assert doc.versions() == [Version([EventId("alice", 1)])]
        doc.insert(0, "a")  # cursor jump: new run event
        versions = doc.versions()
        assert len(versions) == 2
        assert [doc.text_at(v) for v in versions] == ["xy", "axy"]

    def test_versions_are_per_run_event(self):
        doc = Document("alice")
        doc.insert(0, "xy")
        doc.delete(0, 1)
        versions = doc.versions()
        assert len(versions) == 2
        assert [doc.text_at(v) for v in versions] == ["xy", "y"]

    def test_diff_roundtrips_between_versions(self):
        doc = Document("alice")
        doc.insert(0, "hello world")
        v1 = doc.version()
        doc.delete(5, 6)
        doc.insert(5, ", goodbye")
        v2 = doc.version()
        ops = doc.diff(v1, v2)
        text = doc.text_at(v1)
        for op in ops:
            text = op.apply_to(text)
        assert text == doc.text_at(v2) == "hello, goodbye"

    def test_checkout_is_an_editable_branch(self):
        doc = Document("alice")
        doc.insert(0, "abc")
        v = doc.version()
        doc.insert(3, "def")
        branch = doc.checkout(v)
        assert branch.text == "abc"
        branch.insert(3, "!")
        assert branch.text == "abc!"
        # The branch merges back like any replica.
        doc.merge(branch)
        assert "!" in doc.text and "def" in doc.text


class TestDeprecatedIndexShims:
    # Warning + value parity for all four deprecated snapshot shims lives in
    # tests/test_deprecation_shims.py (the one file the deprecated-snapshot-api
    # lint rule allows to touch them).  Only the index-tuple overload of the
    # canonical text_at is pinned here.
    def test_text_at_with_index_tuples_warns_but_works(self):
        doc = Document("alice", coalesce_local_runs=False)
        doc.insert(0, "abc")
        version_after_abc = doc.local_version
        doc.insert(3, "def")
        with pytest.warns(DeprecationWarning):
            assert doc.text_at(version_after_abc) == "abc"


class TestWalkerConfigurationsOnDocuments:
    @pytest.mark.parametrize("backend", ["list", "tree"])
    @pytest.mark.parametrize("clearing", [True, False])
    def test_document_options_converge(self, backend, clearing):
        alice = Document("alice", backend=backend, enable_clearing=clearing)
        bob = Document("bob", backend=backend, enable_clearing=clearing)
        alice.insert(0, "Helo")
        bob.merge(alice)
        alice.insert(3, "l")
        bob.insert(4, "!")
        alice.merge(bob)
        bob.merge(alice)
        assert alice.text == bob.text == "Hello!"
