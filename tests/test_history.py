"""Tests for the id-based history subsystem (repro.history).

Covers the :class:`Version` value type, the version algebra
(compare/meet/join via :class:`CausalGraph`), engine-backed ``text_at`` /
``diff`` / ``checkout``, and — the property the subsystem exists for —
**handle stability**: a saved version keeps meaning exactly the same
characters across further edits, in-place frontier-run extension, re-carved
interop syncs and storage round trips.  Texts are checked against the
per-character :func:`expand_to_chars` oracle.
"""

from __future__ import annotations

import pytest

from repro.core.causal_graph import CausalGraph
from repro.core.document import Document
from repro.core.event_graph import expand_to_chars
from repro.core.ids import EventId
from repro.core.oplog import recarve_events
from repro.core.walker import EgWalker
from repro.history import ROOT, History, Version, apply_ops
from repro.storage import (
    decode_event_graph,
    decode_version,
    encode_event_graph,
    encode_version,
)


def oracle_text_at(document: Document, version: Version) -> str:
    """Reconstruct ``version`` on the per-character oracle graph."""
    expanded = expand_to_chars(document.oplog.graph)
    indices = tuple(sorted({expanded.index_of(eid) for eid in version.ids}))
    walker = EgWalker(expanded, backend="list", enable_clearing=False)
    return walker.text_at_version(indices)


def diamond_documents() -> tuple[Document, Version, Version, Version]:
    """A shared base with two concurrent branches, merged at the end."""
    alice = Document("alice")
    alice.insert(0, "base ")
    base = alice.version()
    bob = Document("bob")
    bob.merge(alice)
    alice.insert(5, "left ")
    bob.insert(5, "right ")
    branch_a = alice.version()
    branch_b = bob.version()
    alice.merge(bob)
    bob.merge(alice)
    assert alice.text == bob.text
    return alice, base, branch_a, branch_b


class TestVersionValueType:
    def test_normalisation_equality_and_hash(self):
        a = Version([EventId("x", 3), EventId("a", 1)])
        b = Version([("a", 1), ("x", 3), ("a", 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a.ids == (EventId("a", 1), EventId("x", 3))

    def test_root_is_falsy(self):
        assert not ROOT
        assert ROOT.is_root
        assert len(ROOT) == 0
        assert Version([("a", 0)])

    def test_frozen(self):
        version = Version([("a", 0)])
        with pytest.raises(AttributeError):
            version.ids = ()

    def test_as_tuples_and_iteration(self):
        version = Version([("b", 2), ("a", 1)])
        assert version.as_tuples() == (("a", 1), ("b", 2))
        assert list(version) == [EventId("a", 1), EventId("b", 2)]

    def test_frontier_classmethod(self):
        doc = Document("alice")
        doc.insert(0, "abc")
        assert Version.frontier(doc.oplog.graph) == doc.version()

    def test_encode_decode(self):
        version = Version([("alice", 7), ("bob", 0)])
        assert decode_version(encode_version(version)) == version


class TestVersionAlgebra:
    def test_compare_linear(self):
        doc = Document("alice")
        doc.insert(0, "a")
        v1 = doc.version()
        doc.insert(0, "b")  # cursor jump: a second run event
        v2 = doc.version()
        h = doc.history
        assert h.compare(v1, v1) == "equal"
        assert h.compare(v1, v2) == "before"
        assert h.compare(v2, v1) == "after"
        assert h.compare(ROOT, v1) == "before"
        assert h.contains(v2, v1) and not h.contains(v1, v2)

    def test_concurrent_meet_join(self):
        alice, base, branch_a, branch_b = diamond_documents()
        h = alice.history
        assert h.compare(branch_a, branch_b) == "concurrent"
        assert h.meet(branch_a, branch_b) == base
        join = h.join(branch_a, branch_b)
        assert h.contains(join, branch_a) and h.contains(join, branch_b)
        assert join == alice.version()

    def test_meet_join_identities(self):
        alice, base, branch_a, _ = diamond_documents()
        h = alice.history
        assert h.meet(branch_a, branch_a) == branch_a
        assert h.join(branch_a, branch_a) == branch_a
        assert h.meet(base, branch_a) == base
        assert h.join(base, branch_a) == branch_a
        assert h.meet(ROOT, branch_a) == ROOT
        assert h.join(ROOT, branch_a) == branch_a


class TestTextAt:
    def test_against_oracle_on_a_diamond(self):
        alice, base, branch_a, branch_b = diamond_documents()
        for version in (ROOT, base, branch_a, branch_b, alice.version()):
            assert alice.text_at(version) == oracle_text_at(alice, version)
        assert alice.text_at(alice.version()) == alice.text

    def test_unknown_version_raises(self):
        doc = Document("alice")
        doc.insert(0, "a")
        with pytest.raises(KeyError):
            doc.text_at(Version([("nobody", 5)]))

    def test_forward_browsing_resumes_from_cache(self):
        """Scrubbing forward through versions replays only the delta."""
        doc = Document("alice")
        for i in range(8):
            doc.insert(0, f"chunk{i} ")  # cursor at 0: one run event each
        versions = doc.versions()
        doc.text_at(versions[0])  # prime the cache
        for i in range(1, 8):
            doc.text_at(versions[i])
            # The forward step replayed O(delta) events, not O(history).
            assert doc.merge_stats.last_history_events_touched <= 2

    def test_checkout_cache_survives_graph_mutation(self):
        doc = Document("alice")
        doc.insert(0, "abc")
        v1 = doc.version()
        assert doc.text_at(v1) == "abc"  # cached
        doc.insert(3, "def")  # extends the cached version's run in place
        assert doc.text_at(v1) == "abc"
        assert doc.text_at(doc.version()) == "abcdef"


class TestDiff:
    def test_sequential_diff_applies(self):
        doc = Document("alice")
        doc.insert(0, "hello world")
        v1 = doc.version()
        doc.delete(0, 6)
        doc.insert(0, "goodbye ")
        v2 = doc.version()
        ops = doc.diff(v1, v2)
        assert apply_ops(doc.text_at(v1), ops) == doc.text_at(v2)

    def test_diff_from_root(self):
        doc = Document("alice")
        doc.insert(0, "abc")
        assert apply_ops("", doc.diff(ROOT, doc.version())) == "abc"

    def test_diff_between_adjacent_critical_versions_is_o_new_events(self):
        """The acceptance bound: with ``a`` a critical version, the walker
        replays exactly the events between the versions — no silent window,
        no history scan (per MergeEngineStats)."""
        doc = Document("alice")
        for i in range(20):
            doc.insert(0, f"w{i} ")  # one run event each; linear history:
        versions = doc.versions()  # every prefix version is critical
        stats = doc.merge_stats
        for i in range(10, 14):
            ops = doc.diff(versions[i], versions[i + 1])
            assert stats.last_history_events_touched == 1  # O(new events)
            assert stats.history_window_events == 0
            assert apply_ops(doc.text_at(versions[i]), ops) == doc.text_at(
                versions[i + 1]
            )
        span = doc.diff(versions[2], versions[7])
        assert stats.last_history_events_touched == 5
        assert apply_ops(doc.text_at(versions[2]), span) == doc.text_at(versions[7])

    def test_concurrent_diff_falls_back_to_text_diff(self):
        alice, _, branch_a, branch_b = diamond_documents()
        before = alice.merge_stats.history_text_diffs
        ops = alice.diff(branch_a, branch_b)
        assert alice.merge_stats.history_text_diffs == before + 1
        assert apply_ops(alice.text_at(branch_a), ops) == alice.text_at(branch_b)

    def test_backwards_diff_applies(self):
        doc = Document("alice")
        doc.insert(0, "abc")
        v1 = doc.version()
        doc.insert(3, "def")
        v2 = doc.version()
        ops = doc.diff(v2, v1)  # backwards: the text-diff fallback
        assert apply_ops(doc.text_at(v2), ops) == "abc"


class TestCheckout:
    def test_checkout_matches_text_at(self):
        alice, base, branch_a, branch_b = diamond_documents()
        for version in (base, branch_a, branch_b):
            branch = alice.checkout(version)
            assert branch.text == alice.text_at(version)

    def test_checkout_agent_naming(self):
        doc = Document("alice")
        doc.insert(0, "x")
        assert doc.checkout(doc.version()).agent == "alice-checkout"
        assert doc.checkout(doc.version(), agent="review").agent == "review"

    def test_two_default_checkouts_can_both_merge_back(self):
        """Default-named branches must get distinct agents: two branches
        editing under the same (agent, seq) ids could never merge."""
        doc = Document("alice")
        doc.insert(0, "abc")
        v = doc.version()
        b1 = doc.checkout(v)
        b2 = doc.checkout(v)
        assert b1.agent != b2.agent
        b1.insert(3, "X")
        b2.insert(3, "Y")
        doc.merge(b1)
        doc.merge(b2)
        assert "X" in doc.text and "Y" in doc.text

    def test_default_checkout_names_avoid_merged_back_branches(self):
        """A fresh History over the same graph (a restart) must not reuse the
        agent of a branch whose events already merged back."""
        doc = Document("alice")
        doc.insert(0, "abc")
        v = doc.version()
        branch = doc.checkout(v)
        branch.insert(3, "X")
        doc.merge(branch)  # "alice-checkout" is now visible in the graph
        # Simulate a restart: a new replica with the same owner agent and a
        # fresh History (its in-memory bookkeeping starts empty).
        reloaded = Document("alice")
        reloaded.apply_remote_events(doc.oplog.export_events())
        again = reloaded.checkout(reloaded.version())
        assert again.agent != branch.agent  # read from the graph, not memory
        again.insert(0, "Y")
        reloaded.merge(again)
        doc.merge(reloaded)
        assert "X" in doc.text and "Y" in doc.text

    def test_checkout_inherits_configuration(self):
        doc = Document(
            "alice",
            backend="list",
            enable_clearing=False,
            coalesce_local_runs=False,
            incremental=False,
        )
        doc.insert(0, "abc")
        branch = doc.checkout(doc.version())
        assert branch.engine.incremental is False
        assert branch.engine.walker_options["backend"] == "list"
        assert branch.engine.walker_options["enable_clearing"] is False
        assert branch.oplog.coalesce_local_runs is False


class TestHandleStability:
    def test_survives_in_place_run_extension(self):
        doc = Document("alice")
        doc.insert(0, "ab")
        saved = doc.version()
        saved_text = doc.text
        doc.insert(2, "cd")  # same run, extended in place
        doc.insert(4, "ef")
        assert len(doc.oplog) == 1  # all one coalesced run
        assert doc.text_at(saved) == saved_text == "ab"
        assert doc.text_at(saved) == oracle_text_at(doc, saved)

    def test_survives_recarved_interop_sync(self):
        producer = Document("p")
        producer.insert(0, "abcdef")
        saved = producer.version()
        # A consumer receives the same history carved into three runs, edits
        # on top, and syncs back — splitting the producer's stored run.
        consumer = Document("q")
        events = recarve_events(
            producer.oplog.export_events(), splits=lambda e: (2, 4)
        )
        consumer.apply_remote_events(events)
        consumer.insert(3, "XY")
        producer.merge(consumer)
        assert len(producer.oplog) > 1  # the run really was split
        assert producer.text_at(saved) == "abcdef"
        assert producer.text_at(saved) == oracle_text_at(producer, saved)

    def test_survives_storage_round_trip(self):
        alice, base, branch_a, branch_b = diamond_documents()
        saved_texts = {
            v: alice.text_at(v) for v in (base, branch_a, branch_b, alice.version())
        }
        data = encode_event_graph(alice.oplog.graph)
        wire_versions = {encode_version(v): text for v, text in saved_texts.items()}
        decoded = decode_event_graph(data)
        history = History.over_graph(decoded.graph)
        for blob, text in wire_versions.items():
            assert history.text_at(decode_version(blob)) == text

    def test_transfers_between_replicas(self):
        """A handle taken on one replica resolves on any peer that has the
        events, regardless of how the peer carved them."""
        alice = Document("alice")
        alice.insert(0, "shared text")
        saved = alice.version()
        bob = Document("bob")
        bob.apply_remote_events(
            recarve_events(alice.oplog.export_events(), splits=lambda e: (4,))
        )
        bob.insert(0, "bob says: ")
        assert bob.text_at(saved) == "shared text"


class TestDiffQuadraticGuard:
    """The difflib fallback in ``History.diff`` is O(|a|·|b|); above
    ``QUADRATIC_DIFF_LIMIT`` character pairs a guard trims the common affixes
    first and, if the disputed middles are still too large, degrades to a
    coarse replace — bounded cost for arbitrarily long concurrent texts."""

    def test_trim_common_affixes(self):
        from repro.history.history import _trim_common_affixes

        assert _trim_common_affixes("abcXdef", "abcYYdef") == (3, 3)
        assert _trim_common_affixes("same", "same") == (4, 0)  # prefix wins ties
        assert _trim_common_affixes("aaaa", "aaa") == (3, 0)
        assert _trim_common_affixes("xy", "uv") == (0, 0)
        assert _trim_common_affixes("", "abc") == (0, 0)

    def test_small_inputs_stay_fine_grained(self):
        from repro.core.merge_engine import MergeEngineStats
        from repro.history.history import _text_diff

        stats = MergeEngineStats()
        ops = _text_diff("kitten", "sitting", stats=stats)
        assert apply_ops("kitten", ops) == "sitting"
        assert stats.history_diff_guards == 0

    def test_guard_trims_affixes_and_keeps_fine_grained_middle(self):
        from repro.core.merge_engine import MergeEngineStats
        from repro.history.history import QUADRATIC_DIFF_LIMIT, _text_diff

        shared = "p" * 1200
        a = shared + "OLD" + shared
        b = shared + "NEWER" + shared
        assert len(a) * len(b) > QUADRATIC_DIFF_LIMIT
        stats = MergeEngineStats()
        ops = _text_diff(a, b, stats=stats)
        assert stats.history_diff_guards == 1
        assert apply_ops(a, ops) == b
        # The edit script touches only the disputed middle, not the affixes.
        assert sum(len(op.content or "") for op in ops) <= len("NEWER")

    def test_guard_degrades_to_coarse_replace(self):
        from repro.core.merge_engine import MergeEngineStats
        from repro.history.history import QUADRATIC_DIFF_LIMIT, _text_diff

        a = "ab" * 1500
        b = "cd" * 1500
        assert len(a) * len(b) > QUADRATIC_DIFF_LIMIT
        stats = MergeEngineStats()
        ops = _text_diff(a, b, stats=stats)
        assert stats.history_diff_guards == 1
        assert len(ops) == 2  # one delete + one insert
        assert apply_ops(a, ops) == b

    def test_history_diff_guard_counted_on_engine_stats(self):
        alice = Document("alice")
        bob = Document("bob")
        alice.insert(0, "x" * 1100)
        bob.insert(0, "y" * 1200)
        branch_a = alice.version()
        alice.apply_remote_events(bob.events_since(()))
        branch_b = Version(bob.version().ids)
        before = alice.merge_stats.history_diff_guards
        ops = alice.diff(branch_a, branch_b)
        assert alice.merge_stats.history_diff_guards == before + 1
        assert apply_ops(alice.text_at(branch_a), ops) == alice.text_at(branch_b)
