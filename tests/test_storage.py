"""Tests for the storage layer: varints, compression, columnar encoding, snapshots."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.event_graph import EventGraph
from repro.core.ids import EventId, delete_op, insert_op
from repro.core.walker import EgWalker
from repro.history import Version
from repro.storage import (
    EncodeOptions,
    Snapshot,
    compress,
    decode_event_graph,
    decode_snapshot,
    decode_svarint,
    decode_uvarint,
    decode_version,
    decompress,
    encode_event_graph,
    encode_snapshot,
    encode_svarint,
    encode_uvarint,
    encode_version,
)
from repro.storage.varint import ByteReader, ByteWriter


class TestVarints:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 255, 300, 2**14, 2**21, 2**40])
    def test_uvarint_round_trip(self, value):
        encoded = encode_uvarint(value)
        decoded, offset = decode_uvarint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    def test_small_values_use_one_byte(self):
        assert len(encode_uvarint(0)) == 1
        assert len(encode_uvarint(127)) == 1
        assert len(encode_uvarint(128)) == 2

    def test_negative_uvarint_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1)

    def test_truncated_varint_rejected(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"\x80")

    @pytest.mark.parametrize("value", [0, 1, -1, 63, -64, 1000, -1000, 2**30, -(2**30)])
    def test_svarint_round_trip(self, value):
        decoded, _ = decode_svarint(encode_svarint(value))
        assert decoded == value

    @given(st.integers(min_value=0, max_value=2**60))
    @settings(max_examples=200, deadline=None)
    def test_uvarint_property(self, value):
        decoded, _ = decode_uvarint(encode_uvarint(value))
        assert decoded == value

    @given(st.integers(min_value=-(2**60), max_value=2**60))
    @settings(max_examples=200, deadline=None)
    def test_svarint_property(self, value):
        decoded, _ = decode_svarint(encode_svarint(value))
        assert decoded == value

    def test_byte_writer_reader(self):
        writer = ByteWriter()
        writer.write_uvarint(42)
        writer.write_svarint(-7)
        writer.write_string("héllo")
        writer.write_length_prefixed(b"\x00\x01")
        reader = ByteReader(writer.getvalue())
        assert reader.read_uvarint() == 42
        assert reader.read_svarint() == -7
        assert reader.read_string() == "héllo"
        assert reader.read_length_prefixed() == b"\x00\x01"
        assert reader.at_end()


class TestCompression:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"hello world",
            b"abcabcabcabcabcabcabcabc",
            b"the quick brown fox jumps over the lazy dog " * 50,
            bytes(range(256)) * 3,
        ],
    )
    def test_round_trip(self, data):
        assert decompress(compress(data)) == data

    def test_repetitive_data_compresses(self):
        data = b"collaborative text editing " * 200
        assert len(compress(data)) < len(data) / 3

    @given(st.binary(max_size=2000))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property(self, data):
        assert decompress(compress(data)) == data

    def test_corrupt_stream_rejected(self):
        data = compress(b"hello hello hello hello hello")
        with pytest.raises(ValueError):
            decompress(data[: len(data) // 2] + b"\xff\xff\xff\xff")


class TestEventGraphEncoding:
    def _round_trip(self, graph: EventGraph, options: EncodeOptions | None = None) -> EventGraph:
        data = encode_event_graph(graph, options)
        return decode_event_graph(data).graph

    @pytest.mark.parametrize(
        "trace_fixture",
        ["small_sequential_trace", "small_concurrent_trace", "small_async_trace"],
    )
    def test_round_trip_preserves_everything(self, trace_fixture, request):
        graph = request.getfixturevalue(trace_fixture).graph
        decoded = self._round_trip(graph)
        assert len(decoded) == len(graph)
        for original, restored in zip(graph.events(), decoded.events()):
            assert original.id == restored.id
            assert original.parents == restored.parents
            assert original.op == restored.op

    def test_round_trip_replays_identically(self, figure4_graph):
        decoded = self._round_trip(figure4_graph)
        assert EgWalker(decoded).replay_text() == EgWalker(figure4_graph).replay_text()

    def test_compressed_content_round_trip(self, small_sequential_trace):
        graph = small_sequential_trace.graph
        decoded = self._round_trip(graph, EncodeOptions(compress_content=True))
        assert EgWalker(decoded).replay_text() == EgWalker(graph).replay_text()

    def test_snapshot_column(self, small_sequential_trace):
        graph = small_sequential_trace.graph
        text = EgWalker(graph).replay_text()
        data = encode_event_graph(
            graph, EncodeOptions(include_snapshot=True, final_text=text)
        )
        decoded = decode_event_graph(data)
        assert decoded.snapshot == text

    def test_snapshot_requires_text(self, figure2_graph):
        with pytest.raises(ValueError):
            encode_event_graph(figure2_graph, EncodeOptions(include_snapshot=True))

    def test_pruned_encoding_drops_deleted_text_but_keeps_structure(
        self, small_sequential_trace
    ):
        graph = small_sequential_trace.graph
        full = encode_event_graph(graph)
        pruned = encode_event_graph(graph, EncodeOptions(prune_deleted_content=True))
        assert len(pruned) < len(full)
        decoded = decode_event_graph(pruned)
        assert decoded.pruned
        assert len(decoded.graph) == len(graph)
        # Surviving characters are restored; the final document matches.
        assert EgWalker(decoded.graph).replay_text() == EgWalker(graph).replay_text()

    def test_sequential_trace_encodes_compactly(self, small_sequential_trace):
        graph = small_sequential_trace.graph
        data = encode_event_graph(graph)
        inserted_chars = sum(e.op.length for e in graph.events() if e.op.is_insert)
        # One row per run event: the file is the inserted text plus a few
        # bytes per *run*, far below a per-character encoding.
        assert len(data) < inserted_chars + 8 * len(graph) + 64
        assert len(graph) < graph.num_chars / 3

    def test_wrong_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_event_graph(b"NOPE" + b"\x00" * 20)

    def test_empty_graph_round_trip(self):
        graph = EventGraph()
        decoded = self._round_trip(graph)
        assert len(decoded) == 0


class TestSplitRunStorage:
    """Storage v2 round-trips graphs whose runs were split on ingest."""

    def _graph_with_split_runs(self) -> EventGraph:
        graph = EventGraph()
        graph.add_event(
            EventId("a", 0), (), insert_op(0, "hello world"), parents_are_indices=True
        )
        graph.add_event(EventId("a", 11), (0,), delete_op(2, 4), parents_are_indices=True)
        # A peer that saw only "hello" replies concurrently -> the stored
        # insert run splits at the dependency boundary; a peer that saw only
        # part of the delete splits that run too.
        graph.add_remote_event(EventId("b", 0), (EventId("a", 4),), insert_op(5, "XY"))
        graph.add_remote_event(EventId("c", 0), (EventId("a", 12),), insert_op(2, "z"))
        assert len(graph) > 4  # the splits really happened
        return graph

    def test_full_round_trip_preserves_split_carving(self):
        graph = self._graph_with_split_runs()
        decoded = decode_event_graph(encode_event_graph(graph)).graph
        assert len(decoded) == len(graph)
        for original, restored in zip(graph.events(), decoded.events()):
            assert original.id == restored.id
            assert original.parents == restored.parents
            assert original.op == restored.op
        assert EgWalker(decoded).replay_text() == EgWalker(graph).replay_text()

    def test_pruned_round_trip_of_split_runs(self):
        graph = self._graph_with_split_runs()
        data = encode_event_graph(graph, EncodeOptions(prune_deleted_content=True))
        decoded = decode_event_graph(data)
        assert decoded.pruned
        assert len(decoded.graph) == len(graph)
        assert EgWalker(decoded.graph).replay_text() == EgWalker(graph).replay_text()

    def test_decoded_file_merges_into_differently_carved_replica(self):
        """A reader whose graph carves the same history differently than the
        writer did still unions cleanly with the decoded file."""
        writer = EventGraph()
        writer.add_event(
            EventId("a", 0), (), insert_op(0, "collaborative"), parents_are_indices=True
        )
        writer.add_event(EventId("b", 0), (0,), insert_op(13, "!"), parents_are_indices=True)
        data = encode_event_graph(writer)

        reader = EventGraph()
        reader.add_event(EventId("a", 0), (), insert_op(0, "colla"), parents_are_indices=True)
        reader.add_event(
            EventId("a", 5), (0,), insert_op(5, "borative"), parents_are_indices=True
        )
        decoded = decode_event_graph(data).graph
        added = reader.merge_from(decoded)
        assert [reader[i].id for i in added] == [EventId("b", 0)]
        assert reader.num_chars == writer.num_chars
        assert EgWalker(reader).replay_text() == EgWalker(writer).replay_text()
        # And the re-carved union round-trips through storage itself.
        re_encoded = decode_event_graph(encode_event_graph(reader)).graph
        assert EgWalker(re_encoded).replay_text() == EgWalker(writer).replay_text()

    def test_pruned_decode_of_recarved_union(self):
        """Pruned mode works on a graph whose carving came from ingest-time
        splitting (survival masks are computed per character, so carving is
        irrelevant)."""
        graph = self._graph_with_split_runs()
        text = EgWalker(graph).replay_text()
        data = encode_event_graph(
            graph,
            EncodeOptions(prune_deleted_content=True, include_snapshot=True, final_text=text),
        )
        decoded = decode_event_graph(data)
        assert decoded.snapshot == text
        assert EgWalker(decoded.graph).replay_text() == text


class TestSnapshots:
    def test_snapshot_round_trip(self):
        snapshot = Snapshot(
            text="hello wörld", version=Version((EventId("a", 3), EventId("b", 7)))
        )
        decoded = decode_snapshot(encode_snapshot(snapshot))
        assert decoded == snapshot

    def test_empty_snapshot(self):
        snapshot = Snapshot(text="", version=Version())
        assert decode_snapshot(encode_snapshot(snapshot)) == snapshot

    def test_wrong_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_snapshot(b"XXXXwhatever")

    def test_version_handle_round_trip(self):
        version = Version((EventId("a", 3), EventId("b", 7)))
        assert decode_version(encode_version(version)) == version
        assert decode_version(encode_version(Version())) == Version()

    def test_version_handle_wrong_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_version(b"XXXXwhatever")


class TestEncodingProperty:
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 30), st.sampled_from("abcXYZ ")), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_random_linear_graph_round_trip(self, edits):
        graph = EventGraph()
        length = 0
        for is_delete, pos_seed, char in edits:
            if is_delete and length > 0:
                graph.add_local_event("agent", delete_op(pos_seed % length))
                length -= 1
            else:
                graph.add_local_event("agent", insert_op(pos_seed % (length + 1), char))
                length += 1
        decoded = decode_event_graph(encode_event_graph(graph)).graph
        assert len(decoded) == len(graph)
        assert EgWalker(decoded).replay_text() == EgWalker(graph).replay_text()
