"""The docs cannot rot: doctests in docs/ and runnable examples/.

Two enforcement mechanisms, both part of tier 1 (and mirrored by the CI
``docs`` job):

* every ``>>>`` block in ``docs/architecture.md`` runs as a doctest, so the
  worked examples in the architecture guide always match the current API;
* every script in ``examples/`` runs end to end in a subprocess (they
  ``assert`` their own claims internally), so the narrated walkthroughs the
  README points at keep working.
"""

from __future__ import annotations

import doctest
import os
import subprocess
import sys

import pytest

_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
_DOCS = os.path.join(_ROOT, "docs")
_EXAMPLES = os.path.join(_ROOT, "examples")


def _doc_files() -> list[str]:
    return sorted(
        name for name in os.listdir(_DOCS) if name.endswith(".md")
    )


def _example_scripts() -> list[str]:
    return sorted(
        name for name in os.listdir(_EXAMPLES) if name.endswith(".py")
    )


def test_docs_directory_has_content():
    assert "architecture.md" in _doc_files()


@pytest.mark.parametrize("name", _doc_files())
def test_doc_doctests(name):
    """Every ``>>>`` block in the markdown docs must pass as written."""
    results = doctest.testfile(
        os.path.join(_DOCS, name),
        module_relative=False,
        optionflags=doctest.ELLIPSIS,
    )
    assert results.attempted > 0, f"{name} contains no doctest examples"
    assert results.failed == 0, f"{results.failed} doctest(s) failed in {name}"


@pytest.mark.parametrize("name", _example_scripts())
def test_example_runs(name):
    """Each example script must run to completion (they assert internally)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert proc.returncode == 0, (
        f"examples/{name} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"examples/{name} produced no output"
