"""Differential and unit tests for the internal-state sequence backends (§3.3–3.4).

``ListSequence`` (flat list, linear scans) and ``TreeSequence`` (counted
B+-tree) implement the same contract; every operation applied to both must
leave them observably identical.  The random workloads below drive both
backends through inserts, placeholder splits and visibility changes and
compare the full item sequences after every step.
"""

import random

import pytest

from repro.core.ids import EventId
from repro.core.order_statistic_tree import MAX_NODE_SIZE, TreeSequence
from repro.core.records import INSERTED, CrdtRecord, PlaceholderPiece
from repro.core.sequence import Cursor, ListSequence


def make_record(agent: str, seq: int, prepare_state: int = INSERTED, deleted: bool = False):
    return CrdtRecord(
        id=EventId(agent, seq), prepare_state=prepare_state, ever_deleted=deleted
    )


def snapshot(backend):
    """Observable state of a backend: per-item kind, id/base, states, lengths."""
    items = []
    for item in backend.iter_items():
        if isinstance(item, PlaceholderPiece):
            items.append(("ph", item.base, item.length))
        else:
            items.append(("rec", item.id, item.prepare_state, item.ever_deleted))
    return items, backend.total_units(), backend.prepare_length(), backend.effect_length()


class TestEmptyBackends:
    @pytest.mark.parametrize("backend_cls", [ListSequence, TreeSequence])
    def test_empty_lengths(self, backend_cls):
        backend = backend_cls(0)
        assert backend.total_units() == 0
        assert backend.prepare_length() == 0
        assert backend.effect_length() == 0
        assert list(backend.iter_items()) == []

    @pytest.mark.parametrize("backend_cls", [ListSequence, TreeSequence])
    def test_insert_into_empty(self, backend_cls):
        backend = backend_cls(0)
        cursor = backend.find_insert_cursor(0)
        assert cursor.at_end
        record = make_record("a", 0)
        backend.insert_record_at_cursor(cursor, record)
        assert backend.prepare_length() == 1
        assert backend.effect_position_of_item(record) == 0

    @pytest.mark.parametrize("backend_cls", [ListSequence, TreeSequence])
    def test_insert_beyond_length_raises(self, backend_cls):
        backend = backend_cls(0)
        with pytest.raises(IndexError):
            backend.find_insert_cursor(1)

    @pytest.mark.parametrize("backend_cls", [ListSequence, TreeSequence])
    def test_find_visible_unit_on_empty_raises(self, backend_cls):
        backend = backend_cls(0)
        with pytest.raises(IndexError):
            backend.find_visible_unit(0)


class TestPlaceholders:
    @pytest.mark.parametrize("backend_cls", [ListSequence, TreeSequence])
    def test_initial_placeholder_counts(self, backend_cls):
        backend = backend_cls(10)
        assert backend.total_units() == 10
        assert backend.prepare_length() == 10
        assert backend.effect_length() == 10

    @pytest.mark.parametrize("backend_cls", [ListSequence, TreeSequence])
    def test_insert_mid_placeholder_splits(self, backend_cls):
        backend = backend_cls(10)
        cursor = backend.find_insert_cursor(4)
        record = make_record("a", 0)
        backend.insert_record_at_cursor(cursor, record)
        kinds = [type(item).__name__ for item in backend.iter_items()]
        assert kinds == ["PlaceholderPiece", "CrdtRecord", "PlaceholderPiece"]
        assert backend.total_units() == 11
        assert backend.effect_position_of_item(record) == 4

    @pytest.mark.parametrize("backend_cls", [ListSequence, TreeSequence])
    def test_origin_refs_inside_placeholder(self, backend_cls):
        backend = backend_cls(10)
        cursor = backend.find_insert_cursor(4)
        left = backend.origin_left_of_cursor(cursor)
        right = backend.next_existing_in_prepare(cursor)
        assert left == ("ph", 3)
        assert right == ("ph", 4)
        assert backend.unit_position_of_ref(left) == 3
        assert backend.unit_position_of_ref(right) == 4

    @pytest.mark.parametrize("backend_cls", [ListSequence, TreeSequence])
    def test_convert_placeholder_run_for_delete(self, backend_cls):
        backend = backend_cls(10)
        item, offset = backend.find_visible_unit(6)
        assert isinstance(item, PlaceholderPiece) and offset == 6
        record = make_record("__placeholder__", 0, prepare_state=2, deleted=True)
        backend.convert_placeholder_run(item, offset, record)
        assert backend.total_units() == 10
        assert backend.prepare_length() == 9
        assert backend.effect_length() == 9
        # The reference to the converted unit resolves to the carved record.
        assert backend.unit_position_of_ref(("ph", 6)) == 6

    @pytest.mark.parametrize("backend_cls", [ListSequence, TreeSequence])
    def test_placeholder_ref_positions_shift_with_insertions(self, backend_cls):
        backend = backend_cls(5)
        cursor = backend.find_insert_cursor(0)
        backend.insert_record_at_cursor(cursor, make_record("a", 0))
        # Original placeholder offset 2 is now at unit position 3.
        assert backend.unit_position_of_ref(("ph", 2)) == 3


class TestVisibilityCounters:
    @pytest.mark.parametrize("backend_cls", [ListSequence, TreeSequence])
    def test_update_item_counts(self, backend_cls):
        backend = backend_cls(0)
        records = []
        for i in range(5):
            cursor = backend.find_insert_cursor(i)
            record = make_record("a", i)
            backend.insert_record_at_cursor(cursor, record)
            records.append(record)
        # Mark the middle record deleted in both versions.
        target = records[2]
        target.prepare_state = 2
        target.ever_deleted = True
        backend.update_item_counts(target, -1, -1)
        assert backend.prepare_length() == 4
        assert backend.effect_length() == 4
        assert backend.effect_position_of_item(records[3]) == 2
        item, _ = backend.find_visible_unit(2)
        assert item is records[3]


class TestTreeStructure:
    def test_leaf_splits_keep_back_pointers(self):
        backend = TreeSequence(0)
        records = []
        for i in range(MAX_NODE_SIZE * 4):
            cursor = backend.find_insert_cursor(i)
            record = make_record("a", i)
            backend.insert_record_at_cursor(cursor, record)
            records.append(record)
        for i, record in enumerate(records):
            assert record.leaf is not None
            assert backend.effect_position_of_item(record) == i

    def test_memory_items_counter(self):
        backend = TreeSequence(8)
        assert backend.memory_items() == 1
        cursor = backend.find_insert_cursor(3)
        backend.insert_record_at_cursor(cursor, make_record("a", 0))
        assert backend.memory_items() == 3  # left piece + record + right piece


class TestDifferentialRandomWorkload:
    @pytest.mark.parametrize("seed", range(6))
    def test_backends_stay_identical(self, seed):
        rng = random.Random(seed)
        placeholder = rng.choice([0, 0, 7, 20])
        list_backend = ListSequence(placeholder)
        tree_backend = TreeSequence(placeholder)
        next_seq = 0
        records_list: list[CrdtRecord] = []
        records_tree: list[CrdtRecord] = []

        for step in range(120):
            action = rng.random()
            prep_len = list_backend.prepare_length()
            if action < 0.55 or prep_len == 0:
                pos = rng.randint(0, prep_len)
                rec_a = make_record("a", next_seq)
                rec_b = make_record("a", next_seq)
                next_seq += 1
                list_backend.insert_record_at_cursor(
                    list_backend.find_insert_cursor(pos), rec_a
                )
                tree_backend.insert_record_at_cursor(
                    tree_backend.find_insert_cursor(pos), rec_b
                )
                records_list.append(rec_a)
                records_tree.append(rec_b)
            elif action < 0.8:
                # Delete the character at a visible position in both backends.
                pos = rng.randrange(prep_len)
                item_a, off_a = list_backend.find_visible_unit(pos)
                item_b, off_b = tree_backend.find_visible_unit(pos)
                assert isinstance(item_a, PlaceholderPiece) == isinstance(
                    item_b, PlaceholderPiece
                )
                if isinstance(item_a, PlaceholderPiece):
                    rec_a = make_record("__placeholder__", 1000 + step, 2, True)
                    rec_b = make_record("__placeholder__", 1000 + step, 2, True)
                    list_backend.convert_placeholder_run(item_a, off_a, rec_a)
                    tree_backend.convert_placeholder_run(item_b, off_b, rec_b)
                else:
                    for item, backend in ((item_a, list_backend), (item_b, tree_backend)):
                        item.prepare_state += 1
                        d_eff = -1 if not item.ever_deleted else 0
                        item.ever_deleted = True
                        backend.update_item_counts(item, -1, d_eff)
            else:
                # Toggle the prepare-visibility of a random earlier record.
                if records_list:
                    i = rng.randrange(len(records_list))
                    rec_a, rec_b = records_list[i], records_tree[i]
                    if rec_a.prepare_state == INSERTED:
                        rec_a.prepare_state = rec_b.prepare_state = 0
                        delta = -1
                    elif rec_a.prepare_state == 0:
                        rec_a.prepare_state = rec_b.prepare_state = INSERTED
                        delta = +1
                    else:
                        continue
                    list_backend.update_item_counts(rec_a, delta, 0)
                    tree_backend.update_item_counts(rec_b, delta, 0)

            items_a, total_a, prep_a, eff_a = snapshot(list_backend)
            items_b, total_b, prep_b, eff_b = snapshot(tree_backend)
            assert (total_a, prep_a, eff_a) == (total_b, prep_b, eff_b)
            assert items_a == items_b
