"""Invariant tests derived from the strong list specification (Appendix C).

The paper proves Eg-walker correct against Attiya et al.'s *strong list
specification*.  These tests check the checkable consequences of that
specification on concrete replays:

1. the document contains exactly the characters that were inserted and never
   deleted (Definition C.2, requirement 1a);
2. a character inserted by an event appears at the event's index in the
   document obtained by replaying exactly that event's causal history
   (requirement 1c);
3. the relative order of any two surviving characters is the same in every
   replica / replay configuration (the list order ``lo`` is total and
   consistent — requirements 1b and 2).
"""

from __future__ import annotations

import pytest

from repro.core.causal_graph import CausalGraph
from repro.core.walker import EgWalker
from repro.crdt import CrdtDeleteOp, CrdtInsertOp, event_graph_to_crdt_ops


def surviving_characters(graph):
    """Multiset of characters inserted but never deleted, from the event graph."""
    ops = event_graph_to_crdt_ops(graph)
    deleted = {op.target for op in ops if isinstance(op, CrdtDeleteOp)}
    return sorted(
        op.content for op in ops if isinstance(op, CrdtInsertOp) and op.id not in deleted
    )


TRACE_FIXTURES = ["small_sequential_trace", "small_concurrent_trace", "small_async_trace"]


def _replay_char_ids(graph, transformed):
    """Apply transformed ops to a buffer of per-character ids."""
    buffer: list[object] = []
    for entry in transformed:
        event = graph[entry.event_index]
        for op in entry.ops:
            if op.is_insert:
                # The inserted run's characters carry consecutive ids from
                # the run's start (transformed inserts are never split).
                buffer[op.pos : op.pos] = [event.id_at(k) for k in range(op.length)]
            else:
                del buffer[op.pos : op.pos + op.length]
    return buffer


class TestRequirement1a:
    """The document contains exactly the inserted-but-not-deleted characters."""

    @pytest.mark.parametrize("trace_fixture", TRACE_FIXTURES)
    def test_document_characters_match_event_graph(self, trace_fixture, request):
        trace = request.getfixturevalue(trace_fixture)
        text = EgWalker(trace.graph).replay_text()
        assert sorted(text) == surviving_characters(trace.graph)

    def test_figure4_document_characters(self, figure4_graph):
        assert sorted(EgWalker(figure4_graph).replay_text()) == surviving_characters(
            figure4_graph
        )


class TestRequirement1c:
    """An insertion appears at its index in the document of its own context."""

    @pytest.mark.parametrize("trace_fixture", TRACE_FIXTURES)
    def test_insertions_land_at_their_index(self, trace_fixture, request):
        trace = request.getfixturevalue(trace_fixture)
        graph = trace.graph
        walker = EgWalker(graph)
        causal = CausalGraph(graph)
        step = max(1, len(graph) // 25)
        for idx in range(0, len(graph), step):
            event = graph[idx]
            if not event.op.is_insert:
                continue
            subset = causal.ancestors((idx,))
            doc_at_event = walker.replay_text(subset)
            end = event.op.pos + event.op.length
            assert doc_at_event[event.op.pos : end] == event.op.content

    def test_figure2_insertions(self, figure2_graph):
        walker = EgWalker(figure2_graph)
        causal = CausalGraph(figure2_graph)
        for idx in range(len(figure2_graph)):
            event = figure2_graph[idx]
            doc_at_event = walker.replay_text(causal.ancestors((idx,)))
            assert doc_at_event[event.op.pos] == event.op.content


class TestListOrderConsistency:
    """Requirement 1b/2: pairs of surviving characters keep one global order."""

    def _character_order(self, graph, backend, clearing):
        """Map each surviving character's id to its document index."""
        walker = EgWalker(graph, backend=backend, enable_clearing=clearing)
        result = walker.transform()
        # Replay the transformed ops over a buffer of character ids to learn
        # where each inserted character ended up (and which ones survived).
        return _replay_char_ids(graph, result.transformed)

    @pytest.mark.parametrize("trace_fixture", TRACE_FIXTURES)
    def test_all_configurations_produce_the_same_list_order(self, trace_fixture, request):
        trace = request.getfixturevalue(trace_fixture)
        orders = {
            tuple(self._character_order(trace.graph, backend, clearing))
            for backend in ("list", "tree")
            for clearing in (True, False)
        }
        assert len(orders) == 1

    @pytest.mark.parametrize("trace_fixture", TRACE_FIXTURES)
    def test_list_order_matches_version_documents(self, trace_fixture, request):
        """The final order restricted to an old version's characters matches
        the order seen at that version (prefix-consistency of the list order)."""
        trace = request.getfixturevalue(trace_fixture)
        graph = trace.graph
        final_order = self._character_order(graph, "tree", True)
        final_positions = {event_id: i for i, event_id in enumerate(final_order)}
        walker = EgWalker(graph)
        causal = CausalGraph(graph)
        # Pick a few historical versions and check the relative order of the
        # characters that survive to the end.
        for idx in range(0, len(graph), max(1, len(graph) // 10)):
            subset = causal.ancestors((idx,))
            partial = EgWalker(graph, enable_clearing=False).transform(subset)
            buffer = _replay_char_ids(graph, partial.transformed)
            survivors = [event_id for event_id in buffer if event_id in final_positions]
            positions = [final_positions[event_id] for event_id in survivors]
            assert positions == sorted(positions)
