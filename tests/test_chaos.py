"""Chaos suite: deterministic fault schedules against the full stack.

Every scenario runs a fixed-seed :class:`~repro.faults.FaultPlan` and gates
on the strongest oracle the repo has: byte-identical convergence between
every client replica, the server replica, and the per-character reference
replay — plus zero events parked in any causal buffer and zero leaked
sessions.  These are the CI ``chaos-smoke`` scenarios; crank the loops for
longer soak runs.
"""

import asyncio

from repro.core.event_graph import expand_to_chars
from repro.core.walker import EgWalker
from repro.faults import FaultPlan, PartitionWindow
from repro.network.simulator import full_mesh
from repro.server import (
    CollabServer,
    DurabilityOptions,
    ReconnectPolicy,
    run_loadgen,
)
from repro.server.loadgen import CollabClient, PollClient


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60.0))


async def wait_until(predicate, timeout=15.0, interval=0.02):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


#: Aggressive backoff for tests: redial fast, retry long enough to cover a
#: server restart window.
FAST_RECONNECT = ReconnectPolicy(base_delay=0.02, max_delay=0.25, max_attempts=40)


def oracle_text(document):
    """The per-character reference replay of a replica's event graph."""
    return EgWalker(expand_to_chars(document.oplog.graph)).replay_text()


def assert_converged(server, doc, *clients):
    room = server.room(doc)
    text = room.document.text
    assert text == oracle_text(room.document)
    for client in clients:
        assert client.text == text, (client.agent, client.text, text)
        assert client.pending_count == 0
    assert all(v == 0 for v in room.buffer_pending().values()), room.buffer_pending()


def assert_no_leaked_sessions(server):
    for room in server.rooms.values():
        assert room.sessions == {}, (room.name, list(room.sessions))
    assert server._sessions == {}, list(server._sessions)


class TestCrashRestart:
    """Kill the server mid-ingest (torn WAL tail), restart on the same
    port, and require the reconnecting clients to restore full state."""

    def test_torn_wal_crash_restart_converges(self, tmp_path):
        async def scenario():
            plan = FaultPlan(seed=11, crash_after_ingests=4, crash_point="torn-wal")
            server = CollabServer(
                data_dir=str(tmp_path),
                durability=DurabilityOptions(fsync_policy="always"),
                faults=plan,
            )
            await server.start()
            port = server.port
            a = CollabClient("127.0.0.1", port, "d", "alice", reconnect=FAST_RECONNECT)
            b = CollabClient("127.0.0.1", port, "d", "bob", reconnect=FAST_RECONNECT)
            await a.connect()
            await b.connect()
            for i, client in enumerate((a, b, a, b)):  # 4th ingest crashes
                await client.insert(0, f"w{i} ")
                await asyncio.sleep(0.05)
            assert await wait_until(lambda: server._crash_task is not None)
            await server._crash_task
            assert server.faults.stats.crashes == 1
            crashed_doc = server.room("d").document
            assert len(crashed_doc.oplog.graph)  # it really held state

            restarted = CollabServer(port=port, data_dir=str(tmp_path))
            await restarted.start()
            info = restarted.recovery["d"]
            # fsync-per-delta + torn 4th record: exactly 3 records survive.
            assert info.wal_records == 3
            assert info.torn_bytes_dropped > 0
            recovered_doc = restarted.room("d").document
            # The recovered room serves the longest valid prefix of the
            # crashed room's history...
            lost = crashed_doc.events_since(recovered_doc.version())
            assert len(lost) == 1
            for event in recovered_doc.events_since(()):
                assert crashed_doc.oplog.graph.contains_id(event.id)

            # ...and the reconnect replays restore the lost tail: everything
            # converges byte-identically with the per-character oracle.
            assert await wait_until(
                lambda: a.text == b.text == recovered_doc.text
                and crashed_doc.events_since(recovered_doc.version()) == []
            )
            assert a.reconnects >= 1 and b.reconnects >= 1
            assert_converged(restarted, "d", a, b)
            await a.close()
            await b.close()
            await restarted.stop()
            assert_no_leaked_sessions(restarted)

        run(scenario())

    def test_before_and_after_wal_crash_points(self, tmp_path):
        async def scenario():
            for point, surviving in (("before-wal", 0), ("after-wal", 1)):
                data_dir = str(tmp_path / point)
                plan = FaultPlan(seed=2, crash_after_ingests=1, crash_point=point)
                server = CollabServer(
                    data_dir=data_dir,
                    durability=DurabilityOptions(fsync_policy="always"),
                    faults=plan,
                )
                await server.start()
                port = server.port
                client = CollabClient(
                    "127.0.0.1", port, "d", "alice", reconnect=FAST_RECONNECT
                )
                await client.connect()
                await client.insert(0, "payload")  # first ingest crashes
                assert await wait_until(lambda: server._crash_task is not None)
                await server._crash_task

                restarted = CollabServer(port=port, data_dir=data_dir)
                await restarted.start()
                assert restarted.recovery["d"].wal_records == surviving
                # Either way the client's replay restores the edit.
                assert await wait_until(
                    lambda: restarted.room("d").document.text == "payload"
                )
                assert_converged(restarted, "d", client)
                await client.close()
                await restarted.stop()

        run(scenario())


class TestPartitionHeal:
    def test_scheduled_partition_heals_by_anti_entropy(self):
        plan = FaultPlan(
            seed=3, partitions=(PartitionWindow("a", "b", start=0.0, end=1.0),)
        )
        sim = full_mesh(["a", "b", "c"], latency=0.05, faults=plan)
        sim.replicas["a"].insert(0, "aaa ")
        sim.replicas["b"].insert(0, "bbb ")
        sim.replicas["c"].insert(0, "ccc ")
        sim.advance(0.2)
        # Inside the window a<->b traffic is severed: not converged yet.
        assert sim.replicas["a"].text != sim.replicas["b"].text
        assert sim.faults.stats.partitioned > 0
        sim.advance(1.0)  # leave the window
        sim.anti_entropy()
        sim.run_until_quiescent()
        assert sim.converged(), sim.all_texts()
        text = sim.replicas["a"].text
        assert text == oracle_text(sim.replicas["a"].document)
        assert all(r.buffer.pending == 0 for r in sim.replicas.values())

    def test_random_drops_heal_by_repeated_anti_entropy(self):
        plan = FaultPlan(seed=17, drop=0.25, duplicate=0.15, delay=0.3, max_delay=0.2)
        sim = full_mesh(["a", "b", "c"], latency=0.05, faults=plan)
        for i in range(8):
            sim.replicas["abc"[i % 3]].insert(0, f"w{i} ")
            sim.advance(0.1)
        for _ in range(20):
            sim.anti_entropy()
            sim.run_until_quiescent()
            if sim.converged():
                break
        assert sim.converged(), sim.all_texts()
        assert sim.faults.stats.dropped > 0
        assert sim.faults.stats.duplicated > 0


class TestTransportFaults:
    def test_reorder_duplicate_delay_over_websockets(self):
        async def scenario():
            plan = FaultPlan(seed=5, duplicate=0.3, reorder=0.25, delay=0.3, max_delay=0.005)
            async with CollabServer(faults=plan) as server:
                clients = [
                    CollabClient(server.host, server.port, "d", f"c{i}")
                    for i in range(3)
                ]
                for client in clients:
                    await client.connect()
                for i in range(12):
                    await clients[i % 3].insert(0, f"w{i} ")
                # Adjacent-swap reorder can park a client's *final* delta
                # until its next frame arrives; presence frames flush it
                # without touching the document.
                for _ in range(2):
                    for client in clients:
                        await client.send_presence()
                    await asyncio.sleep(0.05)
                room = server.room("d")
                assert await wait_until(
                    lambda: room.document.oplog.graph.num_chars
                    == sum(len(f"w{i} ") for i in range(12))
                    and all(c.text == room.document.text for c in clients)
                )
                stats = server.faults.stats
                assert stats.duplicated > 0 and stats.reordered > 0
                # Duplicated deltas were shed by span dedup, not re-applied.
                assert room.stats.duplicates_dropped > 0
                assert_converged(server, "d", *clients)
                for client in clients:
                    await client.close()

        run(scenario())

    def test_connection_cuts_heal_via_reconnect(self):
        async def scenario():
            plan = FaultPlan(seed=23, cut=0.08)
            async with CollabServer(faults=plan) as server:
                clients = [
                    CollabClient(
                        server.host, server.port, "d", f"c{i}", reconnect=FAST_RECONNECT
                    )
                    for i in range(2)
                ]
                for client in clients:
                    await client.connect()
                for i in range(15):
                    await clients[i % 2].insert(0, f"w{i} ")
                    await asyncio.sleep(0.01)
                room = server.room("d")
                assert await wait_until(
                    lambda: clients[0].text == clients[1].text == room.document.text
                    and room.document.oplog.graph.num_chars >= 15 * 3
                )
                assert server.faults.stats.cuts > 0
                assert sum(c.reconnects for c in clients) > 0
                assert_converged(server, "d", *clients)
                for client in clients:
                    await client.close()

        run(scenario())

    def test_poll_transport_cut_heals_via_reconnect(self):
        async def scenario():
            plan = FaultPlan(seed=29, cut=0.2)
            async with CollabServer(faults=plan) as server:
                poll = PollClient(
                    server.host,
                    server.port,
                    "d",
                    "poller",
                    poll_wait=0.05,
                    reconnect=FAST_RECONNECT,
                )
                await poll.connect()
                for i in range(10):
                    await poll.insert(0, f"w{i} ")
                    await asyncio.sleep(0.01)
                room = server.room("d")
                assert await wait_until(
                    lambda: room.document.oplog.graph.num_chars == sum(
                        len(f"w{i} ") for i in range(10)
                    )
                )
                assert server.faults.stats.cuts > 0 and poll.reconnects > 0
                assert await wait_until(lambda: poll.text == room.document.text)
                assert_converged(server, "d", poll)
                await poll.close()

        run(scenario())


class TestSlowReaderShed:
    def test_shed_session_gets_resumable_bye_and_recovers(self):
        async def scenario():
            plan = FaultPlan(seed=9, slow_reader_agents=("slow",), slow_reader_delay=0.25)
            async with CollabServer(faults=plan, max_queued_frames=5) as server:
                slow = CollabClient(
                    server.host, server.port, "d", "slow", reconnect=FAST_RECONNECT
                )
                fast = CollabClient(server.host, server.port, "d", "fast")
                await slow.connect()
                await fast.connect()
                for i in range(12):
                    await fast.insert(0, f"w{i} ")
                room = server.room("d")
                assert await wait_until(lambda: room.stats.sessions_shed >= 1)
                assert room.stats.frames_shed > 0
                # The shed was structured and resumable...
                assert await wait_until(
                    lambda: any(
                        bye.get("reason") == "slow-consumer" and bye.get("resume")
                        for bye in slow.byes
                    )
                )
                # ...and the slow client reconnected and caught up (the
                # injected throttle still applies, so give it time).
                assert await wait_until(
                    lambda: slow.reconnects >= 1 and slow.text == room.document.text,
                    timeout=30.0,
                )
                assert fast.text == room.document.text
                assert_converged(server, "d", slow, fast)
                assert server.faults.stats.slow_waits > 0
                await slow.close()
                await fast.close()
                assert await wait_until(lambda: room.sessions == {})
            assert_no_leaked_sessions(server)

        run(scenario())


class TestDurableLoadgen:
    def test_loadgen_against_durable_room_recovers_after_clean_stop(self, tmp_path):
        """A full mixed-transport load run against a durable room, then a
        cold start from disk alone reproduces the exact final text."""

        async def scenario():
            server = CollabServer(
                data_dir=str(tmp_path),
                durability=DurabilityOptions(fsync_policy="group", group_interval=0.02),
            )
            async with server:
                result = await run_loadgen(
                    server.host,
                    server.port,
                    clients=3,
                    edits_per_client=10,
                    edit_interval=0.0,
                    transport="mixed",
                )
                assert result.converged, result.as_row()
                final_text = server.room("loadgen").document.text
                stats = server.room("loadgen").storage.stats
                assert stats.records_appended > 0
            # Clean stop compacted; a fresh server recovers from disk alone.
            restarted = CollabServer(data_dir=str(tmp_path))
            await restarted.start()
            assert restarted.room("loadgen").document.text == final_text
            assert restarted.recovery["loadgen"].snapshot_loaded
            await restarted.stop()

        run(scenario())
