"""Tests for the incremental merge engine (O(new events) live merges).

Covers the three pillars of the engine:

* the :class:`CriticalCutTracker` maintains exactly the set
  :func:`critical_cut_positions` would compute, under appends, interop
  splits and in-place extensions (property-checked against the batch
  function on randomized histories);
* the sequential fast path and the checkpoint (resident walker state)
  machinery: a quiescent merge touches O(new events), never O(history) —
  proven by engine stat counters, with the legacy rebuild path
  (``incremental=False``) as the contrast;
* end-to-end equivalence: incremental and legacy documents, and the
  per-character oracle, produce identical texts on randomized sessions.
"""

from __future__ import annotations

import random

import pytest

from repro.core.critical_versions import CriticalCutTracker, critical_cut_positions
from repro.core.document import Document
from repro.core.event_graph import EventGraph, expand_to_chars
from repro.core.ids import EventId, delete_op, insert_op
from repro.core.walker import EgWalker
from repro.network.simulator import live_session


def oracle_text(document: Document) -> str:
    expanded = expand_to_chars(document.oplog.graph)
    return EgWalker(expanded, backend="list", enable_clearing=False).replay_text()


# ----------------------------------------------------------------------
# The incremental critical-cut tracker
# ----------------------------------------------------------------------
class TestCriticalCutTracker:
    def check(self, graph: EventGraph, tracker: CriticalCutTracker) -> None:
        expected = sorted(critical_cut_positions(graph, range(len(graph))))
        assert tracker.cuts() == expected

    def test_sequential_appends_are_all_cuts(self):
        graph = EventGraph()
        tracker = CriticalCutTracker(graph)
        for i in range(5):
            graph.add_local_event("a", insert_op(i, "x"))
        assert tracker.cuts() == [0, 1, 2, 3, 4]
        assert tracker.latest_cut() == 4
        assert tracker.all_cuts_from(0)
        self.check(graph, tracker)

    def test_concurrent_branch_kills_cuts_behind_its_fork(self):
        graph = EventGraph()
        tracker = CriticalCutTracker(graph)
        graph.add_local_event("a", insert_op(0, "abc"))
        graph.add_local_event("a", insert_op(3, "def"))
        # A branch forking from event 0 invalidates the cut after event 1.
        graph.add_event(EventId("b", 0), (0,), insert_op(1, "z"), parents_are_indices=True)
        self.check(graph, tracker)
        assert tracker.cuts() == [0]
        # A merge event dominating both heads becomes a new cut.
        graph.add_event(
            EventId("a", 6), (1, 2), insert_op(0, "m"), parents_are_indices=True
        )
        self.check(graph, tracker)
        assert tracker.cuts() == [0, 3]
        assert tracker.latest_cut_before(3) == 0
        assert tracker.latest_cut_before(4) == 3

    def test_parentless_second_root_clears_all_cuts(self):
        graph = EventGraph()
        tracker = CriticalCutTracker(graph)
        graph.add_local_event("a", insert_op(0, "abc"))
        assert tracker.cuts() == [0]
        graph.add_event(EventId("b", 0), (), insert_op(0, "z"), parents_are_indices=True)
        self.check(graph, tracker)
        assert tracker.cuts() == []

    def test_split_shifts_and_twins_cuts(self):
        graph = EventGraph()
        tracker = CriticalCutTracker(graph)
        graph.add_local_event("a", insert_op(0, "abcdef"))
        graph.add_local_event("a", insert_op(6, "gh"))
        assert tracker.cuts() == [0, 1]
        graph.split_event(0, 3)  # semantic no-op: both halves are cuts
        self.check(graph, tracker)
        assert tracker.cuts() == [0, 1, 2]

    def test_extension_keeps_cuts(self):
        graph = EventGraph()
        tracker = CriticalCutTracker(graph)
        graph.add_local_event("a", insert_op(0, "ab"))
        graph.extend_event(0, insert_op(2, "cd"))
        self.check(graph, tracker)
        assert tracker.cuts() == [0]

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_batch_computation_on_random_histories(self, seed):
        """Random appends (sequential runs, forks, merges) + random splits:
        the tracker must always equal the linear-pass recomputation."""
        rng = random.Random(0xC07 + seed)
        graph = EventGraph()
        tracker = CriticalCutTracker(graph)
        next_seq = {"a": 0, "b": 0, "c": 0}
        for step in range(40):
            roll = rng.random()
            if len(graph) and roll < 0.15:
                # Interop-style split of a random multi-char run.
                candidates = [e.index for e in graph.events() if e.op.length >= 2]
                if candidates:
                    idx = rng.choice(candidates)
                    graph.split_event(idx, rng.randint(1, graph[idx].op.length - 1))
                    self.check(graph, tracker)
                    continue
            agent = rng.choice(["a", "b", "c"])
            length = rng.randint(1, 4)
            if not len(graph) or roll < 0.6:
                parents = graph.frontier  # extends everything: sequential
            else:
                # Fork from a random old event (concurrent branch).
                parents = (rng.randrange(len(graph)),)
            op = insert_op(0, "x" * length)
            graph.add_event(
                EventId(agent, next_seq[agent]), parents, op, parents_are_indices=True
            )
            next_seq[agent] += length
            self.check(graph, tracker)


# ----------------------------------------------------------------------
# The O(new events) acceptance claim
# ----------------------------------------------------------------------
class TestQuiescentMergeCost:
    def build_peer_pair(self, history_events: int, *, incremental: bool):
        """An editor with ``history_events`` runs of quiescent history and a
        fully synced watcher using the given engine mode."""
        editor = Document("editor")
        for i in range(history_events):
            # Alternate kinds so coalescing keeps one event per call.
            if i % 2 == 0:
                editor.insert(len(editor.text), f"w{i} ")
            else:
                editor.delete(0, 1)
        watcher = Document("watcher", incremental=incremental)
        watcher.merge(editor)
        return editor, watcher

    def test_incremental_merge_touches_only_new_events(self):
        editor, watcher = self.build_peer_pair(300, incremental=True)
        n = len(editor.oplog.graph)
        assert n >= 300
        baseline = watcher.merge_stats.snapshot()
        editor.insert(len(editor.text), "new!")
        watcher.merge(editor)
        stats = watcher.merge_stats
        # One new event, O(1) work: fast path, no walker, no O(history)
        # bookkeeping of any kind.
        assert stats.last_merge_events_touched == 1
        assert stats.fast_path_merges == baseline["fast_path_merges"] + 1
        assert stats.cut_scan_events == 0
        assert stats.order_events_materialised == 0
        assert stats.walkers_rebuilt == 0
        assert stats.replayed_new_events == baseline["replayed_new_events"]
        assert watcher.text == editor.text
        # Steady state: no resident walker state, memory is just the text.
        assert not watcher.engine.has_resident_state

    def test_legacy_merge_pays_o_history_bookkeeping(self):
        editor, watcher = self.build_peer_pair(300, incremental=False)
        n = len(editor.oplog.graph)
        before = watcher.merge_stats.cut_scan_events
        editor.insert(len(editor.text), "new!")
        watcher.merge(editor)
        stats = watcher.merge_stats
        # The rebuild path re-scans the whole order for critical cuts and
        # materialises it, every single merge.
        assert stats.cut_scan_events - before >= n
        assert stats.last_merge_events_touched >= n
        assert stats.walkers_rebuilt >= 1
        assert watcher.text == editor.text

    def test_per_merge_work_is_flat_in_history_length(self):
        """The acceptance curve in miniature: per-merge work at N and at 4N
        history must be identical for the engine, growing for the rebuild."""
        work = {}
        for mode in (True, False):
            for n in (100, 400):
                editor, watcher = self.build_peer_pair(n, incremental=mode)
                editor.insert(len(editor.text), "x")
                watcher.merge(editor)
                work[(mode, n)] = watcher.merge_stats.last_merge_events_touched
        assert work[(True, 100)] == work[(True, 400)] == 1
        assert work[(False, 400)] >= work[(False, 100)] + 300


class TestSequentialFastPath:
    def test_fast_path_applies_ops_verbatim_without_walker(self):
        alice = Document("alice")
        bob = Document("bob")
        alice.insert(0, "hello world")
        alice.delete(5, 6)
        bob.merge(alice)
        stats = bob.merge_stats
        assert stats.fast_path_merges == 1
        assert stats.fresh_replays == 0 and stats.resumed_merges == 0
        assert bob.text == "hello"

    def test_fast_path_batches_rope_edits_through_coalescer(self):
        alice = Document("alice", coalesce_local_runs=False)
        for i in range(6):
            alice.insert(len(alice.text), "ab")  # six separate run events
        bob = Document("bob")
        ops = bob.merge(alice)
        # Six sequential insert runs coalesce into one rope edit.
        assert len(ops) == 1
        assert ops[0].content == "ab" * 6
        assert bob.merge_stats.fast_path_events == 6
        assert bob.text == alice.text


# ----------------------------------------------------------------------
# Resident walker state between merges
# ----------------------------------------------------------------------
class TestBatchPrefixPeeling:
    def test_sequential_prefix_of_mixed_batch_applies_verbatim(self):
        """A single batch holding a sequential prefix and a concurrent tail
        (what per-tick delivery batching produces on a heal) fast-paths the
        prefix and walks only the tail."""
        alice = Document("alice")
        alice.insert(0, "base ")
        bob = Document("bob")
        bob.merge(alice)
        bob.insert(5, "next ")       # sequential after alice's run
        alice.insert(0, "X")          # concurrent with bob's event
        batch = alice.oplog.export_events() + bob.oplog.export_events()[1:]
        carol = Document("carol")
        carol.apply_remote_events(batch)
        alice.merge(bob)
        assert carol.text == alice.text
        stats = carol.merge_stats
        assert stats.merges == 1
        # The first event (everyone's common ancestor) applied verbatim; the
        # two mutually concurrent events went through the walker.
        assert stats.fast_path_events == 1
        assert stats.replayed_new_events == 2
        assert stats.fast_path_merges == 0  # the merge was not *entirely* fast
        assert (
            stats.fast_path_events + stats.replayed_new_events
            == stats.events_integrated
        )

    def test_critical_run_end(self):
        doc = Document("alice", coalesce_local_runs=False)
        for i in range(4):
            doc.insert(0, "x")  # linear: every position is a cut
        tracker = doc.engine.tracker
        assert tracker.critical_run_end(0) == 3
        assert tracker.critical_run_end(2) == 3
        assert tracker.critical_run_end(4) == 3  # position 4 doesn't exist yet


class TestResidentState:
    def test_concurrent_episode_resumes_instead_of_replaying(self):
        """During a ping-pong concurrent episode with no critical versions,
        the second and later merges replay only their own new events."""
        alice = Document("alice")
        bob = Document("bob")
        alice.insert(0, "base ")
        bob.merge(alice)

        # Create sustained concurrency: both sides keep typing and merging
        # one-way (alice never sends her new edits back immediately), so no
        # new critical version forms on bob's side.
        alice.insert(5, "a1 ")
        bob.insert(0, "b1 ")
        bob.merge(alice)
        assert bob.engine.has_resident_state
        first = bob.merge_stats.snapshot()
        assert first["fresh_replays"] == 1

        alice.insert(0, "a2 ")
        bob.insert(0, "b2 ")
        bob.merge(alice)
        stats = bob.merge_stats
        assert stats.resumed_merges == first["resumed_merges"] + 1
        assert stats.fresh_replays == first["fresh_replays"]  # no re-replay
        # Work = the local gap event + the one new remote event.
        assert stats.last_merge_events_touched <= 3

    def test_checkpoint_dropped_when_critical_version_survives(self):
        alice = Document("alice")
        bob = Document("bob")
        alice.insert(0, "base ")
        bob.merge(alice)
        alice.insert(5, "a1 ")
        bob.insert(0, "b1 ")
        bob.merge(alice)
        assert bob.engine.has_resident_state
        # Alice sees everything of bob, then types: her next event dominates
        # all heads, forming a critical version.  The checkpoint survives
        # this merge — a cut at a batch's tail is routinely un-made by the
        # next concurrent delivery, so the engine only trusts a cut that has
        # survived one.
        alice.merge(bob)
        alice.insert(0, "sync ")
        bob.merge(alice)
        assert bob.engine.has_resident_state
        # The next sequential delivery rides the fast path across the
        # surviving cut, returning bob to text-only memory (§3.5).
        alice.insert(0, "more ")
        bob.merge(alice)
        assert not bob.engine.has_resident_state
        assert bob.engine.resident_record_count() == 0
        bob.merge(alice)  # idempotent no-op merge stays clean
        assert bob.text.startswith("more sync ")
        assert alice.merge(bob) == [] and alice.text == bob.text

    def test_resumed_merges_converge_with_legacy_and_oracle(self):
        for seed in range(8):
            rng = random.Random(0xE61 + seed)
            docs = {
                True: Document("inc", incremental=True),
                False: Document("leg", incremental=False),
            }
            peers = {
                True: Document("peer-inc", incremental=True),
                False: Document("peer-leg", incremental=False),
            }
            for mode in (True, False):
                doc, peer = docs[mode], peers[mode]
                rng_local = random.Random(rng.randint(0, 1 << 30))
                doc.insert(0, "seed ")
                peer.merge(doc)
                for _ in range(30):
                    roll = rng_local.random()
                    target = doc if rng_local.random() < 0.5 else peer
                    if roll < 0.6 or not target.text:
                        pos = rng_local.randint(0, len(target.text))
                        target.insert(pos, rng_local.choice(["ab ", "c", "defg "]))
                    elif roll < 0.8 and target.text:
                        pos = rng_local.randrange(len(target.text))
                        target.delete(pos, min(2, len(target.text) - pos))
                    else:
                        doc.merge(peer) if rng_local.random() < 0.5 else peer.merge(doc)
                doc.merge(peer)
                peer.merge(doc)
                assert doc.text == peer.text == oracle_text(doc)

    def test_live_session_mostly_fast_paths(self):
        """The steady-state claim on a realistic live session: the engine
        takes the fast path for the bulk of deliveries, never rebuilds, and
        ends with no resident state once the session quiesces."""
        sim = live_session(["a", "b", "c"], rounds=50, seed=7)
        texts = {r.text for r in sim.replicas.values()}
        assert len(texts) == 1
        for replica in sim.replicas.values():
            stats = replica.document.merge_stats
            assert stats.walkers_rebuilt == 0
            assert stats.cut_scan_events == 0
            assert stats.merges > 0
            # A large share of deliveries are sequential fast paths.  (With
            # per-tick delivery batching a batch holding two mutually
            # concurrent events cannot be fast — their versions are not
            # critical once both are in the graph — and consecutive
            # sequential events collapse into one fast merge, so the ratio
            # sits lower than per-event delivery used to report.)
            assert stats.fast_path_merges >= stats.merges * 0.4
            assert stats.fast_path_events > 0
            # Nothing was integrated twice or dropped.
            assert (
                stats.fast_path_events + stats.replayed_new_events
                == stats.events_integrated
            )
            assert oracle_text(replica.document) == replica.text


# ----------------------------------------------------------------------
# Sender-side run coalescing (oplog-level)
# ----------------------------------------------------------------------
class TestSenderSideCoalescing:
    def test_keystrokes_extend_the_frontier_run(self):
        doc = Document("alice")
        for ch in "hello":
            doc.insert(len(doc.text), ch)
        assert len(doc.oplog) == 1
        assert doc.oplog.graph[0].op.content == "hello"
        # Holding Delete: same-index deletes extend the delete run.
        for _ in range(3):
            doc.delete(0, 1)
        assert len(doc.oplog) == 2
        assert doc.oplog.graph[1].op.length == 3
        assert doc.text == "lo"

    def test_non_continuing_edits_break_the_run(self):
        doc = Document("alice")
        doc.insert(0, "ab")
        doc.insert(1, "x")  # mid-run insert: not a continuation
        assert len(doc.oplog) == 2
        doc.insert(2, "y")  # continues the *new* frontier run
        assert len(doc.oplog) == 2

    def test_remote_event_breaks_the_run(self):
        alice, bob = Document("alice"), Document("bob")
        alice.insert(0, "ab")
        bob.merge(alice)
        bob.insert(2, "cd")
        alice.insert(2, "ef")  # concurrent with bob's edit
        alice.merge(bob)
        # Frontier is no longer alice's own run: next edit is a new event.
        before = len(alice.oplog)
        alice.insert(0, "z")
        assert len(alice.oplog) == before + 1
        bob.merge(alice)
        assert alice.text == bob.text == oracle_text(alice)

    def test_export_since_seq_ships_only_the_extension_suffix(self):
        alice = Document("alice")
        alice.insert(0, "abc")
        bob = Document("bob")
        bob.apply_remote_events(alice.oplog.export_events())
        assert bob.text == "abc"
        mark = alice.oplog.graph.next_seq_for("alice")
        alice.insert(3, "def")  # extends the run in place
        delta = alice.oplog.export_since_seq("alice", mark)
        assert len(delta) == 1
        assert delta[0].id == EventId("alice", 3)
        assert delta[0].parents == (EventId("alice", 2),)
        assert delta[0].op.content == "def"
        bob.apply_remote_events(delta)
        assert bob.text == "abcdef"
        # And the classic full-sync path agrees with the carved copy.
        carol = Document("carol")
        carol.merge(alice)
        assert carol.text == "abcdef"

    def test_peer_with_prefix_gets_suffix_via_events_since(self):
        alice = Document("alice")
        alice.insert(0, "abc")
        bob = Document("bob")
        bob.merge(alice)
        remote = bob.version()
        alice.insert(3, "defg")  # in-place extension
        missing = alice.events_since(remote)
        assert sum(e.op.length for e in missing) == 4
        bob.apply_remote_events(missing)
        assert bob.text == alice.text == "abcdefg"
