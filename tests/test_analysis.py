"""Tests for repro.analysis: each rule's fixtures, the filtering layers
(suppressions, baseline), the driver/CLI plumbing — and the meta-test that
lints this very repository, pinning "zero non-baselined findings" as an
invariant of the tree itself.
"""

from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    Finding,
    all_rules,
    analyze_source,
    get_rule,
    run_analysis,
)
from repro.analysis.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]

# Virtual paths used to aim fixture snippets at path-scoped rules.
CORE_PATH = "src/repro/core/fixture.py"
STORAGE_PATH = "src/repro/storage/fixture.py"
SERVER_PATH = "src/repro/server/fixture.py"
NEUTRAL_PATH = "src/repro/fixture.py"


def lint(source, path=NEUTRAL_PATH, rule=None, baseline=None):
    """Lint a snippet under a virtual path, optionally with a single rule."""
    rules = [get_rule(rule)] if rule else None
    return analyze_source(source, path, rules=rules, baseline=baseline)


def rule_names(result):
    return sorted(f.rule for f in result.findings)


class TestRegistry:
    def test_battery_is_complete(self):
        names = {rule.name for rule in all_rules()}
        assert {
            "deprecated-snapshot-api",
            "column-encapsulation",
            "per-char-hot-path",
            "await-state-race",
            "mutable-default-arg",
            "frozen-dataclass-mutation",
            "slots-attribute-escape",
        } <= names

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            get_rule("no-such-rule")


class TestDeprecatedSnapshotApi:
    RULE = "deprecated-snapshot-api"

    def test_flags_each_shim_attribute(self):
        src = (
            "def f(doc):\n"
            "    a = doc.remote_version\n"
            "    b = doc.text_at_remote(a)\n"
            "    c = doc.history_versions()\n"
        )
        result = lint(src, rule=self.RULE)
        assert len(result.findings) == 3
        assert all(f.rule == self.RULE for f in result.findings)

    def test_flags_version_only_on_oplog_receivers(self):
        src = (
            "def f(doc, oplog):\n"
            "    bad = oplog.version\n"
            "    also_bad = doc.oplog.version\n"
            "    fine = doc.version()\n"
            "    config_fine = config.version\n"
        )
        result = lint(src, rule=self.RULE)
        assert len(result.findings) == 2
        assert {f.line for f in result.findings} == {2, 3}

    def test_blessed_apis_are_clean(self):
        src = (
            "def f(doc):\n"
            "    v = doc.version()\n"
            "    doc.text_at(v)\n"
            "    doc.versions()\n"
            "    doc.oplog.local_version\n"
        )
        assert lint(src, rule=self.RULE).findings == []

    @pytest.mark.parametrize(
        "home",
        [
            "src/repro/core/document.py",
            "src/repro/core/oplog.py",
            "tests/test_deprecation_shims.py",
        ],
    )
    def test_shim_homes_are_excluded(self, home):
        src = "def f(doc):\n    return doc.remote_version\n"
        assert lint(src, path=home, rule=self.RULE).findings == []

    def test_suppression_comment_silences(self):
        src = (
            "def f(doc):\n"
            "    return doc.remote_version  "
            "# lint: disable=deprecated-snapshot-api -- parity check\n"
        )
        result = lint(src, rule=self.RULE)
        assert result.findings == []
        assert len(result.suppressed) == 1


class TestColumnEncapsulation:
    RULE = "column-encapsulation"

    def test_flags_handle_columns_on_any_foreign_receiver(self):
        src = (
            "def f(graph, walker):\n"
            "    a = graph._h_id[3]\n"
            "    b = walker._h_parents\n"
        )
        result = lint(src, rule=self.RULE)
        assert len(result.findings) == 2

    def test_order_columns_flag_only_graph_receivers(self):
        src = (
            "def f(graph, widget):\n"
            "    bad = graph._order\n"
            "    bad2 = doc.graph._frontier\n"
            "    fine = widget._order\n"
        )
        result = lint(src, rule=self.RULE)
        assert {f.line for f in result.findings} == {2, 3}

    def test_self_receiver_is_not_flagged(self):
        # An unrelated class may reuse the _h_ prefix for its own state.
        src = (
            "class Histogram:\n"
            "    def bump(self):\n"
            "        self._h_total = 1\n"
        )
        assert lint(src, rule=self.RULE).findings == []

    def test_event_graph_module_is_excluded(self):
        src = "def split(graph):\n    return graph._h_id[0]\n"
        path = "src/repro/core/event_graph.py"
        assert lint(src, path=path, rule=self.RULE).findings == []

    def test_public_accessors_are_clean(self):
        src = (
            "def f(graph):\n"
            "    for event in graph.events():\n"
            "        graph.index_of_handle(event.handle)\n"
            "    return graph.frontier\n"
        )
        assert lint(src, rule=self.RULE).findings == []


class TestPerCharHotPath:
    RULE = "per-char-hot-path"

    def test_flags_loop_over_run_content(self):
        src = "def f(event):\n    for ch in event.op.content:\n        pass\n"
        result = lint(src, path=CORE_PATH, rule=self.RULE)
        assert len(result.findings) == 1

    def test_flags_wrapped_iteration_and_comprehensions(self):
        src = (
            "def f(op, mask):\n"
            "    kept = [c for c, keep in zip(op.content, mask) if keep]\n"
            "    for i, c in enumerate(op.content):\n"
            "        pass\n"
        )
        result = lint(src, path=STORAGE_PATH, rule=self.RULE)
        assert len(result.findings) == 2

    def test_flags_range_over_length(self):
        src = (
            "def f(op):\n"
            "    return [op.id_at(k) for k in range(op.length)]\n"
        )
        result = lint(src, path=CORE_PATH, rule=self.RULE)
        assert len(result.findings) == 1

    def test_flags_expand_to_chars_call(self):
        src = "def f(graph):\n    return expand_to_chars(graph)\n"
        result = lint(src, path=STORAGE_PATH, rule=self.RULE)
        assert len(result.findings) == 1
        assert "oracle" in result.findings[0].message

    def test_oracle_definition_is_allowlisted(self):
        src = (
            "def expand_to_chars(graph):\n"
            "    for event in graph.events():\n"
            "        for k in range(event.op.length):\n"
            "            yield event.id_at(k)\n"
        )
        path = "src/repro/core/event_graph.py"
        assert lint(src, path=path, rule=self.RULE).findings == []

    def test_rule_is_scoped_to_run_native_modules(self):
        src = "def f(op):\n    return [c for c in op.content]\n"
        assert lint(src, path=SERVER_PATH, rule=self.RULE).findings == []
        assert lint(src, path="tests/test_x.py", rule=self.RULE).findings == []

    def test_run_level_loops_are_clean(self):
        src = (
            "def f(graph, op):\n"
            "    for event in graph.events():\n"
            "        pass\n"
            "    for run in op.runs:\n"
            "        pass\n"
        )
        assert lint(src, path=CORE_PATH, rule=self.RULE).findings == []


class TestAwaitStateRace:
    RULE = "await-state-race"

    def test_flags_read_await_write(self):
        src = (
            "class Room:\n"
            "    async def park(self, frame):\n"
            "        known = self.pending\n"
            "        await self.flush()\n"
            "        self.pending = known + [frame]\n"
        )
        result = lint(src, path=SERVER_PATH, rule=self.RULE)
        assert len(result.findings) == 1
        assert "self.pending" in result.findings[0].message

    def test_reread_after_await_is_the_sanctioned_fix(self):
        src = (
            "class Room:\n"
            "    async def park(self, frame):\n"
            "        known = self.pending\n"
            "        await self.flush()\n"
            "        self.pending = self.pending + [frame]\n"
        )
        assert lint(src, path=SERVER_PATH, rule=self.RULE).findings == []

    def test_capture_then_write_before_await_is_clean(self):
        src = (
            "class Server:\n"
            "    async def stop(self):\n"
            "        server, self._server = self._server, None\n"
            "        if server is not None:\n"
            "            await server.wait_closed()\n"
        )
        assert lint(src, path=SERVER_PATH, rule=self.RULE).findings == []

    def test_reread_validate_bailout_branch_is_clean(self):
        # Re-read after the await, raise if a concurrent task won: the fix
        # pattern this rule's message recommends must itself come out clean.
        src = (
            "class Server:\n"
            "    async def start(self):\n"
            "        if self._server is not None:\n"
            "            raise RuntimeError\n"
            "        server = await self.bind()\n"
            "        if self._server is not None:\n"
            "            raise RuntimeError\n"
            "        self._server = server\n"
        )
        assert lint(src, path=SERVER_PATH, rule=self.RULE).findings == []

    def test_cross_iteration_race_is_caught(self):
        # The read at the bottom of iteration N is still the last observation
        # when iteration N+1 suspends in recv() and then writes: loop bodies
        # are walked twice precisely to catch this wrap-around interleaving.
        src = (
            "class Conn:\n"
            "    async def pump(self):\n"
            "        while True:\n"
            "            frame = await self.recv()\n"
            "            self.last_frame = frame\n"
            "            if self.last_frame is None:\n"
            "                return\n"
        )
        result = lint(src, path=SERVER_PATH, rule=self.RULE)
        assert len(result.findings) == 1
        assert "self.last_frame" in result.findings[0].message

    def test_loop_with_fresh_read_each_iteration_is_clean(self):
        # The loop test re-reads the attribute before any write can happen,
        # so the pre-await observation is never the basis of the write.
        src = (
            "class Conn:\n"
            "    async def pump(self):\n"
            "        while True:\n"
            "            if self.state == 'open':\n"
            "                await self.send()\n"
            "            else:\n"
            "                self.state = 'open'\n"
        )
        assert lint(src, path=SERVER_PATH, rule=self.RULE).findings == []

    def test_augassign_counts_as_reread(self):
        src = (
            "class Room:\n"
            "    async def bump(self):\n"
            "        if self.count > 0:\n"
            "            await self.flush()\n"
            "        self.count += 1\n"
        )
        assert lint(src, path=SERVER_PATH, rule=self.RULE).findings == []

    def test_async_with_and_async_for_suspend(self):
        src = (
            "class Room:\n"
            "    async def drain(self):\n"
            "        n = self.count\n"
            "        async with self.lock:\n"
            "            pass\n"
            "        self.count = n - 1\n"
        )
        result = lint(src, path=SERVER_PATH, rule=self.RULE)
        assert len(result.findings) == 1

    def test_rule_is_scoped_to_server_package(self):
        src = (
            "class Room:\n"
            "    async def park(self):\n"
            "        n = self.count\n"
            "        await self.flush()\n"
            "        self.count = n + 1\n"
        )
        assert lint(src, path=CORE_PATH, rule=self.RULE).findings == []

    def test_rule_covers_the_faults_package(self):
        """The fault injector mutates shared counters from transport
        coroutines — the race rule's scope includes it."""
        src = (
            "class Injector:\n"
            "    async def throttle(self):\n"
            "        n = self.waits\n"
            "        await self.sleep()\n"
            "        self.waits = n + 1\n"
        )
        result = lint(src, path="src/repro/faults/fixture.py", rule=self.RULE)
        assert len(result.findings) == 1

    def test_sync_methods_and_free_coroutines_are_out_of_scope(self):
        src = (
            "class Room:\n"
            "    def sync_toggle(self):\n"
            "        n = self.count\n"
            "        self.count = n + 1\n"
            "async def free(worker):\n"
            "    n = worker.count\n"
            "    await worker.flush()\n"
            "    worker.count = n + 1\n"
        )
        assert lint(src, path=SERVER_PATH, rule=self.RULE).findings == []


class TestMutableDefaultArg:
    RULE = "mutable-default-arg"

    def test_flags_literal_and_constructor_defaults(self):
        src = (
            "def f(a=[], b={}, *, c=set()):\n"
            "    pass\n"
        )
        result = lint(src, rule=self.RULE)
        assert len(result.findings) == 3

    def test_none_and_immutable_defaults_are_clean(self):
        src = "def f(a=None, b=(), c='x', d=0):\n    pass\n"
        assert lint(src, rule=self.RULE).findings == []


class TestFrozenDataclassMutation:
    RULE = "frozen-dataclass-mutation"

    def test_flags_self_assignment_in_frozen_method(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Version:\n"
            "    ids: tuple\n"
            "    def clobber(self):\n"
            "        self.ids = ()\n"
        )
        result = lint(src, rule=self.RULE)
        assert len(result.findings) == 1
        assert "FrozenInstanceError" in result.findings[0].message

    def test_flags_object_setattr_outside_construction(self):
        src = (
            "def patch(event, text):\n"
            "    object.__setattr__(event.op, 'content', text)\n"
        )
        result = lint(src, rule=self.RULE)
        assert len(result.findings) == 1

    def test_construction_time_setattr_is_sanctioned(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Version:\n"
            "    ids: tuple\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'ids', tuple(self.ids))\n"
        )
        assert lint(src, rule=self.RULE).findings == []

    def test_unfrozen_dataclass_may_mutate(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Cursor:\n"
            "    pos: int\n"
            "    def advance(self):\n"
            "        self.pos = self.pos + 1\n"
        )
        assert lint(src, rule=self.RULE).findings == []


class TestSlotsAttributeEscape:
    RULE = "slots-attribute-escape"

    def test_flags_attribute_outside_literal_slots(self):
        src = (
            "class Node:\n"
            "    __slots__ = ('left', 'right')\n"
            "    def __init__(self):\n"
            "        self.left = None\n"
            "        self.cache = {}\n"
        )
        result = lint(src, rule=self.RULE)
        assert len(result.findings) == 1
        assert "cache" in result.findings[0].message

    def test_flags_dataclass_slots_field_escape(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(slots=True)\n"
            "class Point:\n"
            "    x: int\n"
            "    def mark(self):\n"
            "        self.seen = True\n"
        )
        result = lint(src, rule=self.RULE)
        assert len(result.findings) == 1

    def test_inherited_slots_resolve_within_module(self):
        src = (
            "class Base:\n"
            "    __slots__ = ('a',)\n"
            "class Child(Base):\n"
            "    __slots__ = ('b',)\n"
            "    def both(self):\n"
            "        self.a = 1\n"
            "        self.b = 2\n"
        )
        assert lint(src, rule=self.RULE).findings == []

    def test_external_base_disables_the_check(self):
        # An imported base may provide a __dict__; cannot prove escape.
        src = (
            "class Child(SomeImportedBase):\n"
            "    __slots__ = ('b',)\n"
            "    def write(self):\n"
            "        self.other = 1\n"
        )
        assert lint(src, rule=self.RULE).findings == []

    def test_dict_in_slots_disables_the_check(self):
        src = (
            "class Loose:\n"
            "    __slots__ = ('a', '__dict__')\n"
            "    def write(self):\n"
            "        self.anything = 1\n"
        )
        assert lint(src, rule=self.RULE).findings == []


class TestSuppressions:
    def test_bare_disable_silences_every_rule(self):
        src = "def f(a=[]):  # lint: disable\n    pass\n"
        result = lint(src, rule="mutable-default-arg")
        assert result.findings == [] and len(result.suppressed) == 1

    def test_named_disable_leaves_other_rules_armed(self):
        src = "def f(a=[]):  # lint: disable=per-char-hot-path\n    pass\n"
        result = lint(src, rule="mutable-default-arg")
        assert len(result.findings) == 1 and result.suppressed == []

    def test_justification_text_after_rule_list_is_ignored(self):
        src = (
            "def f(a=[]):  "
            "# lint: disable=mutable-default-arg -- shared sentinel, never mutated\n"
            "    pass\n"
        )
        result = lint(src, rule="mutable-default-arg")
        assert result.findings == [] and len(result.suppressed) == 1

    def test_directive_inside_string_literal_is_not_a_directive(self):
        src = (
            "DOC = '# lint: disable'\n"
            "def f(a=[]):\n"
            "    pass\n"
        )
        result = lint(src, rule="mutable-default-arg")
        assert len(result.findings) == 1


class TestBaseline:
    SRC = "def f(a=[]):\n    pass\n"

    def _finding(self):
        return lint(self.SRC, rule="mutable-default-arg").findings[0]

    def test_baselined_finding_does_not_fail(self):
        baseline = Baseline.from_findings([self._finding()], justification="ok")
        result = lint(self.SRC, rule="mutable-default-arg", baseline=baseline)
        assert result.findings == [] and len(result.baselined) == 1

    def test_fingerprint_survives_line_moves(self):
        moved = "import os\n\n\n" + self.SRC  # three lines of drift above
        baseline = Baseline.from_findings([self._finding()], justification="ok")
        result = lint(moved, rule="mutable-default-arg", baseline=baseline)
        assert result.findings == []

    def test_entries_are_consumed_multiset_style(self):
        doubled = "def f(a=[]):\n    pass\ndef g(a=[]):\n    pass\n"
        one = lint(doubled, rule="mutable-default-arg", baseline=None).findings[0]
        baseline = Baseline.from_findings([one], justification="ok")
        result = lint(doubled, rule="mutable-default-arg", baseline=baseline)
        # Two identical offending lines, one entry: exactly one still fails.
        assert len(result.findings) == 1 and len(result.baselined) == 1

    def test_stale_entries_are_reported(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(a=None):\n    pass\n")
        baseline = Baseline(
            [BaselineEntry("mutable-default-arg", str(clean), "cafe" * 4, "old")]
        )
        result = run_analysis([clean], baseline=baseline)
        assert result.findings == []
        assert len(result.stale_baseline) == 1

    def test_roundtrips_through_json(self, tmp_path):
        baseline = Baseline.from_findings([self._finding()], justification="why")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert [e.as_dict() for e in loaded.entries] == [
            e.as_dict() for e in baseline.entries
        ]


class TestDriverAndCli:
    def test_parse_error_is_a_loud_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        result = run_analysis([bad])
        assert rule_names(result) == ["parse-error"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(a=[]):\n    pass\n")
        clean = tmp_path / "clean.py"
        clean.write_text("def f(a=None):\n    pass\n")
        assert cli_main([str(clean), "--no-baseline"]) == 0
        assert cli_main([str(dirty), "--no-baseline"]) == 1
        assert cli_main([str(tmp_path / "missing.py")]) == 2
        assert cli_main(["--select", "no-such-rule", str(clean)]) == 2
        capsys.readouterr()

    def test_cli_select_and_ignore(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(a=[]):\n    pass\n")
        args = [str(dirty), "--no-baseline"]
        assert cli_main(args + ["--select", "slots-attribute-escape"]) == 0
        assert cli_main(args + ["--ignore", "mutable-default-arg"]) == 0
        capsys.readouterr()

    def test_cli_json_format(self, tmp_path, capsys):
        import json

        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(a=[]):\n    pass\n")
        assert cli_main([str(dirty), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert [f["rule"] for f in payload["findings"]] == ["mutable-default-arg"]

    def test_cli_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.name in out


class TestRepositoryIsClean:
    """The meta-test: the linter, with the committed baseline, must pass over
    the tree itself.  A new violation anywhere fails here first."""

    def test_source_tree_has_no_unbaselined_findings(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
        targets = [Path(p) for p in ("src", "tests", "benchmarks", "examples")]
        result = run_analysis([p for p in targets if p.exists()], baseline=baseline)
        rendered = "\n".join(f.render() for f in result.findings)
        assert result.ok, f"unbaselined findings:\n{rendered}"

    def test_committed_baseline_has_no_stale_or_todo_entries(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
        assert all(
            e.justification and "TODO" not in e.justification
            for e in baseline.entries
        ), "every baseline entry needs a real one-line justification"
        targets = [Path(p) for p in ("src", "tests", "benchmarks", "examples")]
        result = run_analysis([p for p in targets if p.exists()], baseline=baseline)
        stale = "\n".join(e.fingerprint for e in result.stale_baseline)
        assert not result.stale_baseline, f"stale baseline entries:\n{stale}"


class TestTypingGate:
    def test_mypy_strict_passes_over_typed_packages(self):
        mypy = pytest.importorskip(
            "mypy.api", reason="mypy is a CI-only dev dependency"
        )
        stdout, stderr, status = mypy.run(
            ["--config-file", str(REPO_ROOT / "mypy.ini")]
        )
        assert status == 0, f"mypy strict failed:\n{stdout}\n{stderr}"
