"""Handle stability under the columnar event graph's indirection table.

The graph stores events in handle-indexed columns and keeps the local order
as an array of handles with strictly increasing order labels (see
``event_graph.py``'s module docstring).  These tests pin down the contract
that the rest of the stack — the critical-cut tracker, the merge engine's
resident checkpoint, saved :class:`Version` handles, the storage codec —
relies on:

* handles and :class:`Event` views are **never renumbered and never go
  stale**: they survive interop splits (the handle stays with the left
  half), in-place run extensions, and arbitrary later growth;
* ``index_of_handle`` / ``handle_at`` stay exact inverses and order labels
  stay strictly increasing through splits, including the label-space
  re-spread when many splits land between the same two events;
* the tracker's handle-keyed cut list matches a from-scratch
  :func:`critical_cut_positions` rebuild after any split pattern;
* the merge engine's resident checkpoint is surgically *patched* (never
  dropped) when an interop split or an in-place extension lands inside the
  window it covers, and the patched state still converges with the legacy
  engine and the per-character oracle.
"""

from __future__ import annotations

from repro.core.critical_versions import CriticalCutTracker, critical_cut_positions
from repro.core.document import Document
from repro.core.event_graph import EventGraph, expand_to_chars
from repro.core.ids import EventId, delete_op, insert_op
from repro.core.oplog import RemoteEvent
from repro.core.walker import EgWalker
from repro.storage import decode_event_graph, encode_event_graph


def sequential_graph(chunks: list[str], agent: str = "a") -> EventGraph:
    """One insert run per chunk, chained — a purely sequential history."""
    graph = EventGraph()
    pos = 0
    for chunk in chunks:
        graph.add_local_event(agent, insert_op(pos, chunk))
        pos += len(chunk)
    return graph


def oracle_text(document: Document) -> str:
    expanded = expand_to_chars(document.oplog.graph)
    return EgWalker(expanded, backend="list", enable_clearing=False).replay_text()


class TestHandleIndirection:
    def build(self) -> EventGraph:
        graph = EventGraph()
        graph.add_event(EventId("a", 0), (), insert_op(0, "abcdef"))
        graph.add_event(EventId("b", 0), (), insert_op(0, "XY"))
        graph.add_event(
            EventId("c", 0), [EventId("a", 5), EventId("b", 1)], insert_op(0, "z")
        )
        return graph

    def test_views_are_singletons_with_live_attributes(self):
        graph = self.build()
        view = graph[0]
        assert graph[0] is view and graph.events()[0] is view
        graph.split_event(0, 3)
        # The view still points at the left half: same object, same id, the
        # index reads live.
        assert graph[0] is view
        assert view.index == 0 and view.id == EventId("a", 0)
        assert view.op.content == "abc"

    def test_handles_survive_split(self):
        graph = self.build()
        handles = [graph.handle_at(i) for i in range(len(graph))]
        saved_ids = [graph.id_of(i) for i in range(len(graph))]
        right = graph.split_event(0, 4)
        # Existing handles still resolve to the same events (by id), at their
        # current — shifted — indices.
        assert graph.index_of_handle(handles[0]) == 0
        assert graph.index_of_handle(handles[1]) == 2
        assert graph.index_of_handle(handles[2]) == 3
        for handle, saved in zip(handles, saved_ids):
            # Whitebox: this test pins the column layout itself.
            assert graph._h_id[handle] == saved  # lint: disable=column-encapsulation
        # The right half is a fresh handle directly after the left.
        assert right.index == 1 and right.id == EventId("a", 4)
        assert right.parents == (0,)
        # The whole-run dependency of "c" moved to the right half.
        assert graph.parents_of(3) == (1, 2)

    def test_index_of_handle_is_the_inverse_of_handle_at(self):
        graph = self.build()
        graph.split_event(0, 2)
        graph.split_event(1, 2)
        graph.split_event(3, 1)
        for index in range(len(graph)):
            assert graph.index_of_handle(graph.handle_at(index)) == index

    def test_order_keys_stay_strictly_increasing(self):
        graph = self.build()
        graph.split_event(0, 3)
        keys = [graph.order_key(graph.handle_at(i)) for i in range(len(graph))]
        assert keys == sorted(keys) and len(set(keys)) == len(keys)

    def test_label_respread_when_gap_exhausts(self):
        # Repeatedly splitting off one character bisects the same label gap
        # every time, which must eventually trigger the O(n) re-spread — and
        # everything must keep resolving exactly afterwards.
        graph = EventGraph()
        graph.add_event(EventId("a", 0), (), insert_op(0, "x" * 64))
        view = graph[0]
        for _ in range(40):
            graph.split_event(0, graph[0].op.length - 1)
        assert len(graph) == 41
        assert graph[0] is view and view.index == 0
        keys = [graph.order_key(graph.handle_at(i)) for i in range(len(graph))]
        assert keys == sorted(keys) and len(set(keys)) == len(keys)
        for index in range(len(graph)):
            assert graph.index_of_handle(graph.handle_at(index)) == index
        # The per-character chaining is intact: a split graph is semantically
        # the unsplit one.
        assert graph.parents_of(5) == (4,)
        assert EgWalker(graph).replay_text() == "x" * 64

    def test_handles_survive_in_place_extension(self):
        graph = EventGraph()
        event = graph.add_local_event("a", insert_op(0, "ab"))
        handle = event.handle
        graph.extend_event(0, insert_op(2, "cd"))
        assert graph.handle_at(0) == handle
        assert graph[0] is event and event.op.content == "abcd"
        assert graph.num_chars == 4
        assert graph.locate(EventId("a", 3)) == (0, 3)

    def test_frontier_handles_match_frontier(self):
        graph = self.build()
        assert {graph.index_of_handle(h) for h in graph.frontier_handles} == set(
            graph.frontier
        )
        graph.split_event(1, 1)
        assert {graph.index_of_handle(h) for h in graph.frontier_handles} == set(
            graph.frontier
        )


class TestTrackerHandleKeyed:
    def test_cuts_survive_splits_elsewhere_without_shifting(self):
        graph = sequential_graph(["ab", "cd", "ef", "gh"])
        tracker = CriticalCutTracker(graph)
        assert tracker.cuts() == list(range(4))
        graph.split_event(1, 1)
        # Every cut position past the split shifted; the handle-keyed list
        # must agree with a from-scratch recompute.
        expected = sorted(critical_cut_positions(graph, range(len(graph))))
        assert tracker.cuts() == expected
        assert tracker.latest_cut() == expected[-1]
        assert tracker.all_cuts_from(0)

    def test_split_of_a_cut_event_gains_a_twin(self):
        graph = EventGraph()
        graph.add_event(EventId("a", 0), (), insert_op(0, "abcd"))
        tracker = CriticalCutTracker(graph)
        assert tracker.cuts() == [0]
        graph.split_event(0, 2)
        assert tracker.cuts() == [0, 1]
        assert tracker.is_cut(0) and tracker.is_cut(1)
        assert tracker.critical_run_end(0) == 1

    def test_cut_queries_after_mixed_splits_match_rebuild(self):
        graph = sequential_graph(["ab", "cd", "ef"])
        # A concurrent root event kills criticality for the history's tail.
        graph.add_event(EventId("z", 0), (), insert_op(0, "Q"))
        graph.add_event(
            EventId("a", 6),
            [EventId("a", 5), EventId("z", 0)],
            insert_op(0, "r"),
        )
        tracker = CriticalCutTracker(graph)
        graph.split_event(1, 1)
        expected = sorted(critical_cut_positions(graph, range(len(graph))))
        assert tracker.cuts() == expected
        for position in range(len(graph) + 1):
            brute = [c for c in expected if c < position]
            assert tracker.latest_cut_before(position) == (
                brute[-1] if brute else None
            )


def _remote(graph_id, parents, op):
    return RemoteEvent(id=graph_id, parents=tuple(parents), op=op)


class TestCheckpointPatching:
    def test_insert_split_inside_window_patches_checkpoint(self):
        # carol holds only a prefix of alice's run, edits on top of it, and
        # bob — whose resident checkpoint covers the full run — must split
        # the run *inside the resident window* without dropping the state.
        alice = Document("alice")
        bob = Document("bob")
        carol = Document("carol")
        alice.insert(0, "abc")
        carol.merge(alice)  # carol stops at the 3-char prefix
        alice.insert(3, "def")  # extends the run in place: one 6-char run
        bob.insert(0, "Z")  # concurrent with everything of alice
        bob.merge(alice)
        assert bob.engine.has_resident_state
        stats_before = bob.merge_stats.snapshot()
        carol.insert(3, "Q")  # parent references mid-run character "c"
        bob.merge(carol)
        stats = bob.merge_stats
        assert stats.checkpoints_patched > stats_before["checkpoints_patched"]
        assert stats.checkpoints_dropped == stats_before["checkpoints_dropped"]
        assert stats.resumed_merges == stats_before["resumed_merges"] + 1
        # Convergence against a legacy replica fed the same histories, and
        # against the per-character oracle.
        legacy = Document("legacy-observer", incremental=False)
        legacy.merge(bob)
        assert legacy.text == bob.text == oracle_text(bob)
        carol.merge(bob)
        alice.merge(bob)
        assert carol.text == alice.text == bob.text

    def test_delete_split_inside_window_rekeys_delete_targets(self):
        # Same shape, but the split run is a *delete* run: the resident
        # state's retreat/advance bookkeeping must be re-keyed under the two
        # halves' ids (split_delete_targets), not thrown away.
        alice = Document("alice")
        bob = Document("bob")
        carol = Document("carol")
        alice.insert(0, "abcdef")
        bob.merge(alice)
        carol.merge(alice)
        alice.delete(0, 1)
        alice.delete(0, 1)  # extends the delete run: one 2-char run so far
        carol.merge(alice)  # carol holds the 2-char prefix of the run
        alice.delete(0, 1)
        alice.delete(0, 1)  # ... extended to 4 chars on alice's side
        bob.insert(6, "Z")  # concurrent, forces walker state on merge
        bob.merge(alice)
        assert bob.engine.has_resident_state
        stats_before = bob.merge_stats.snapshot()
        carol.insert(0, "Q")  # parent references the delete run mid-way
        bob.merge(carol)
        stats = bob.merge_stats
        assert stats.checkpoints_patched > stats_before["checkpoints_patched"]
        assert stats.checkpoints_dropped == stats_before["checkpoints_dropped"]
        legacy = Document("legacy-observer", incremental=False)
        legacy.merge(bob)
        assert legacy.text == bob.text == oracle_text(bob)
        alice.merge(bob)
        carol.merge(bob)
        assert alice.text == carol.text == bob.text

    def _seed_resident_sole_frontier(self, kind: str) -> Document:
        """A document whose resident checkpoint covers its own agent's run
        as the sole frontier head — the live-typing extension shape."""
        doc = Document("local")
        a0 = _remote(EventId("local", 0), (), insert_op(0, "ab"))
        concurrent = _remote(EventId("remote", 0), (), insert_op(0, "CD"))
        if kind == "insert":
            join_op = insert_op(0, "x")
        else:
            join_op = delete_op(0, 1)
        join = _remote(
            EventId("local", 2), (EventId("local", 1), EventId("remote", 1)), join_op
        )
        doc.apply_remote_events([a0])
        doc.apply_remote_events([concurrent])
        doc.apply_remote_events([join])
        assert doc.engine.has_resident_state
        return doc

    def test_insert_extension_folds_into_resident_state(self):
        doc = self._seed_resident_sole_frontier("insert")
        stats_before = doc.merge_stats.snapshot()
        # The local user keeps typing: the edit extends the resident join
        # run in place, and the live state absorbs it instead of dropping.
        doc.insert(1, "y")
        stats = doc.merge_stats
        assert stats.checkpoints_patched == stats_before["checkpoints_patched"] + 1
        assert stats.checkpoints_dropped == stats_before["checkpoints_dropped"]
        assert doc.engine.has_resident_state
        assert len(doc.oplog.graph) == 3  # extended in place, no new event
        # A further concurrent remote event resumes against the patched
        # state; the result must match legacy and the oracle.
        late = _remote(EventId("remote", 2), (EventId("remote", 1),), insert_op(2, "E"))
        doc.apply_remote_events([late])
        assert stats.resumed_merges == stats_before["resumed_merges"] + 1
        legacy = Document("legacy-observer", incremental=False)
        legacy.merge(doc)
        assert legacy.text == doc.text == oracle_text(doc)

    def test_delete_extension_folds_into_resident_state(self):
        doc = self._seed_resident_sole_frontier("delete")
        stats_before = doc.merge_stats.snapshot()
        doc.delete(0, 1)  # extends the resident delete run in place
        stats = doc.merge_stats
        assert stats.checkpoints_patched == stats_before["checkpoints_patched"] + 1
        assert stats.checkpoints_dropped == stats_before["checkpoints_dropped"]
        assert len(doc.oplog.graph) == 3
        late = _remote(EventId("remote", 2), (EventId("remote", 1),), insert_op(0, "E"))
        doc.apply_remote_events([late])
        assert stats.resumed_merges == stats_before["resumed_merges"] + 1
        legacy = Document("legacy-observer", incremental=False)
        legacy.merge(doc)
        assert legacy.text == doc.text == oracle_text(doc)


class TestStorageRoundTrip:
    def test_split_history_round_trips_through_codec(self):
        graph = sequential_graph(["ab", "cd", "ef"])
        graph.add_event(EventId("z", 0), (), insert_op(0, "Q"))
        graph.split_event(1, 1)
        original = [(e.id, e.parents, e.op) for e in graph.events()]
        decoded = decode_event_graph(encode_event_graph(graph)).graph
        assert [(e.id, e.parents, e.op) for e in decoded.events()] == original
        # The decoded graph is a live columnar graph: handles resolve, the
        # order labels are consistent, and it accepts further growth.
        for index in range(len(decoded)):
            assert decoded.index_of_handle(decoded.handle_at(index)) == index
        decoded.add_event(
            EventId("z", 1), [decoded.dependency_id(len(decoded) - 1)], insert_op(0, "R")
        )
        assert decoded.contains_id(EventId("z", 1))
