"""Tests for the durable-room storage layer (`repro.server.wal`).

The WAL is the paper's thesis made operational: the event graph is the
durable document, so crash safety reduces to (a) never losing an *intact*
appended record and (b) never trusting a torn one.  The property test here
drives (b) to exhaustion: a WAL truncated at **every** byte offset of its
tail record must recover exactly the longest valid record prefix.
"""

import asyncio
import os

import pytest

from repro.core.document import Document
from repro.server import CollabServer, DurabilityOptions, ReconnectPolicy
from repro.server.loadgen import CollabClient
from repro.server.wal import (
    RecoveryInfo,
    RoomStorage,
    WriteAheadLog,
    decode_wal_record,
    encode_wal_record,
    frame_record,
    list_room_directories,
    recover_document,
    room_directory,
    room_name_from_directory,
)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60.0))


def make_events(agent="alice", edits=((0, "hello world"),)):
    """Author some edits and export them as portable RemoteEvents."""
    doc = Document(agent)
    for pos, content in edits:
        if isinstance(content, int):
            doc.delete(pos, content)
        else:
            doc.insert(pos, content)
    return doc, list(doc.oplog.export_since_seq(agent, 0))


class TestRecordCodec:
    def test_round_trip_inserts_and_deletes(self):
        _, events = make_events(edits=((0, "héllo wörld"), (5, 3), (0, "x")))
        assert decode_wal_record(encode_wal_record(events)) == events

    def test_round_trip_multi_agent_parents(self):
        a = Document("alice")
        a.insert(0, "base ")
        b = Document("bob")
        b.apply_remote_events(a.oplog.export_since_seq("alice", 0))
        b.insert(5, "tail")
        events = a.oplog.export_since_seq("alice", 0) + b.oplog.export_since_seq("bob", 0)
        decoded = decode_wal_record(encode_wal_record(list(events)))
        assert decoded == list(events)
        # Cross-agent parents survive exactly.
        assert decoded[-1].parents and decoded[-1].parents[0].agent == "alice"

    def test_empty_batch(self):
        assert decode_wal_record(encode_wal_record([])) == []

    def test_trailing_garbage_rejected(self):
        payload = encode_wal_record(make_events()[1])
        with pytest.raises(ValueError):
            decode_wal_record(payload + b"\x00")


class TestWriteAheadLog:
    def test_append_scan_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        payloads = [b"first", b"second", b"third record, longer"]
        for payload in payloads:
            wal.append_record(payload)
        wal.close()
        recovered, torn = WriteAheadLog.scan(path)
        assert recovered == payloads
        assert torn == 0

    def test_scan_missing_and_foreign_files(self, tmp_path):
        assert WriteAheadLog.scan(str(tmp_path / "nope.log")) == ([], 0)
        foreign = tmp_path / "foreign.log"
        foreign.write_bytes(b"not a wal at all")
        payloads, torn = WriteAheadLog.scan(str(foreign))
        assert payloads == []
        assert torn > 0

    def test_corrupt_crc_stops_scan(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append_record(b"good")
        wal.append_record(b"bad")
        wal.close()
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF  # flip a CRC byte of the last record
        open(path, "wb").write(bytes(data))
        payloads, torn = WriteAheadLog.scan(path)
        assert payloads == [b"good"]
        assert torn > 0

    def test_reset_truncates_to_header(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append_record(b"doomed")
        wal.reset()
        wal.append_record(b"fresh")
        wal.close()
        assert WriteAheadLog.scan(path) == ([b"fresh"], 0)


class TestRoomDirectories:
    def test_name_round_trip(self, tmp_path):
        for name in ("plain", "with/slash", "unicode-α", "dots..", ""):
            path = room_directory(str(tmp_path), name)
            assert room_name_from_directory(path) == name

    def test_listing_skips_foreign_entries(self, tmp_path):
        os.makedirs(room_directory(str(tmp_path), "doc"))
        os.makedirs(tmp_path / "not-hex-zz")
        (tmp_path / "a-file").write_text("x")
        assert list_room_directories(str(tmp_path)) == [
            ("doc", room_directory(str(tmp_path), "doc"))
        ]
        assert list_room_directories(str(tmp_path / "missing")) == []


class TestRoomStorage:
    def test_fsync_policies(self, tmp_path):
        doc, events = make_events()
        for policy, expected_immediate in (("always", 1), ("group", 0), ("none", 0)):
            storage = RoomStorage(
                room_directory(str(tmp_path), policy),
                options=DurabilityOptions(fsync_policy=policy),
            )
            storage.append(events)
            assert storage.stats.fsyncs == expected_immediate, policy
            storage.sync()
            # sync() is a no-op for a clean log, a real fsync for a dirty one.
            assert storage.stats.fsyncs == 1, policy
            storage.sync()
            assert storage.stats.fsyncs == 1, policy
            storage.abandon()

    def test_compaction_snapshots_and_resets(self, tmp_path):
        directory = room_directory(str(tmp_path), "doc")
        storage = RoomStorage(
            directory,
            options=DurabilityOptions(compact_min_records=2, compact_min_bytes=1 << 30),
        )
        doc = Document("server")
        author = Document("alice")
        for i, word in enumerate(("one ", "two ", "three ")):
            before = author.oplog.graph.next_seq_for("alice")
            author.insert(0, word)
            batch = author.oplog.export_since_seq("alice", before)
            doc.apply_remote_events(batch)
            storage.append(list(batch))
            storage.maybe_compact(doc)
        # Threshold of 2 records: at least one compaction fired and the WAL
        # holds only records appended since.
        assert storage.stats.compactions >= 1
        assert os.path.exists(os.path.join(directory, "snapshot.egwk"))
        storage.close(document=doc)

        recovered, info = recover_document(directory, "server2")
        assert recovered.text == doc.text == "three two one "
        assert info.snapshot_loaded and info.snapshot_text_verified
        assert info.pending_after_recovery == 0

    def test_duplicate_spans_after_interrupted_compaction(self, tmp_path):
        """A crash between snapshot replace and WAL reset leaves the same
        events in both files; recovery must dedup, not double-apply."""
        directory = room_directory(str(tmp_path), "doc")
        storage = RoomStorage(directory, options=DurabilityOptions())
        doc, events = make_events(edits=((0, "abc"), (1, 1)))
        storage.append(events)
        storage.compact(doc)  # snapshot now holds everything
        storage.append(events)  # ...and the WAL holds it again (no reset ran)
        storage.abandon()
        recovered, info = recover_document(directory, "server")
        assert recovered.text == doc.text
        assert info.snapshot_loaded and info.wal_records == 1
        assert info.pending_after_recovery == 0

    def test_close_compacts_when_configured(self, tmp_path):
        directory = room_directory(str(tmp_path), "doc")
        storage = RoomStorage(
            directory, options=DurabilityOptions(compact_on_close=True)
        )
        doc, events = make_events()
        storage.append(events)
        storage.close(document=doc)
        assert storage.stats.compactions == 1
        # The WAL was reset: recovery runs on the snapshot alone.
        _, info = recover_document(directory, "server")
        assert info.snapshot_loaded and info.wal_records == 0


class TestTornWriteRecovery:
    """Satellite: truncation at *every* byte offset of the tail record."""

    def _build(self, tmp_path, name="doc"):
        """A storage dir with two intact records + the bytes of a third."""
        directory = room_directory(str(tmp_path), name)
        storage = RoomStorage(
            directory, options=DurabilityOptions(compact_on_close=False)
        )
        doc = Document("server")
        author = Document("alice")
        batches = []
        for word in ("one ", "two ", "three "):
            before = author.oplog.graph.next_seq_for("alice")
            author.insert(0, word)
            batch = list(author.oplog.export_since_seq("alice", before))
            doc.apply_remote_events(batch)
            storage.append(batch)
            batches.append(batch)
        storage.abandon()
        tail = frame_record(encode_wal_record(batches[-1]))
        return directory, doc, author, tail

    def test_every_truncation_offset_recovers_longest_prefix(self, tmp_path):
        directory, doc, _, tail = self._build(tmp_path)
        wal_path = os.path.join(directory, "wal.log")
        full = open(wal_path, "rb").read()
        tail_start = len(full) - len(tail)
        for offset in range(len(tail)):
            open(wal_path, "wb").write(full[: tail_start + offset])
            payloads, torn = WriteAheadLog.scan(wal_path)
            assert len(payloads) == 2, offset
            assert torn == offset, offset
            recovered, info = recover_document(directory, "server")
            assert recovered.text == "two one ", offset
            assert info.wal_records == 2 and info.torn_bytes_dropped == offset
        # The untouched file recovers all three records.
        open(wal_path, "wb").write(full)
        recovered, info = recover_document(directory, "server")
        assert recovered.text == doc.text == "three two one "
        assert info.wal_records == 3 and info.torn_bytes_dropped == 0

    @pytest.mark.parametrize("cut", ["start", "middle", "last-byte"])
    def test_truncated_tail_converges_with_reconnecting_client(self, tmp_path, cut):
        """End to end: a server recovering a torn WAL plus the original
        author reconnecting must converge to the full pre-crash text."""
        directory, doc, author, tail = self._build(tmp_path)
        wal_path = os.path.join(directory, "wal.log")
        full = open(wal_path, "rb").read()
        offset = {"start": 0, "middle": len(tail) // 2, "last-byte": len(tail) - 1}[cut]
        open(wal_path, "wb").write(full[: len(full) - len(tail) + offset])

        async def scenario():
            async with CollabServer(data_dir=str(tmp_path)) as server:
                info = server.recovery["doc"]
                assert info.wal_records == 2 and info.torn_bytes_dropped == offset
                assert server.room("doc").document.text == "two one "
                client = CollabClient(
                    server.host,
                    server.port,
                    "doc",
                    "alice",
                    document=author,
                    reconnect=ReconnectPolicy(base_delay=0.01),
                )
                await client.connect()
                # The hello version is ahead of the recovered server; replay
                # local history to restore the lost tail record.
                await client.send_events(author.oplog.export_since_seq("alice", 0))
                deadline = asyncio.get_running_loop().time() + 8.0
                room = server.room("doc")
                while asyncio.get_running_loop().time() < deadline:
                    if room.document.text == "three two one ":
                        break
                    await asyncio.sleep(0.02)
                assert room.document.text == "three two one "
                assert client.text == room.document.text
                await client.close()

        run(scenario())
        # The restored tail is durable again: a *second* recovery sees it.
        recovered, _ = recover_document(directory, "server")
        assert recovered.text == "three two one "


class TestRecoveryInfo:
    def test_fresh_directory(self, tmp_path):
        recovered, info = recover_document(str(tmp_path / "empty"), "server")
        assert recovered.text == ""
        assert info.as_dict() == RecoveryInfo().as_dict()
