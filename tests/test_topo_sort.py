"""Unit tests for the branch-aware topological sort (§3.2)."""

import pytest

from repro.core.event_graph import EventGraph
from repro.core.ids import EventId, insert_op
from repro.core.topo_sort import (
    estimate_descendants,
    is_topological_order,
    sort_branch_aware,
    sort_interleaved,
    sort_local_order,
)


def two_branch_graph(k: int, m: int) -> EventGraph:
    """A root, then two branches of k and m events, then a merge event."""
    graph = EventGraph()
    graph.add_event(EventId("root", 0), (), insert_op(0, "r"), parents_are_indices=True)
    prev_a = 0
    for i in range(k):
        graph.add_event(
            EventId("a", i), (prev_a,), insert_op(i + 1, "a"), parents_are_indices=True
        )
        prev_a = len(graph) - 1
    prev_b = 0
    for i in range(m):
        graph.add_event(
            EventId("b", i), (prev_b,), insert_op(i + 1, "b"), parents_are_indices=True
        )
        prev_b = len(graph) - 1
    graph.add_event(
        EventId("root", 1), (prev_a, prev_b), insert_op(0, "m"), parents_are_indices=True
    )
    return graph


ALL_SORTERS = [sort_branch_aware, sort_local_order, sort_interleaved]


class TestValidity:
    @pytest.mark.parametrize("sorter", ALL_SORTERS)
    def test_orders_are_topological(self, sorter, small_async_trace):
        graph = small_async_trace.graph
        order = sorter(graph, range(len(graph)))
        assert len(order) == len(graph)
        assert sorted(order) == list(range(len(graph)))
        assert is_topological_order(graph, order)

    @pytest.mark.parametrize("sorter", ALL_SORTERS)
    def test_empty_input(self, sorter):
        assert sorter(EventGraph(), []) == []

    @pytest.mark.parametrize("sorter", ALL_SORTERS)
    def test_subset_sorting(self, sorter):
        graph = two_branch_graph(3, 3)
        subset = [0, 1, 2, 4, 5]
        order = sorter(graph, subset)
        assert sorted(order) == sorted(subset)
        assert is_topological_order(graph, order)


class TestBranchAwareness:
    def test_branches_stay_contiguous(self):
        graph = two_branch_graph(4, 6)
        order = sort_branch_aware(graph, range(len(graph)))
        agents = [graph.id_of(idx).agent for idx in order]
        # After the root, all "a" events should be consecutive and all "b"
        # events should be consecutive (no alternation).
        interior = agents[1:-1]
        switches = sum(1 for x, y in zip(interior, interior[1:]) if x != y)
        assert switches == 1

    def test_smaller_branch_emitted_first(self):
        graph = two_branch_graph(2, 8)
        order = sort_branch_aware(graph, range(len(graph)))
        agents = [graph.id_of(idx).agent for idx in order]
        first_branch_agent = agents[1]
        assert first_branch_agent == "a"  # the 2-event branch

    def test_interleaved_order_alternates(self):
        graph = two_branch_graph(5, 5)
        order = sort_interleaved(graph, range(len(graph)))
        agents = [graph.id_of(idx).agent for idx in order][1:-1]
        switches = sum(1 for x, y in zip(agents, agents[1:]) if x != y)
        assert switches > 5  # far more branch switches than the branch-aware order

    def test_local_order_is_identity_for_full_range(self, small_sequential_trace):
        graph = small_sequential_trace.graph
        assert sort_local_order(graph, range(len(graph))) == list(range(len(graph)))


class TestDescendantEstimates:
    def test_linear_chain_estimates(self):
        graph = EventGraph()
        for i in range(5):
            graph.add_local_event("a", insert_op(i, "x"))
        estimates = estimate_descendants(graph, range(5))
        assert estimates[4] == 1
        assert estimates[0] == 5

    def test_estimates_reflect_branch_sizes(self):
        graph = two_branch_graph(2, 6)
        estimates = estimate_descendants(graph, range(len(graph)))
        first_a = 1
        first_b = 3
        assert estimates[first_b] > estimates[first_a]
