"""Unit tests for repro.core.ids: event ids and index-based operations."""

import pytest

from repro.core.ids import EventId, Operation, OpKind, delete_op, insert_op


class TestEventId:
    def test_ordering_is_lexicographic(self):
        assert EventId("a", 5) < EventId("b", 0)
        assert EventId("a", 1) < EventId("a", 2)
        assert not EventId("b", 0) < EventId("a", 99)

    def test_next_increments_seq(self):
        assert EventId("alice", 3).next() == EventId("alice", 4)

    def test_is_hashable_and_usable_as_dict_key(self):
        mapping = {EventId("a", 0): "first"}
        assert mapping[EventId("a", 0)] == "first"

    def test_str_format(self):
        assert str(EventId("alice", 7)) == "alice:7"


class TestOperationConstruction:
    def test_insert_requires_content(self):
        with pytest.raises(ValueError):
            Operation(OpKind.INSERT, 0, "")

    def test_delete_rejects_content(self):
        with pytest.raises(ValueError):
            Operation(OpKind.DELETE, 0, "x")

    def test_delete_rejects_non_positive_length(self):
        with pytest.raises(ValueError):
            Operation(OpKind.DELETE, 0, "", 0)

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            insert_op(-1, "a")

    def test_insert_length_tracks_content(self):
        op = insert_op(3, "hello")
        assert op.length == 5
        assert op.end == 8

    def test_helpers_set_kind(self):
        assert insert_op(0, "a").is_insert
        assert delete_op(0).is_delete
        assert not delete_op(0).is_insert


class TestOperationApply:
    def test_insert_apply_to(self):
        assert insert_op(2, "XY").apply_to("abcd") == "abXYcd"

    def test_insert_at_end(self):
        assert insert_op(3, "!").apply_to("abc") == "abc!"

    def test_insert_beyond_end_raises(self):
        with pytest.raises(IndexError):
            insert_op(4, "!").apply_to("abc")

    def test_delete_apply_to(self):
        assert delete_op(1, 2).apply_to("abcd") == "ad"

    def test_delete_beyond_end_raises(self):
        with pytest.raises(IndexError):
            delete_op(2, 3).apply_to("abc")


class TestOperationCharAt:
    def test_insert_char_at_offsets(self):
        op = insert_op(5, "abc")
        assert op.char_at(0) == insert_op(5, "a")
        assert op.char_at(1) == insert_op(6, "b")
        assert op.char_at(2) == insert_op(7, "c")

    def test_delete_char_at_keeps_position(self):
        op = delete_op(5, 3)
        for offset in range(3):
            assert op.char_at(offset) == delete_op(5)

    def test_char_at_out_of_range(self):
        with pytest.raises(IndexError):
            insert_op(0, "ab").char_at(2)
