"""End-to-end tests for the run-length encoded replay pipeline.

The paper attributes most of Eg-walker's "Faster, Smaller" wins to run-length
encoding (§4): real traces are dominated by runs of consecutive insertions and
deletions, and the implementation stores and replays *runs*, not characters.
These tests pin down the two sides of that claim for this reproduction:

* **Equivalence** — replaying a trace as run events produces byte-identical
  documents (and final lengths) to the expanded per-character oracle
  (:func:`repro.core.event_graph.expand_to_chars`), across all sort
  strategies, both sequence backends, and with the §3.5 optimisations on and
  off.
* **Complexity** — a run-encoded sequential trace creates O(runs) events and
  O(runs) peak CRDT records, not O(chars).

Plus the §3.5–3.6 edge cases the run refactor makes interesting: a single
delete run spanning a placeholder/record boundary, run splits forced by
concurrent edits in the middle of a run, and retreat/advance of split runs.
"""

from __future__ import annotations

import pytest

from repro.core.document import Document
from repro.core.event_graph import EventGraph, expand_to_chars
from repro.core.ids import EventId, delete_op, insert_op
from repro.core.internal_state import InternalState
from repro.core.order_statistic_tree import TreeSequence
from repro.core.records import INSERTED, CrdtRecord, PlaceholderPiece
from repro.core.sequence import ListSequence
from repro.core.walker import EgWalker, coalesce_ops
from repro.traces.generator import (
    generate_async,
    generate_concurrent,
    generate_sequential,
)

BACKENDS = ["list", "tree"]
SORT_STRATEGIES = ["branch_aware", "local", "interleaved"]


def make_state(backend: str, placeholder: int = 0) -> InternalState:
    if backend == "tree":
        return InternalState(TreeSequence(placeholder))
    return InternalState(ListSequence(placeholder))


# ----------------------------------------------------------------------
# Run/char equivalence property (the correctness oracle)
# ----------------------------------------------------------------------
class TestRunCharEquivalence:
    @pytest.mark.parametrize(
        "trace_fixture",
        ["small_sequential_trace", "small_concurrent_trace", "small_async_trace"],
    )
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("sort_strategy", SORT_STRATEGIES)
    def test_run_replay_matches_per_char_oracle(
        self, trace_fixture, backend, sort_strategy, request
    ):
        trace = request.getfixturevalue(trace_fixture)
        graph = trace.graph
        oracle_graph = expand_to_chars(graph)
        assert oracle_graph.num_chars == graph.num_chars
        oracle = EgWalker(
            oracle_graph, backend="list", enable_clearing=False
        ).replay_text()
        for enable_clearing in (True, False):
            walker = EgWalker(
                graph,
                backend=backend,
                sort_strategy=sort_strategy,
                enable_clearing=enable_clearing,
            )
            result = walker.transform()
            text = walker.replay_text()
            assert text == oracle
            assert result.final_length == len(oracle)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_concurrent_traces_match_oracle(self, seed):
        trace = generate_concurrent("rle", target_events=160, seed=100 + seed)
        graph = trace.graph
        oracle = EgWalker(expand_to_chars(graph), backend="list").replay_text()
        for backend in BACKENDS:
            assert EgWalker(graph, backend=backend).replay_text() == oracle

    def test_expansion_is_identity_on_per_char_graphs(self, figure4_graph):
        expanded = expand_to_chars(figure4_graph)
        assert len(expanded) == len(figure4_graph)
        assert [e.id for e in expanded.events()] == [
            e.id for e in figure4_graph.events()
        ]
        assert EgWalker(expanded).replay_text() == EgWalker(figure4_graph).replay_text()


# ----------------------------------------------------------------------
# O(runs) complexity (the acceptance criterion)
# ----------------------------------------------------------------------
class TestRunComplexity:
    def test_sequential_run_trace_creates_o_runs_events_and_records(self):
        """A run-encoded sequential trace: O(runs) events, O(runs) peak records."""
        doc = Document("alice", coalesce_local_runs=False)
        runs = 0
        for i in range(50):
            doc.insert(len(doc.text), f"sentence number {i}. ")
            runs += 1
        for _ in range(10):
            doc.delete(0, 8)
            runs += 1
        graph = doc.oplog.graph
        chars = graph.num_chars
        assert len(graph) == runs
        assert chars > 10 * runs  # the trace really is run-dominated

        # With sender-side coalescing (the default) the same session shrinks
        # further: the 50 continuing inserts fold into one run event and the
        # 10 same-index deletes into another — O(runs) *at the source*.
        coalesced = Document("alice")
        for i in range(50):
            coalesced.insert(len(coalesced.text), f"sentence number {i}. ")
        for _ in range(10):
            coalesced.delete(0, 8)
        assert len(coalesced.oplog.graph) == 2
        assert coalesced.oplog.graph.num_chars == chars
        assert coalesced.text == doc.text

        # Even with the state-clearing optimisation disabled (so nothing is
        # ever thrown away), the internal state holds O(runs) span records,
        # not O(chars): each insert run is one record and each delete run
        # splits at most two of them.
        for backend in BACKENDS:
            walker = EgWalker(graph, backend=backend, enable_clearing=False)
            walker.replay_text()
            stats = walker.last_stats
            assert stats.events_processed == runs
            assert stats.chars_processed == chars
            assert stats.peak_records <= 3 * runs
            assert stats.peak_records < chars / 3

    def test_fast_path_counts_runs_and_chars(self, small_sequential_trace):
        graph = small_sequential_trace.graph
        walker = EgWalker(graph, enable_clearing=True)
        walker.replay_text()
        stats = walker.last_stats
        assert stats.events_fast_path == len(graph)
        assert stats.chars_fast_path == graph.num_chars
        assert stats.peak_records == 0  # the CRDT state was never touched

    def test_merge_of_run_branches_stays_run_sized(self):
        """Two branches of run events merge with O(runs) records."""
        alice = Document("alice")
        alice.insert(0, "the shared base paragraph. ")
        bob = Document("bob")
        bob.merge(alice)
        for i in range(20):
            alice.insert(len(alice.text), f"alice writes sentence {i}. ")
            bob.insert(0, f"bob writes sentence {i}. ")
        alice.merge(bob)
        bob.merge(alice)
        assert alice.text == bob.text
        graph = alice.oplog.graph
        walker = EgWalker(graph, enable_clearing=False)
        walker.replay_text()
        assert walker.last_stats.peak_records <= 4 * len(graph)
        assert walker.last_stats.peak_records < graph.num_chars / 4


# ----------------------------------------------------------------------
# Transformed output is run-valued
# ----------------------------------------------------------------------
class TestRunTransformedOutput:
    def test_insert_runs_transform_to_single_ops(self):
        doc = Document("alice")
        doc.insert(0, "hello world")
        other = Document("bob")
        ops = other.merge(doc)
        assert len(ops) == 1
        assert ops[0].content == "hello world"

    def test_delete_run_splits_only_when_concurrency_forces_it(self):
        # Alice deletes a run that bob concurrently inserted into the middle
        # of: the transformed delete must come out as two segments.
        alice = Document("alice")
        alice.insert(0, "abcdef")
        bob = Document("bob")
        bob.merge(alice)
        bob.insert(3, "XY")  # abcXYdef at bob
        alice.delete(1, 4)  # delete bcde at alice -> af
        walker_ops = bob.merge(alice)
        assert bob.text == "aXYf"
        deletes = [op for op in walker_ops if op.is_delete]
        assert len(deletes) == 2
        assert sum(op.length for op in deletes) == 4

    def test_coalesce_ops_merges_adjacent_runs(self):
        ops = [
            insert_op(0, "ab"),
            insert_op(2, "cd"),
            delete_op(1, 2),
            delete_op(1, 1),
            insert_op(5, "x"),
        ]
        merged = coalesce_ops(ops)
        assert merged == [insert_op(0, "abcd"), delete_op(1, 3), insert_op(5, "x")]


# ----------------------------------------------------------------------
# Placeholder carving and state clearing across boundaries (§3.5–3.6)
# ----------------------------------------------------------------------
class TestPlaceholderRunCarving:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delete_run_inside_placeholder_carves_one_record(self, backend):
        state = make_state(backend, placeholder=20)
        segments = state.apply_delete(EventId("a", 0), 5, 6)
        assert [(s.length, s.effect_pos) for s in segments] == [(6, 5)]
        assert state.prepare_length() == 14
        assert state.effect_length() == 14
        # left piece + carved record + right piece
        assert state.record_count() == 3
        record = state.record_for(EventId("a", 0))
        assert record.ever_deleted and record.length == 6
        assert record.ph_base == 5

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_adjacent_carves_by_separate_deletes_re_merge(self, backend):
        """Carved runs are keyed by their original placeholder offset, so two
        deletes carving adjacent spans coalesce into one record — with
        counter-allocated synthetic ids they never could (the PR 2 leftover)."""
        state = make_state(backend, placeholder=20)
        state.apply_delete(EventId("a", 0), 5, 3)  # carves ph 5..7
        assert state.record_count() == 3  # left ph + carve + right ph
        # A second delete at the same prepare index eats the next 3 chars
        # (ph 8..10): its carve is id- and ph-contiguous with the first.
        state.apply_delete(EventId("a", 3), 5, 3)
        assert state.spans_merged >= 1
        assert state.record_count() == 3  # still left ph + one carve + right ph
        record = state.record_for(EventId("a", 0))
        assert record.length == 6 and record.ph_base == 5
        # Retreating one of the deletes splits the merged carve back apart
        # losslessly, and re-advancing re-merges it.
        state.retreat(EventId("a", 3), False, 3)
        assert state.record_for(EventId("a", 3)).length == 3
        assert state.prepare_length() == 17
        state.advance(EventId("a", 3), False, 3)
        assert state.record_for(EventId("a", 0)).length == 6
        assert state.prepare_length() == 14
        assert state.effect_length() == 14

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delete_run_spanning_placeholder_and_record_boundary(self, backend):
        """One delete run covers placeholder chars, an inserted run, and more
        placeholder chars — it must carve/split into per-boundary segments."""
        state = make_state(backend, placeholder=10)
        # An insert run in the middle of the placeholder: [0..4] R(5) [5..9]
        state.apply_insert(EventId("ins", 0), 5, 3)
        assert state.prepare_length() == 13
        # Delete 7 chars starting at 3: placeholder 3..4, the whole inserted
        # run, then placeholder 5..6.
        segments = state.apply_delete(EventId("del", 0), 3, 7)
        assert [s.length for s in segments] == [2, 3, 2]
        assert [s.effect_pos for s in segments] == [3, 3, 3]
        assert state.prepare_length() == 6
        assert state.effect_length() == 6
        # The inserted run was deleted whole — no split of the record itself.
        record = state.record_for(EventId("ins", 0))
        assert record.length == 3 and record.ever_deleted

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delete_run_spanning_boundary_via_walker(self, backend):
        """The same §3.6 scenario end-to-end: a remote delete run spanning the
        base-version placeholder and a freshly merged insert run."""
        alice = Document("alice", backend=backend)
        alice.insert(0, "0123456789")
        bob = Document("bob", backend=backend)
        bob.merge(alice)
        bob.insert(5, "XYZ")  # 01234XYZ56789 at bob
        alice.delete(3, 4)  # delete 3456 at alice -> 012789
        alice.merge(bob)
        bob.merge(alice)
        assert alice.text == bob.text == "012XYZ789"
        oracle = EgWalker(
            expand_to_chars(alice.oplog.graph), backend="list"
        ).replay_text()
        assert alice.text == oracle

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_retreat_and_advance_of_split_runs(self, backend):
        """Retreating a run whose record was split by a later delete touches
        every fragment exactly once."""
        state = make_state(backend)
        state.apply_insert(EventId("a", 0), 0, 8)
        state.apply_delete(EventId("b", 0), 2, 3)  # splits the run into 3 spans
        assert state.prepare_length() == 5
        state.retreat(EventId("b", 0), is_insert=False)
        assert state.prepare_length() == 8
        state.retreat(EventId("a", 0), is_insert=True, length=8)
        assert state.prepare_length() == 0
        state.advance(EventId("a", 0), is_insert=True, length=8)
        assert state.prepare_length() == 8
        state.advance(EventId("b", 0), is_insert=False)
        assert state.prepare_length() == 5
        # Effect state is unchanged by retreat/advance.
        assert state.effect_length() == 5

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_insert_into_middle_of_run_splits_it(self, backend):
        state = make_state(backend)
        state.apply_insert(EventId("a", 0), 0, 6)
        assert state.record_count() == 1
        # A (concurrent) insert between characters 2 and 3 of the run.
        effect_pos = state.apply_insert(EventId("b", 0), 3, 2)
        assert effect_pos == 3
        assert state.record_count() == 3
        assert state.prepare_length() == 8
        left = state.record_for(EventId("a", 2))
        right = state.record_for(EventId("a", 3))
        assert left is not right
        assert left.prepare_state == right.prepare_state == INSERTED
        # The split halves keep id-accurate origins: the right half's left
        # origin is the last character of the left half.
        assert right.origin_left == EventId("a", 2)

    def test_state_clearing_with_run_events_still_converges(self):
        """State clears sit between runs; replay stays correct around them."""
        doc = Document("alice", enable_clearing=True)
        for i in range(30):
            doc.insert(len(doc.text) // 2, f"run {i}! ")
            if i % 3 == 2:
                doc.delete(0, 3)
        graph = doc.oplog.graph
        oracle = EgWalker(expand_to_chars(graph), backend="list").replay_text()
        for backend in BACKENDS:
            walker = EgWalker(graph, backend=backend, enable_clearing=True)
            assert walker.replay_text() == oracle
            assert walker.last_stats.state_clears >= 0


# ----------------------------------------------------------------------
# Span re-merging: splits are undone once concurrency resolves
# ----------------------------------------------------------------------
class TestSpanReMerging:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fragments_only_merge_when_effect_states_match(self, backend):
        state = make_state(backend)
        state.apply_insert(EventId("a", 0), 0, 8)
        state.apply_delete(EventId("b", 0), 2, 3)  # splits into kept|deleted|kept
        assert state.record_count() == 3
        state.retreat(EventId("b", 0), is_insert=False)
        # Prepare visibility is restored, but the middle fragment was deleted
        # in the effect version (s_e never un-deletes), so it must NOT rejoin
        # its never-deleted neighbours — merging is only ever lossless.
        assert state.record_count() == 3
        assert state.spans_merged == 0
        assert state.prepare_length() == 8

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_overlapping_concurrent_deletes_re_merge_the_run(self, backend):
        """Once a concurrent delete sweeps over the fragments a first delete
        left behind, every fragment has the same state again and the run
        coalesces back into O(1) spans."""
        state = make_state(backend)
        state.apply_insert(EventId("a", 0), 0, 8)
        state.apply_delete(EventId("b", 0), 2, 3)
        state.retreat(EventId("b", 0), is_insert=False)
        assert state.record_count() == 3
        # A concurrent delete of the whole run: the never-deleted fragments
        # turn Del 1 / ever_deleted, matching the middle fragment.
        segments = state.apply_delete(EventId("c", 0), 0, 8)
        assert [s.effect_pos for s in segments] == [0, None, 0]
        assert state.record_count() == 1
        assert state.spans_merged >= 2
        record = state.record_for(EventId("a", 4))
        assert record.id == EventId("a", 0) and record.length == 8
        # Retreating the big delete restores prepare visibility; the whole run
        # has been effect-deleted by now, so it stays one span.
        state.retreat(EventId("c", 0), is_insert=False)
        assert state.prepare_length() == 8
        assert state.effect_length() == 0
        assert state.record_count() == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_adjacent_deleted_fragments_coalesce(self, backend):
        """Single-character deletes at the same index chew through a run but
        leave O(1) spans, not O(chars): each new Del fragment merges into the
        previous one."""
        state = make_state(backend)
        state.apply_insert(EventId("a", 0), 0, 10)
        for k in range(6):
            state.apply_delete(EventId("d", k), 2)
        # kept prefix | one merged deleted span | kept suffix
        assert state.record_count() == 3
        assert state.prepare_length() == 4

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_graph_split_runs_coalesce_into_one_record(self, backend):
        """Two id-contiguous events (a run split at the graph level) replay
        into a single internal-state record."""
        state = make_state(backend)
        state.apply_insert(EventId("a", 0), 0, 3)
        state.apply_insert(EventId("a", 3), 3, 4)
        assert state.record_count() == 1
        record = state.record_for(EventId("a", 5))
        assert record.id == EventId("a", 0) and record.length == 7

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_merging_can_be_disabled(self, backend):
        state = InternalState(
            TreeSequence(0) if backend == "tree" else ListSequence(0),
            merge_spans=False,
        )
        state.apply_insert(EventId("a", 0), 0, 8)
        state.apply_delete(EventId("b", 0), 2, 3)
        state.retreat(EventId("b", 0), is_insert=False)
        assert state.record_count() == 3
        assert state.spans_merged == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_walker_stats_show_final_spans_below_peak(self, backend):
        """The acceptance trace: concurrency fragments the state, quiescence
        re-merges it — the final span count drops back below the peak."""
        graph = EventGraph()
        run = graph.add_local_event("x", insert_op(0, "x" * 40))
        # Branch y: spaced single-char deletes fragment x's run badly.
        y_events = []
        parent = run.index
        for k in range(6):
            event = graph.add_event(
                EventId("y", k), (parent,), delete_op(2 + 3 * k), parents_are_indices=True
            )
            y_events.append(event.index)
            parent = event.index
        # Branch z (concurrent with all of y): a sweeping delete whose
        # coverage gives every fragment the same state again, then quiet
        # sequential typing.
        z_events = []
        parent = run.index
        next_seq = 0
        for k, op in enumerate(
            [delete_op(0, 36)] + [insert_op(k, "z") for k in range(6)]
        ):
            event = graph.add_event(
                EventId("z", next_seq), (parent,), op, parents_are_indices=True
            )
            next_seq += op.length
            z_events.append(event.index)
            parent = event.index
        order = [run.index] + y_events + z_events

        def replay_in_order(walker):
            result = walker.transform(order=order)
            buffer: list[str] = []
            for entry in result.transformed:
                for op in entry.ops:
                    if op.is_insert:
                        buffer[op.pos : op.pos] = op.content
                    else:
                        del buffer[op.pos : op.pos + op.length]
            return "".join(buffer)

        # Clearing is disabled so the whole session runs against live CRDT
        # state (the regime span re-merging exists for).
        oracle = EgWalker(expand_to_chars(graph), backend="list").replay_text()
        merged_walker = EgWalker(graph, backend=backend, enable_clearing=False)
        merged_text = replay_in_order(merged_walker)
        plain_walker = EgWalker(
            graph, backend=backend, enable_clearing=False, enable_span_merging=False
        )
        plain_text = replay_in_order(plain_walker)
        assert merged_text == plain_text == oracle

        merged, plain = merged_walker.last_stats, plain_walker.last_stats
        # Replaying branch y fragments the run; retreating it for branch z
        # re-merges the fragments, so the session ends far below its peak ...
        assert merged.spans_merged > 0
        assert merged.final_records < merged.peak_records
        # ... while without re-merging the fragments are kept forever.
        assert plain.spans_merged == 0
        assert plain.final_records == plain.peak_records
        assert merged.final_records < plain.final_records

        # Same session as a *windowed* replay from the base run (§3.6), so
        # the branch deletes carve the placeholder.  Carved runs are keyed by
        # their original placeholder offset, so adjacent carves — even ones
        # made by different delete events across the two branches — re-merge,
        # and the final span count collapses; the split-only ablation keeps
        # every carve fragment forever.
        window = y_events + z_events
        results = {}
        for merging in (True, False):
            walker = EgWalker(
                graph,
                backend=backend,
                enable_clearing=False,
                enable_span_merging=merging,
            )
            results[merging] = walker.transform(
                window,
                base_version=(run.index,),
                base_doc_length=40,
                order=window,
            )
        assert [t.ops for t in results[True].transformed] == [
            t.ops for t in results[False].transformed
        ]
        carved_merged = results[True].stats
        carved_plain = results[False].stats
        assert carved_merged.spans_merged > 0
        assert carved_merged.final_records < carved_plain.final_records
        # The sweep's 36 deleted characters end as a handful of spans, not
        # one fragment per carve boundary.
        assert carved_merged.final_records <= carved_plain.final_records // 2

    def test_walker_replay_of_differently_carved_graphs_matches(self):
        """Replaying a graph and a re-carved copy of it yields the same text
        (run boundaries are an encoding detail all the way down)."""
        alice, bob = Document("alice"), Document("bob")
        alice.insert(0, "the quick brown fox ")
        bob.merge(alice)
        alice.insert(20, "jumps over ")
        bob.insert(0, "intro: ")
        bob.delete(11, 4)
        alice.merge(bob)
        bob.merge(alice)
        assert alice.text == bob.text
        # Force a different carving of the same history into a third replica.
        from repro.core.oplog import recarve_events

        carol = Document("carol")
        events = alice.oplog.export_events()
        recarved = recarve_events(
            events,
            splits=lambda e: range(1, e.op.length, 2),
            merge_adjacent=True,
        )
        carol.apply_remote_events(recarved)
        assert carol.text == alice.text
        assert EgWalker(carol.oplog.graph).replay_text() == alice.text


# ----------------------------------------------------------------------
# The id range maps stay O(runs)
# ----------------------------------------------------------------------
class TestRangeMaps:
    def test_event_graph_id_map_is_run_ranged(self):
        graph = EventGraph()
        graph.add_local_event("a", insert_op(0, "hello world, this is one run"))
        graph.add_local_event("a", delete_op(0, 5))
        assert len(graph) == 2
        # Any character id resolves without per-character entries.
        assert graph.locate(EventId("a", 0)) == (0, 0)
        assert graph.locate(EventId("a", 27)) == (0, 27)
        assert graph.locate(EventId("a", 28)) == (1, 0)
        assert graph.locate(EventId("a", 32)) == (1, 4)
        assert not graph.contains_id(EventId("a", 33))
        assert graph.index_of(EventId("a", 10)) == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_internal_state_record_spans_follow_splits(self, backend):
        state = make_state(backend)
        state.apply_insert(EventId("a", 0), 0, 10)
        state.apply_delete(EventId("b", 0), 4, 2)
        spans = state.sequence.record_spans(EventId("a", 0), 10)
        assert [(r.id.seq, length) for r, _, length in spans] == [
            (0, 4),
            (4, 2),
            (6, 4),
        ]
        assert all(offset == 0 for _, offset, _ in spans)
