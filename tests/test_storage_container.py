"""Storage format v3: container round trips, the corruption battery, lazy
hydration accounting, and v2→v3 migration parity.

The battery mirrors ``test_wal.py``'s rigor for the container: a v3 file is
truncated at **every** byte offset and has single bytes flipped throughout
the header and in every column block, and each mutation must surface as a
structured :class:`~repro.storage.StorageError` with a stable ``code`` —
never a silent wrong decode.  Stale offsets, duplicated/missing columns,
per-column CRC mismatches and bad compressed payloads are each staged
explicitly by rewriting the column table (and re-signing the header CRC, so
only the staged defect can trip).

Migration parity pins the v2→v3 path: every fixture graph decoded from its
v2 bytes and re-encoded as v3 must carry an equivalent event graph (ids,
parents, ops, frontier, replayed text), and a committed golden corpus
(``tests/golden/storage_v3``) fails loudly if either format's bytes drift.
Regenerate with ``python tests/test_storage_container.py --regenerate``.
"""

from __future__ import annotations

import os
import zlib

import pytest

from repro.core.document import Document
from repro.core.event_graph import EventGraph
from repro.core.ids import EventId, delete_op, insert_op
from repro.history import History, Version
from repro.storage import (
    ContainerOptions,
    EncodeOptions,
    LazyDecodedFile,
    StorageError,
    decode_event_graph_v3,
    decode_file,
    decode_text,
    encode_event_graph,
    encode_event_graph_v3,
)
from repro.storage.container import (
    COL_AGENTS,
    COL_CONTENT,
    COL_IDS,
    COL_OPS,
    COL_PARENTS,
    COLUMN_NAMES,
    MAGIC_V3,
    parse_header,
)
from repro.storage.varint import ByteWriter
from repro.traces.generator import generate_concurrent, generate_sequential

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden", "storage_v3")

#: Every code :class:`StorageError` may legally carry (documented contract).
KNOWN_CODES = {
    "bad-magic",
    "unsupported-version",
    "truncated-header",
    "header-crc-mismatch",
    "duplicate-column",
    "stale-column-offset",
    "truncated-column",
    "trailing-data",
    "column-crc-mismatch",
    "column-decode",
    "missing-column",
    "text-requires-graph",
}


# ----------------------------------------------------------------------
# Fixture graphs (deterministic: the golden corpus uses the same builders).
# The figure graphs and two-branch documents mirror tests/conftest.py —
# inlined (rather than imported across conftests) so this module also runs
# standalone, e.g. for `--regenerate`.
# ----------------------------------------------------------------------
def build_figure2_graph() -> EventGraph:
    """Figure 2: concurrent "l" and "!" insertions into "Helo"."""
    graph = EventGraph()
    graph.add_event(EventId("u1", 0), (), insert_op(0, "H"), parents_are_indices=True)
    graph.add_event(EventId("u1", 1), (0,), insert_op(1, "e"), parents_are_indices=True)
    graph.add_event(EventId("u1", 2), (1,), insert_op(2, "l"), parents_are_indices=True)
    graph.add_event(EventId("u1", 3), (2,), insert_op(3, "o"), parents_are_indices=True)
    graph.add_event(EventId("u1", 4), (3,), insert_op(3, "l"), parents_are_indices=True)
    graph.add_event(EventId("u2", 0), (3,), insert_op(4, "!"), parents_are_indices=True)
    return graph


def build_figure4_graph() -> EventGraph:
    """Figure 4: "hi" -> concurrent "hey" / "Hi" -> "Hey!"."""
    graph = EventGraph()
    graph.add_event(EventId("a", 0), (), insert_op(0, "h"), parents_are_indices=True)
    graph.add_event(EventId("a", 1), (0,), insert_op(1, "i"), parents_are_indices=True)
    graph.add_event(EventId("b", 0), (1,), insert_op(0, "H"), parents_are_indices=True)
    graph.add_event(EventId("b", 1), (2,), delete_op(1), parents_are_indices=True)
    graph.add_event(EventId("a", 2), (1,), delete_op(1), parents_are_indices=True)
    graph.add_event(EventId("a", 3), (4,), insert_op(1, "e"), parents_are_indices=True)
    graph.add_event(EventId("a", 4), (5,), insert_op(2, "y"), parents_are_indices=True)
    graph.add_event(EventId("a", 5), (3, 6), insert_op(3, "!"), parents_are_indices=True)
    return graph


def make_two_branch_documents() -> tuple[Document, Document]:
    """Two replicas that share a prefix and then diverge."""
    alice = Document("alice")
    alice.insert(0, "shared base text. ")
    bob = Document("bob")
    bob.merge(alice)
    alice.insert(len(alice.text), "alice adds this at the end. ")
    alice.delete(0, 7)
    bob.insert(0, "bob prepends this. ")
    bob.delete(len(bob.text) - 6, 5)
    return alice, bob


def _linear_document() -> Document:
    doc = Document("alice")
    doc.insert(0, "the quick brown fox jumps over the lazy dog. ")
    doc.delete(4, 6)
    doc.insert(4, "slow ")
    doc.insert(len(doc.text), "again and again and again.")
    return doc


def _merged_two_branch_document() -> Document:
    alice, bob = make_two_branch_documents()
    alice.merge(bob)
    bob.merge(alice)
    return alice


def fixture_graphs() -> dict[str, EventGraph]:
    """Name → deterministic fixture graph (hand-built and generated)."""
    return {
        "figure2": build_figure2_graph(),
        "figure4": build_figure4_graph(),
        "linear": _linear_document().oplog.graph,
        "two_branch": _merged_two_branch_document().oplog.graph,
        "seq_trace": generate_sequential(
            "gold-seq", target_events=80, authors=2, seed=7
        ).graph,
        "conc_trace": generate_concurrent(
            "gold-conc", target_events=90, seed=8, events_per_exchange=9
        ).graph,
    }


def graph_text(graph: EventGraph) -> str:
    return History.over_graph(graph).text_at(Version.frontier(graph))


def assert_graphs_equivalent(a: EventGraph, b: EventGraph, context: str = "") -> None:
    """Same events (ids, parents, ops), same frontier, same replayed text."""
    assert len(a) == len(b), context
    for ea, eb in zip(a.events(), b.events()):
        assert ea.id == eb.id, context
        assert ea.parents == eb.parents, context
        assert ea.op.kind == eb.op.kind, context
        assert ea.op.pos == eb.op.pos, context
        assert ea.op.length == eb.op.length, context
    assert a.frontier == b.frontier, context
    assert graph_text(a) == graph_text(b), context


ALL_OPTIONS = {
    "default": ContainerOptions(),
    "uncompressed": ContainerOptions(compress_columns=False),
    "pruned": ContainerOptions(prune_deleted_content=True),
}


# ----------------------------------------------------------------------
# Table-rewriting helpers (for staging single defects with a valid header)
# ----------------------------------------------------------------------
def _entries_of(data: bytes):
    """Parse a v3 file into (header, mutable column-entry dicts with blocks)."""
    header = parse_header(data)
    blocks = data[header.header_length :]
    entries = [
        {
            "column_id": c.column_id,
            "flags": c.flags,
            "offset": c.offset,
            "stored_length": c.stored_length,
            "raw_length": c.raw_length,
            "crc32": c.crc32,
            "stored": blocks[c.offset : c.offset + c.stored_length],
        }
        for c in header.columns
    ]
    return header, entries


def _reflow(entries) -> None:
    """Recompute contiguous offsets (after resizing/reordering blocks)."""
    offset = 0
    for entry in entries:
        entry["offset"] = offset
        offset += entry["stored_length"]


def _emit(header, entries) -> bytes:
    """Re-emit a v3 file from entry dicts, re-signing the header CRC (so a
    staged table defect is the *only* thing a decoder can trip on)."""
    writer = ByteWriter()
    writer.write_bytes(MAGIC_V3)
    writer.write_uvarint(3)
    writer.write_uvarint(header.flags)
    writer.write_uvarint(header.num_events)
    writer.write_uvarint(len(entries))
    for entry in entries:
        writer.write_uvarint(entry["column_id"])
        writer.write_uvarint(entry["flags"])
        writer.write_uvarint(entry["offset"])
        writer.write_uvarint(entry["stored_length"])
        writer.write_uvarint(entry["raw_length"])
        writer.write_bytes(entry["crc32"].to_bytes(4, "big"))
    header_bytes = writer.getvalue()
    out = ByteWriter()
    out.write_bytes(header_bytes)
    out.write_bytes(zlib.crc32(header_bytes).to_bytes(4, "big"))
    for entry in entries:
        out.write_bytes(entry["stored"])
    return out.getvalue()


def _append_column(data: bytes, column_id: int, payload: bytes) -> bytes:
    header, entries = _entries_of(data)
    entries.append(
        {
            "column_id": column_id,
            "flags": 0,
            "offset": 0,
            "stored_length": len(payload),
            "raw_length": len(payload),
            "crc32": zlib.crc32(payload),
            "stored": payload,
        }
    )
    _reflow(entries)
    return _emit(header, entries)


def test_rewrite_helpers_are_faithful():
    """Sanity: an identity rewrite reproduces the file byte for byte."""
    data = _battery_file()
    header, entries = _entries_of(data)
    assert _emit(header, entries) == data


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("graph_name", sorted(fixture_graphs()))
@pytest.mark.parametrize("options_name", sorted(ALL_OPTIONS))
def test_v3_round_trip(graph_name, options_name):
    graph = fixture_graphs()[graph_name]
    options = ALL_OPTIONS[options_name]
    data = encode_event_graph_v3(graph, options)
    decoded = decode_event_graph_v3(data)
    if options.prune_deleted_content:
        # Pruned decode restores surviving characters; graph structure and
        # final text are preserved even though deleted content is gone.
        assert decoded.pruned
        assert len(decoded.graph) == len(graph)
        assert decoded.graph.frontier == graph.frontier
        assert graph_text(decoded.graph) == graph_text(graph)
    else:
        assert_graphs_equivalent(decoded.graph, graph, f"{graph_name}/{options_name}")
    # Byte-identical re-encode: the format is deterministic.
    assert encode_event_graph_v3(decoded.graph, options) == data


@pytest.mark.parametrize("graph_name", sorted(fixture_graphs()))
def test_v3_snapshot_round_trip(graph_name):
    graph = fixture_graphs()[graph_name]
    text = graph_text(graph)
    data = encode_event_graph_v3(
        graph, ContainerOptions(include_snapshot=True, final_text=text)
    )
    decoded = decode_event_graph_v3(data)
    assert decoded.snapshot == text
    assert decode_text(data) == text


def test_snapshot_requires_text():
    with pytest.raises(ValueError):
        encode_event_graph_v3(
            fixture_graphs()["linear"], ContainerOptions(include_snapshot=True)
        )


def test_decode_file_sniffs_both_formats():
    graph = fixture_graphs()["two_branch"]
    text = graph_text(graph)
    v2 = encode_event_graph(graph, EncodeOptions(include_snapshot=True, final_text=text))
    v3 = encode_event_graph_v3(
        graph, ContainerOptions(include_snapshot=True, final_text=text)
    )
    assert decode_file(v2).snapshot == text
    assert decode_file(v3).snapshot == text
    assert_graphs_equivalent(decode_file(v2).graph, decode_file(v3).graph)


def test_decode_file_rejects_garbage():
    with pytest.raises(StorageError) as info:
        decode_file(b"NOPE" + b"\x00" * 20)
    assert info.value.code == "bad-magic"
    with pytest.raises(StorageError) as info:
        decode_file(b"EG")
    assert info.value.code == "truncated-header"


def test_unknown_columns_are_skipped():
    """Extensibility: a future column id decodes cleanly past this reader."""
    graph = fixture_graphs()["linear"]
    data = encode_event_graph_v3(graph)
    extended = _append_column(data, column_id=99, payload=b"future payload")
    decoded = decode_event_graph_v3(extended)
    assert_graphs_equivalent(decoded.graph, graph)
    # ...and its block is never read by a selective text load.
    lazy = LazyDecodedFile(extended)
    assert lazy.text == graph_text(graph)
    assert "column-99" not in lazy.stats.column_reads


# ----------------------------------------------------------------------
# Selective reads
# ----------------------------------------------------------------------
def test_decode_text_linear_without_snapshot():
    doc = _linear_document()
    for options in (ContainerOptions(), ContainerOptions(prune_deleted_content=True)):
        data = encode_event_graph_v3(doc.oplog.graph, options)
        assert decode_text(data) == doc.text


def test_decode_text_concurrent_requires_graph():
    graph = fixture_graphs()["two_branch"]
    data = encode_event_graph_v3(graph)
    with pytest.raises(StorageError) as info:
        decode_text(data)
    assert info.value.code == "text-requires-graph"


def test_decode_text_prefers_snapshot_column():
    graph = fixture_graphs()["two_branch"]
    text = graph_text(graph)
    data = encode_event_graph_v3(
        graph, ContainerOptions(include_snapshot=True, final_text=text)
    )
    assert decode_text(data) == text


# ----------------------------------------------------------------------
# Lazy hydration accounting
# ----------------------------------------------------------------------
def test_cold_text_touches_only_snapshot_column():
    graph = fixture_graphs()["conc_trace"]
    text = graph_text(graph)
    data = encode_event_graph_v3(
        graph,
        ContainerOptions(
            prune_deleted_content=True, include_snapshot=True, final_text=text
        ),
    )
    lazy = LazyDecodedFile(data)
    assert lazy.text == text
    assert set(lazy.stats.column_reads) == {"snapshot"}
    assert lazy.stats.events_materialised == 0
    assert lazy.stats.hydrations == 0
    assert lazy.stats.bytes_read < len(data)


def test_cold_text_without_snapshot_touches_only_cheap_columns():
    doc = _linear_document()
    data = encode_event_graph_v3(doc.oplog.graph)
    lazy = LazyDecodedFile(data)
    assert lazy.text == doc.text
    # Linear replay needs ops+content, plus the parents column's one-byte
    # exception count to prove linearity; the history columns stay untouched.
    assert set(lazy.stats.column_reads) <= {"ops", "content", "parents"}
    assert lazy.stats.column_reads.get("agents", 0) == 0
    assert lazy.stats.column_reads.get("ids", 0) == 0
    assert lazy.stats.events_materialised == 0


def test_first_history_access_hydrates_exactly_once():
    graph = fixture_graphs()["conc_trace"]
    text = graph_text(graph)
    data = encode_event_graph_v3(
        graph, ContainerOptions(include_snapshot=True, final_text=text)
    )
    lazy = LazyDecodedFile(data)
    assert lazy.text == text
    assert lazy.stats.hydrations == 0

    history = lazy.history
    assert lazy.stats.hydrations == 1
    assert lazy.stats.events_materialised == len(graph)
    first_reads = dict(lazy.stats.column_reads)
    assert first_reads["parents"] == 1
    assert first_reads["agents"] == 1
    assert first_reads["ids"] == 1

    # Repeated accesses (history, graph, document) must not decode again.
    assert lazy.history is history
    _ = lazy.graph
    _ = lazy.document("reader")
    assert lazy.stats.hydrations == 1
    assert lazy.stats.column_reads == first_reads
    assert lazy.stats.events_materialised == len(graph)
    assert history.text_at(Version.frontier(lazy.graph)) == text


def test_document_and_history_load_from_bytes():
    graph = fixture_graphs()["two_branch"]
    text = graph_text(graph)
    for data in (
        encode_event_graph(graph),
        encode_event_graph_v3(graph),
    ):
        doc = Document.from_bytes(data, "reader")
        assert doc.text == text
        doc.insert(0, "still editable: ")
        assert doc.text.startswith("still editable: ")
        history = History.from_bytes(data)
        assert history.text_at(Version.frontier(history.graph)) == text


# ----------------------------------------------------------------------
# Corruption battery: truncation and byte flips
# ----------------------------------------------------------------------
def _battery_file() -> bytes:
    graph = fixture_graphs()["two_branch"]
    return encode_event_graph_v3(
        graph,
        ContainerOptions(include_snapshot=True, final_text=graph_text(graph)),
    )


def test_every_truncation_raises_structured_error():
    """A v3 file cut at *any* byte offset (header, table, or blocks) must
    raise a StorageError with a documented code — never decode silently."""
    data = _battery_file()
    header_length = parse_header(data).header_length
    for cut in range(len(data)):
        with pytest.raises(StorageError) as info:
            decode_event_graph_v3(data[:cut])
        assert info.value.code in KNOWN_CODES, (
            f"truncation at {cut}: unexpected code {info.value.code!r}"
        )
        if cut < header_length:
            assert info.value.code in {
                "truncated-header",
                "header-crc-mismatch",
                "bad-magic",
            }, f"header truncation at {cut} gave {info.value.code!r}"


def test_every_header_byte_flip_raises_structured_error():
    """Flipping any single byte of the header/table must be caught (the
    header CRC covers magic through table), with a deterministic code."""
    data = _battery_file()
    header_length = parse_header(data).header_length
    for pos in range(header_length):
        corrupted = bytearray(data)
        corrupted[pos] ^= 0xFF
        with pytest.raises(StorageError) as info:
            decode_event_graph_v3(bytes(corrupted))
        assert info.value.code in {
            "bad-magic",
            "unsupported-version",
            "truncated-header",
            "header-crc-mismatch",
            # a flipped length varint can push the parsed table past the end
            # of the file before the CRC line is reached
            "truncated-column",
            "trailing-data",
        }, f"header flip at {pos} gave {info.value.code!r}"


def test_block_byte_flips_raise_column_crc_mismatch():
    """One flipped byte in each column block trips that column's CRC."""
    data = _battery_file()
    header = parse_header(data)
    assert len(header.columns) == 6  # ops, content, parents, agents, ids, snapshot
    for column in header.columns:
        if column.stored_length == 0:
            continue
        for pos in (0, column.stored_length // 2, column.stored_length - 1):
            corrupted = bytearray(data)
            corrupted[header.header_length + column.offset + pos] ^= 0x01
            with pytest.raises(StorageError) as info:
                decode_event_graph_v3(bytes(corrupted))
            assert info.value.code == "column-crc-mismatch", (
                f"flip in {column.name!r} at {pos} gave {info.value.code!r}"
            )


def test_truncated_blocks_and_trailing_data():
    data = _battery_file()
    with pytest.raises(StorageError) as info:
        decode_event_graph_v3(data[:-1])
    assert info.value.code == "truncated-column"
    with pytest.raises(StorageError) as info:
        decode_event_graph_v3(data + b"\x00")
    assert info.value.code == "trailing-data"


# ----------------------------------------------------------------------
# Corruption battery: staged table defects
# ----------------------------------------------------------------------
def test_stale_offset_per_column():
    data = _battery_file()
    for index in range(len(parse_header(data).columns)):
        header, entries = _entries_of(data)
        entries[index]["offset"] += 1
        # keep the total block length consistent so only the offset trips
        entries[-1]["stored"] += b"\x00" if index == len(entries) - 1 else b""
        with pytest.raises(StorageError) as info:
            decode_event_graph_v3(_emit(header, entries))
        assert info.value.code == "stale-column-offset", (
            f"column {index}: {info.value.code!r}"
        )


def test_wrong_stored_crc_per_column():
    data = _battery_file()
    for index, column in enumerate(parse_header(data).columns):
        header, entries = _entries_of(data)
        entries[index]["crc32"] ^= 0xDEADBEEF
        with pytest.raises(StorageError) as info:
            decode_event_graph_v3(_emit(header, entries))
        assert info.value.code == "column-crc-mismatch", (
            f"column {column.name!r}: {info.value.code!r}"
        )


def test_wrong_raw_length_is_column_decode():
    data = _battery_file()
    header, entries = _entries_of(data)
    entries[0]["raw_length"] += 1
    with pytest.raises(StorageError) as info:
        decode_event_graph_v3(_emit(header, entries))
    assert info.value.code == "column-decode"


def test_bogus_compression_flag_is_column_decode():
    """Mislabelling a column's compression (flag flipped, CRC re-signed) must
    fail as a decode error, not produce garbage."""
    data = _battery_file()
    header, entries = _entries_of(data)
    entries[0]["flags"] ^= 1
    with pytest.raises(StorageError) as info:
        decode_event_graph_v3(_emit(header, entries))
    assert info.value.code == "column-decode", info.value.code


def test_duplicate_column_rejected():
    data = _battery_file()
    header, entries = _entries_of(data)
    entries.append(dict(entries[-1]))
    _reflow(entries)
    with pytest.raises(StorageError) as info:
        decode_event_graph_v3(_emit(header, entries))
    assert info.value.code == "duplicate-column"


@pytest.mark.parametrize(
    "column_id", [COL_OPS, COL_CONTENT, COL_PARENTS, COL_AGENTS, COL_IDS]
)
def test_missing_required_column(column_id):
    data = _battery_file()
    header, entries = _entries_of(data)
    entries = [e for e in entries if e["column_id"] != column_id]
    _reflow(entries)
    with pytest.raises(StorageError) as info:
        decode_event_graph_v3(_emit(header, entries))
    assert info.value.code == "missing-column", (
        f"{COLUMN_NAMES[column_id]}: {info.value.code!r}"
    )


def test_unsupported_version_rejected():
    data = _battery_file()
    # byte 4 is the version varint (3 encodes as one byte)
    assert data[4] == 3
    bumped = data[:4] + b"\x07" + data[5:]
    with pytest.raises(StorageError) as info:
        decode_event_graph_v3(bumped)
    assert info.value.code == "unsupported-version"


def test_inconsistent_ids_column_is_column_decode():
    """Internally inconsistent (but CRC-valid, correctly framed) column
    payloads still fail loudly: an ids column that no longer aligns with the
    ops column's event boundaries."""
    graph = fixture_graphs()["linear"]
    data = encode_event_graph_v3(graph, ContainerOptions(compress_columns=False))
    header, entries = _entries_of(data)
    for entry in entries:
        if entry["column_id"] == COL_IDS:
            entry["stored"] = entry["stored"][: max(1, len(entry["stored"]) // 2)]
            entry["stored_length"] = len(entry["stored"])
            entry["raw_length"] = len(entry["stored"])
            entry["crc32"] = zlib.crc32(entry["stored"])
    _reflow(entries)
    with pytest.raises(StorageError) as info:
        decode_event_graph_v3(_emit(header, entries))
    assert info.value.code == "column-decode"


# ----------------------------------------------------------------------
# v2 → v3 migration parity + golden corpus
# ----------------------------------------------------------------------
@pytest.mark.parametrize("graph_name", sorted(fixture_graphs()))
def test_v2_to_v3_migration_parity(graph_name):
    """Decoding any v2 fixture file and re-encoding it as v3 must preserve
    the event graph (ids, parents, ops, frontier) and the replayed text."""
    graph = fixture_graphs()[graph_name]
    v2_bytes = encode_event_graph(graph)
    migrated = decode_file(v2_bytes)
    v3_bytes = encode_event_graph_v3(migrated.graph)
    reloaded = decode_file(v3_bytes)
    assert_graphs_equivalent(reloaded.graph, graph, graph_name)
    # And the migration is stable: migrating the migrated file is a no-op.
    assert encode_event_graph_v3(reloaded.graph) == v3_bytes


def test_wal_compaction_snapshot_migration(tmp_path):
    """A WAL room compacted under v2 recovers identically under v3."""
    from repro.server.wal import (
        SNAPSHOT_FILENAME,
        DurabilityOptions,
        RoomStorage,
        graph_to_remote_events,
        recover_document,
    )

    options = DurabilityOptions(fsync_policy="none", compact_on_close=False)
    doc = _merged_two_branch_document()

    # Legacy room: write the snapshot the way the pre-v3 server did.
    legacy_dir = tmp_path / "legacy-room"
    storage = RoomStorage(str(legacy_dir), options=options)
    storage.append(graph_to_remote_events(doc.oplog.graph))
    storage.close()
    legacy_snapshot = encode_event_graph(
        doc.oplog.graph, EncodeOptions(include_snapshot=True, final_text=doc.text)
    )
    (legacy_dir / SNAPSHOT_FILENAME).write_bytes(legacy_snapshot)
    recovered_legacy, info_legacy = recover_document(str(legacy_dir), "server")
    assert recovered_legacy.text == doc.text
    assert info_legacy.snapshot_loaded and info_legacy.snapshot_text_verified

    # Modern room: compaction writes v3; recovery sniffs it the same way.
    modern_dir = tmp_path / "modern-room"
    storage = RoomStorage(str(modern_dir), options=options)
    storage.compact(doc)
    storage.close()
    snapshot_bytes = (modern_dir / SNAPSHOT_FILENAME).read_bytes()
    assert snapshot_bytes[:4] == MAGIC_V3
    recovered_modern, info_modern = recover_document(str(modern_dir), "server")
    assert recovered_modern.text == doc.text
    assert info_modern.snapshot_loaded and info_modern.snapshot_text_verified
    assert_graphs_equivalent(
        recovered_modern.oplog.graph, recovered_legacy.oplog.graph, "wal migration"
    )
    # The v3 snapshot is also selectively readable: the room's text comes
    # straight off the snapshot column.
    assert decode_text(snapshot_bytes) == doc.text


def _golden_specs():
    """(file stem → encode callable) for every committed golden file."""
    specs = {}
    for graph_name, graph in fixture_graphs().items():
        text = graph_text(graph)
        specs[f"{graph_name}.v2"] = lambda g=graph: encode_event_graph(g)
        specs[f"{graph_name}.v3"] = lambda g=graph: encode_event_graph_v3(g)
        specs[f"{graph_name}.v3.pruned"] = lambda g=graph: encode_event_graph_v3(
            g, ContainerOptions(prune_deleted_content=True)
        )
        specs[f"{graph_name}.v3.snapshot"] = (
            lambda g=graph, t=text: encode_event_graph_v3(
                g, ContainerOptions(include_snapshot=True, final_text=t)
            )
        )
    return specs


def test_golden_corpus_pins_both_formats():
    """Committed golden files fail loudly on any byte-level format drift."""
    specs = _golden_specs()
    assert os.path.isdir(GOLDEN_DIR), (
        "golden corpus missing; regenerate with "
        "`python tests/test_storage_container.py --regenerate`"
    )
    committed = {name for name in os.listdir(GOLDEN_DIR) if name.endswith(".bin")}
    expected = {f"{stem}.bin" for stem in specs}
    assert committed == expected, (
        f"golden corpus out of sync: missing {sorted(expected - committed)}, "
        f"extra {sorted(committed - expected)}"
    )
    for stem, encode in sorted(specs.items()):
        path = os.path.join(GOLDEN_DIR, f"{stem}.bin")
        with open(path, "rb") as fh:
            golden = fh.read()
        fresh = encode()
        assert fresh == golden, (
            f"{stem}: encoder output drifted from the committed golden file "
            f"({len(fresh)} vs {len(golden)} bytes); if the format change is "
            f"intentional, regenerate the corpus and bump the format version"
        )


def test_golden_corpus_decodes_and_migrates():
    """Every committed golden file decodes, and each v2 file's v3 migration
    matches the committed v3 bytes."""
    for name in sorted(os.listdir(GOLDEN_DIR)):
        if not name.endswith(".bin"):
            continue
        with open(os.path.join(GOLDEN_DIR, name), "rb") as fh:
            data = fh.read()
        decoded = decode_file(data)
        assert len(decoded.graph) > 0
        if name.endswith(".v2.bin"):
            v3_path = os.path.join(GOLDEN_DIR, name[: -len(".v2.bin")] + ".v3.bin")
            with open(v3_path, "rb") as fh:
                golden_v3 = fh.read()
            assert encode_event_graph_v3(decoded.graph) == golden_v3, (
                f"{name}: v2→v3 migration does not reproduce the golden v3 bytes"
            )


def regenerate_golden_corpus() -> None:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name in os.listdir(GOLDEN_DIR):
        if name.endswith(".bin"):
            os.remove(os.path.join(GOLDEN_DIR, name))
    for stem, encode in sorted(_golden_specs().items()):
        path = os.path.join(GOLDEN_DIR, f"{stem}.bin")
        with open(path, "wb") as fh:
            fh.write(encode())
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        sys.path.insert(0, os.path.dirname(__file__))
        regenerate_golden_corpus()
    else:
        print(__doc__)
