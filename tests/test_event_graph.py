"""Unit tests for the event graph: construction, frontier, merging."""

import pytest

from repro.core.event_graph import EventGraph, ROOT_VERSION
from repro.core.ids import EventId, delete_op, insert_op


def linear_graph(chars: str, agent: str = "a") -> EventGraph:
    graph = EventGraph()
    for i, char in enumerate(chars):
        graph.add_local_event(agent, insert_op(i, char))
    return graph


class TestConstruction:
    def test_empty_graph(self):
        graph = EventGraph()
        assert len(graph) == 0
        assert graph.frontier == ROOT_VERSION

    def test_add_local_event_sets_parents_to_frontier(self):
        graph = linear_graph("abc")
        assert graph.parents_of(0) == ()
        assert graph.parents_of(1) == (0,)
        assert graph.parents_of(2) == (1,)
        assert graph.frontier == (2,)

    def test_local_events_get_sequential_ids(self):
        graph = linear_graph("abc", agent="alice")
        assert [graph.id_of(i) for i in range(3)] == [
            EventId("alice", 0),
            EventId("alice", 1),
            EventId("alice", 2),
        ]

    def test_multi_char_ops_stored_as_single_run_event(self):
        graph = EventGraph()
        event = graph.add_event(
            EventId("a", 0), (), insert_op(0, "ab"), parents_are_indices=True
        )
        assert len(graph) == 1
        assert event.num_chars == 2
        assert graph.num_chars == 2
        # Every character of the run is addressable as (event_index, offset).
        assert graph.locate(EventId("a", 0)) == (0, 0)
        assert graph.locate(EventId("a", 1)) == (0, 1)
        assert graph.next_seq_for("a") == 2

    def test_overlapping_run_ids_rejected(self):
        graph = EventGraph()
        graph.add_event(EventId("a", 0), (), insert_op(0, "abc"), parents_are_indices=True)
        with pytest.raises(ValueError):
            # New run starts inside an existing run.
            graph.add_event(EventId("a", 2), (0,), insert_op(0, "x"), parents_are_indices=True)
        graph.add_event(EventId("a", 5), (0,), insert_op(0, "x"), parents_are_indices=True)
        with pytest.raises(ValueError):
            # New run envelops an existing run's start.
            graph.add_event(EventId("a", 4), (1,), insert_op(0, "xy"), parents_are_indices=True)

    def test_duplicate_id_rejected(self):
        graph = linear_graph("a")
        with pytest.raises(ValueError):
            graph.add_event(EventId("a", 0), (), insert_op(0, "x"), parents_are_indices=True)

    def test_parent_index_out_of_range_rejected(self):
        graph = EventGraph()
        with pytest.raises(ValueError):
            graph.add_event(EventId("a", 0), (3,), insert_op(0, "x"), parents_are_indices=True)

    def test_children_tracking(self):
        graph = linear_graph("ab")
        graph.add_event(EventId("b", 0), (0,), insert_op(1, "X"), parents_are_indices=True)
        assert list(graph.children_of(0)) == [1, 2]
        assert list(graph.children_of(1)) == []


class TestFrontier:
    def test_concurrent_events_both_in_frontier(self):
        graph = linear_graph("ab")
        graph.add_event(EventId("b", 0), [EventId("a", 1)], insert_op(2, "X"))
        graph.add_event(EventId("c", 0), [EventId("a", 1)], insert_op(2, "Y"))
        assert graph.frontier == (2, 3)

    def test_merge_event_collapses_frontier(self):
        graph = linear_graph("ab")
        graph.add_event(EventId("b", 0), [EventId("a", 1)], insert_op(2, "X"))
        graph.add_event(EventId("c", 0), [EventId("a", 1)], insert_op(2, "Y"))
        graph.add_event(EventId("a", 2), (2, 3), insert_op(0, "Z"), parents_are_indices=True)
        assert graph.frontier == (4,)

    def test_version_id_round_trip(self):
        graph = linear_graph("abc", agent="alice")
        ids = graph.ids_from_version(graph.frontier)
        assert graph.version_from_ids(ids) == graph.frontier


class TestRemoteEventsAndMerge:
    def test_add_remote_event_is_idempotent(self):
        graph = linear_graph("ab")
        result = graph.add_remote_event(EventId("a", 0), (), insert_op(0, "a"))
        assert result is None
        assert len(graph) == 2

    def test_add_remote_event_partial_run_overlap_rejected(self):
        graph = EventGraph()
        graph.add_local_event("a", insert_op(0, "abc"))
        # Exact redelivery of the whole run is idempotent ...
        assert graph.add_remote_event(EventId("a", 0), (), insert_op(0, "abc")) is None
        # ... but a run overlapping only part of it is a protocol violation.
        with pytest.raises(ValueError):
            graph.add_remote_event(EventId("a", 1), (), insert_op(0, "zz"))

    def test_merge_from_rejects_partially_overlapping_runs(self):
        ours = EventGraph()
        ours.add_event(EventId("a", 0), (), insert_op(0, "ab"), parents_are_indices=True)
        theirs = EventGraph()
        theirs.add_event(EventId("a", 0), (), insert_op(0, "abcde"), parents_are_indices=True)
        with pytest.raises(ValueError):
            ours.merge_from(theirs)

    def test_add_remote_event_with_missing_parent_raises(self):
        graph = EventGraph()
        with pytest.raises(KeyError):
            graph.add_remote_event(EventId("b", 0), [EventId("missing", 0)], insert_op(0, "x"))

    def test_merge_from_unions_graphs(self):
        base = linear_graph("ab", agent="alice")
        other = EventGraph()
        other.merge_from(base)
        other.add_local_event("bob", insert_op(2, "!"))
        added = base.merge_from(other)
        assert added == [2]
        assert base.contains_id(EventId("bob", 0))
        # Merging again adds nothing.
        assert base.merge_from(other) == []

    def test_merge_from_preserves_parent_relationships(self):
        base = linear_graph("ab", agent="alice")
        other = EventGraph()
        other.merge_from(base)
        other.add_local_event("bob", insert_op(0, "X"))
        base.add_local_event("alice", insert_op(2, "Y"))
        base.merge_from(other)
        bob_index = base.index_of(EventId("bob", 0))
        assert base.parents_of(bob_index) == (1,)
        assert set(base.frontier) == {2, 3}


class TestSummary:
    def test_summary_counts(self):
        graph = linear_graph("abc")
        graph.add_local_event("a", delete_op(0))
        summary = graph.summary()
        assert summary == {"events": 4, "chars": 4, "inserts": 3, "deletes": 1, "agents": 1}

    def test_summary_counts_chars_of_runs(self):
        graph = EventGraph()
        graph.add_local_event("a", insert_op(0, "hello"))
        graph.add_local_event("a", delete_op(1, 2))
        summary = graph.summary()
        assert summary == {"events": 2, "chars": 7, "inserts": 5, "deletes": 2, "agents": 1}

    def test_next_seq_for_unknown_agent(self):
        graph = EventGraph()
        assert graph.next_seq_for("nobody") == 0
