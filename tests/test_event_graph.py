"""Unit tests for the event graph: construction, frontier, merging."""

import pytest

from repro.core.event_graph import EventGraph, ROOT_VERSION
from repro.core.ids import EventId, delete_op, insert_op


def linear_graph(chars: str, agent: str = "a") -> EventGraph:
    graph = EventGraph()
    for i, char in enumerate(chars):
        graph.add_local_event(agent, insert_op(i, char))
    return graph


class TestConstruction:
    def test_empty_graph(self):
        graph = EventGraph()
        assert len(graph) == 0
        assert graph.frontier == ROOT_VERSION

    def test_add_local_event_sets_parents_to_frontier(self):
        graph = linear_graph("abc")
        assert graph.parents_of(0) == ()
        assert graph.parents_of(1) == (0,)
        assert graph.parents_of(2) == (1,)
        assert graph.frontier == (2,)

    def test_local_events_get_sequential_ids(self):
        graph = linear_graph("abc", agent="alice")
        assert [graph.id_of(i) for i in range(3)] == [
            EventId("alice", 0),
            EventId("alice", 1),
            EventId("alice", 2),
        ]

    def test_multi_char_ops_stored_as_single_run_event(self):
        graph = EventGraph()
        event = graph.add_event(
            EventId("a", 0), (), insert_op(0, "ab"), parents_are_indices=True
        )
        assert len(graph) == 1
        assert event.num_chars == 2
        assert graph.num_chars == 2
        # Every character of the run is addressable as (event_index, offset).
        assert graph.locate(EventId("a", 0)) == (0, 0)
        assert graph.locate(EventId("a", 1)) == (0, 1)
        assert graph.next_seq_for("a") == 2

    def test_overlapping_run_ids_rejected(self):
        graph = EventGraph()
        graph.add_event(EventId("a", 0), (), insert_op(0, "abc"), parents_are_indices=True)
        with pytest.raises(ValueError):
            # New run starts inside an existing run.
            graph.add_event(EventId("a", 2), (0,), insert_op(0, "x"), parents_are_indices=True)
        graph.add_event(EventId("a", 5), (0,), insert_op(0, "x"), parents_are_indices=True)
        with pytest.raises(ValueError):
            # New run envelops an existing run's start.
            graph.add_event(EventId("a", 4), (1,), insert_op(0, "xy"), parents_are_indices=True)

    def test_duplicate_id_rejected(self):
        graph = linear_graph("a")
        with pytest.raises(ValueError):
            graph.add_event(EventId("a", 0), (), insert_op(0, "x"), parents_are_indices=True)

    def test_parent_index_out_of_range_rejected(self):
        graph = EventGraph()
        with pytest.raises(ValueError):
            graph.add_event(EventId("a", 0), (3,), insert_op(0, "x"), parents_are_indices=True)

    def test_children_tracking(self):
        graph = linear_graph("ab")
        graph.add_event(EventId("b", 0), (0,), insert_op(1, "X"), parents_are_indices=True)
        assert list(graph.children_of(0)) == [1, 2]
        assert list(graph.children_of(1)) == []


class TestFrontier:
    def test_concurrent_events_both_in_frontier(self):
        graph = linear_graph("ab")
        graph.add_event(EventId("b", 0), [EventId("a", 1)], insert_op(2, "X"))
        graph.add_event(EventId("c", 0), [EventId("a", 1)], insert_op(2, "Y"))
        assert graph.frontier == (2, 3)

    def test_merge_event_collapses_frontier(self):
        graph = linear_graph("ab")
        graph.add_event(EventId("b", 0), [EventId("a", 1)], insert_op(2, "X"))
        graph.add_event(EventId("c", 0), [EventId("a", 1)], insert_op(2, "Y"))
        graph.add_event(EventId("a", 2), (2, 3), insert_op(0, "Z"), parents_are_indices=True)
        assert graph.frontier == (4,)

    def test_version_id_round_trip(self):
        graph = linear_graph("abc", agent="alice")
        ids = graph.ids_from_version(graph.frontier)
        assert graph.version_from_ids(ids) == graph.frontier


class TestRemoteEventsAndMerge:
    def test_add_remote_event_is_idempotent(self):
        graph = linear_graph("ab")
        result = graph.add_remote_event(EventId("a", 0), (), insert_op(0, "a"))
        assert result == []
        assert len(graph) == 2

    def test_add_remote_event_conflicting_content_rejected(self):
        graph = EventGraph()
        graph.add_local_event("a", insert_op(0, "abc"))
        # Exact redelivery of the whole run is idempotent ...
        assert graph.add_remote_event(EventId("a", 0), (), insert_op(0, "abc")) == []
        # ... and so is redelivery of a re-carved sub-run ...
        assert graph.add_remote_event(EventId("a", 1), (), insert_op(1, "bc")) == []
        # ... but the same ids carrying different content is the one truly
        # illegal divergence.
        with pytest.raises(ValueError, match="different content"):
            graph.add_remote_event(EventId("a", 1), (), insert_op(1, "zz"))

    def test_merge_from_conflicting_content_rejected(self):
        ours = EventGraph()
        ours.add_event(EventId("a", 0), (), insert_op(0, "ab"), parents_are_indices=True)
        theirs = EventGraph()
        theirs.add_event(EventId("a", 0), (), insert_op(0, "xy"), parents_are_indices=True)
        with pytest.raises(ValueError, match="different content"):
            ours.merge_from(theirs)

    def test_merge_from_conflicting_kind_rejected(self):
        ours = EventGraph()
        ours.add_event(EventId("a", 0), (), insert_op(0, "ab"), parents_are_indices=True)
        theirs = EventGraph()
        theirs.add_event(EventId("a", 0), (), delete_op(0, 2), parents_are_indices=True)
        with pytest.raises(ValueError, match="different content"):
            ours.merge_from(theirs)

    def test_add_remote_event_with_missing_parent_raises(self):
        graph = EventGraph()
        with pytest.raises(KeyError):
            graph.add_remote_event(EventId("b", 0), [EventId("missing", 0)], insert_op(0, "x"))

    def test_merge_from_unions_graphs(self):
        base = linear_graph("ab", agent="alice")
        other = EventGraph()
        other.merge_from(base)
        other.add_local_event("bob", insert_op(2, "!"))
        added = base.merge_from(other)
        assert added == [2]
        assert base.contains_id(EventId("bob", 0))
        # Merging again adds nothing.
        assert base.merge_from(other) == []

    def test_merge_from_preserves_parent_relationships(self):
        base = linear_graph("ab", agent="alice")
        other = EventGraph()
        other.merge_from(base)
        other.add_local_event("bob", insert_op(0, "X"))
        base.add_local_event("alice", insert_op(2, "Y"))
        base.merge_from(other)
        bob_index = base.index_of(EventId("bob", 0))
        assert base.parents_of(bob_index) == (1,)
        assert set(base.frontier) == {2, 3}


class TestRunCarvingInterop:
    """Run boundaries are a local encoding detail (split-on-ingest)."""

    def test_remote_run_extending_stored_prefix_adds_suffix_only(self):
        graph = EventGraph()
        graph.add_event(EventId("a", 0), (), insert_op(0, "ab"), parents_are_indices=True)
        added = graph.add_remote_event(EventId("a", 0), (), insert_op(0, "abcde"))
        # Only the unseen suffix becomes a new event, chained onto the prefix.
        assert [(e.id, e.op.content) for e in added] == [(EventId("a", 2), "cde")]
        assert graph.parents_of(added[0].index) == (0,)
        assert graph.num_chars == 5
        assert graph.frontier == (1,)

    def test_finer_carving_is_absorbed_as_duplicates(self):
        coarse = EventGraph()
        coarse.add_event(EventId("a", 0), (), insert_op(0, "abcd"), parents_are_indices=True)
        fine = EventGraph()
        fine.add_event(EventId("a", 0), (), insert_op(0, "ab"), parents_are_indices=True)
        fine.add_event(EventId("a", 2), (0,), insert_op(2, "cd"), parents_are_indices=True)
        assert coarse.merge_from(fine) == []
        assert len(coarse) == 1  # nothing split: the coverage already agreed
        assert fine.merge_from(coarse) == []
        assert len(fine) == 2

    def test_mid_run_parent_reference_splits_stored_run(self):
        graph = EventGraph()
        graph.add_event(EventId("x", 0), (), insert_op(0, "abcd"), parents_are_indices=True)
        # A peer that only ever saw "ab" replies concurrently with the "cd" half.
        added = graph.add_remote_event(EventId("y", 0), (EventId("x", 1),), insert_op(2, "Y"))
        assert len(added) == 1
        # The stored run was split at the dependency boundary ...
        assert [e.id for e in graph.events()] == [
            EventId("x", 0),
            EventId("x", 2),
            EventId("y", 0),
        ]
        assert [e.op.content for e in graph.events()] == ["ab", "cd", "Y"]
        # ... so y is causally after "ab" but concurrent with "cd".
        y_index = graph.index_of(EventId("y", 0))
        assert graph.parents_of(y_index) == (0,)
        assert graph.parents_of(1) == (0,)
        assert set(graph.frontier) == {1, 2}

    def test_split_event_rewrites_children_and_indices(self):
        graph = EventGraph()
        graph.add_event(EventId("x", 0), (), insert_op(0, "abcd"), parents_are_indices=True)
        graph.add_event(EventId("z", 0), (0,), insert_op(4, "!"), parents_are_indices=True)
        right = graph.split_event(0, 2)
        # z depended on the whole run, so it now hangs off the right half.
        assert right.index == 1 and right.id == EventId("x", 2)
        assert graph.parents_of(1) == (0,)
        z_index = graph.index_of(EventId("z", 0))
        assert z_index == 2
        assert graph.parents_of(z_index) == (1,)
        assert list(graph.children_of(0)) == [1]
        assert sorted(graph.children_of(1)) == [2]
        assert graph.frontier == (2,)
        assert graph.num_chars == 5
        # The id map refined in place.
        assert graph.locate(EventId("x", 1)) == (0, 1)
        assert graph.locate(EventId("x", 3)) == (1, 1)

    def test_split_delete_run(self):
        graph = EventGraph()
        graph.add_event(EventId("x", 0), (), insert_op(0, "abcd"), parents_are_indices=True)
        graph.add_event(EventId("x", 4), (0,), delete_op(1, 3), parents_are_indices=True)
        right = graph.split_event(1, 2)
        # Both delete halves keep the original position: the characters shift
        # onto it as their predecessors disappear.
        assert graph[1].op == delete_op(1, 2)
        assert right.op == delete_op(1, 1)
        assert graph.parents_of(2) == (1,)

    def test_differently_carved_graphs_union_cleanly(self):
        """The headline interop property: two graphs carrying the same edits
        carved differently (plus divergent branches) merge to the same set of
        characters and dependencies."""
        ours = EventGraph()
        ours.add_event(EventId("x", 0), (), insert_op(0, "hello "), parents_are_indices=True)
        ours.add_event(EventId("x", 6), (0,), insert_op(6, "world"), parents_are_indices=True)
        theirs = EventGraph()
        theirs.add_event(
            EventId("x", 0), (), insert_op(0, "hello world"), parents_are_indices=True
        )
        theirs.add_event(EventId("y", 0), (0,), insert_op(11, "!"), parents_are_indices=True)
        added = ours.merge_from(theirs)
        assert [ours[i].id for i in added] == [EventId("y", 0)]
        assert ours.num_chars == 12
        # And in the other direction the coarse run is split by the version
        # boundary the finer graph carries.
        theirs.merge_from(ours)
        assert theirs.num_chars == 12
        assert {e.id for e in theirs.events()} >= {EventId("x", 0), EventId("y", 0)}

    def test_dependency_ids_name_last_characters(self):
        graph = EventGraph()
        graph.add_event(EventId("a", 0), (), insert_op(0, "abc"), parents_are_indices=True)
        assert graph.dependency_id(0) == EventId("a", 2)
        assert graph.ids_from_version((0,)) == (EventId("a", 2),)
        assert graph.version_from_ids([EventId("a", 2)]) == (0,)

    def test_dependency_index_splits_only_on_mid_run_reference(self):
        graph = EventGraph()
        graph.add_event(EventId("a", 0), (), insert_op(0, "abc"), parents_are_indices=True)
        assert graph.dependency_index(EventId("a", 2)) == 0
        assert len(graph) == 1  # final character: no split needed
        assert graph.dependency_index(EventId("a", 0)) == 0
        assert len(graph) == 2  # mid-run: split after the referenced char
        assert graph[0].op.content == "a"
        assert graph[1].op.content == "bc"


class TestSummary:
    def test_summary_counts(self):
        graph = linear_graph("abc")
        graph.add_local_event("a", delete_op(0))
        summary = graph.summary()
        assert summary == {"events": 4, "chars": 4, "inserts": 3, "deletes": 1, "agents": 1}

    def test_summary_counts_chars_of_runs(self):
        graph = EventGraph()
        graph.add_local_event("a", insert_op(0, "hello"))
        graph.add_local_event("a", delete_op(1, 2))
        summary = graph.summary()
        assert summary == {"events": 2, "chars": 7, "inserts": 5, "deletes": 2, "agents": 1}

    def test_next_seq_for_unknown_agent(self):
        graph = EventGraph()
        assert graph.next_seq_for("nobody") == 0
