"""Tests for the benchmark harness: adapters, memory measurement, experiment runners."""

import json

import pytest

from repro.bench import (
    ALL_ADAPTERS,
    EgWalkerAdapter,
    OTAdapter,
    RefCRDTAdapter,
    adapter_by_name,
    format_results,
    format_table,
    measure_memory,
    results_to_json,
    run_clearing_ablation,
    run_file_size_full,
    run_file_size_pruned,
    run_memory,
    run_merge_time,
    run_scaling,
    run_sort_order_ablation,
    run_table1,
)
from repro.traces import generate_concurrent, generate_sequential


@pytest.fixture(scope="module")
def tiny_traces():
    return {
        "S1": generate_sequential("S1", target_events=180, authors=2, seed=41),
        "C1": generate_concurrent("C1", target_events=180, seed=42),
    }


class TestAdapters:
    def test_all_adapters_have_unique_names(self):
        names = [adapter.name for adapter in ALL_ADAPTERS()]
        assert len(names) == len(set(names)) == 5

    def test_adapter_by_name(self):
        assert adapter_by_name("eg-walker").name == "eg-walker"
        with pytest.raises(KeyError):
            adapter_by_name("not-an-algorithm")

    @pytest.mark.parametrize("adapter_name", ["eg-walker", "ot", "ref-crdt", "automerge-like", "yjs-like"])
    def test_merge_save_load_round_trip(self, adapter_name, tiny_traces):
        adapter = adapter_by_name(adapter_name)
        trace = tiny_traces["C1"]
        outcome = adapter.merge(trace)
        assert outcome.text == trace.final_text
        saved = adapter.save(trace, outcome)
        assert isinstance(saved, bytes) and saved
        assert adapter.load(saved) == outcome.text

    def test_all_algorithms_agree_on_final_text(self, tiny_traces):
        trace = tiny_traces["C1"]
        texts = {adapter.name: adapter.merge(trace).text for adapter in ALL_ADAPTERS()}
        assert len(set(texts.values())) == 1

    def test_egwalker_snapshot_fast_load(self, tiny_traces):
        adapter = EgWalkerAdapter()
        trace = tiny_traces["S1"]
        outcome = adapter.merge(trace)
        snapshot = adapter.save_snapshot_only(outcome, trace)
        assert adapter.load_snapshot(snapshot) == outcome.text

    def test_egwalker_pruned_save_is_smaller(self, tiny_traces):
        adapter = EgWalkerAdapter()
        trace = tiny_traces["S1"]
        outcome = adapter.merge(trace)
        assert len(adapter.save_pruned(trace, outcome)) < len(adapter.save(trace, outcome))


class TestMemoryMeasurement:
    def test_measure_memory_reports_peak_and_retained(self):
        def build():
            temporary = [0] * 50_000
            kept = list(range(10_000))
            del temporary
            return kept

        result, measurement = measure_memory(build)
        assert len(result) == 10_000
        assert measurement.peak_bytes > measurement.retained_bytes > 0
        assert measurement.peak_mib > 0

    def test_crdt_retains_more_than_egwalker(self, tiny_traces):
        trace = tiny_traces["C1"]
        _, eg = measure_memory(lambda: EgWalkerAdapter().merge(trace))
        _, crdt = measure_memory(lambda: RefCRDTAdapter().merge(trace))
        assert crdt.retained_bytes > eg.retained_bytes


class TestExperimentRunners:
    def test_table1_rows(self, tiny_traces):
        rows = run_table1(tiny_traces)
        assert len(rows) == len(tiny_traces)
        assert {"trace", "measured_events_k"} <= set(rows[0])

    def test_merge_time_rows(self, tiny_traces):
        rows = run_merge_time(tiny_traces, adapters=[EgWalkerAdapter(), OTAdapter()])
        assert len(rows) == len(tiny_traces) * 2
        for row in rows:
            assert row["merge_ms"] >= 0
            assert row["load_ms"] >= 0

    def test_clearing_ablation_rows(self, tiny_traces):
        rows = run_clearing_ablation(tiny_traces)
        by_key = {(row["trace"], row["optimisation"]): row for row in rows}
        assert by_key[("S1", "enabled")]["fast_path_events"] > 0
        assert by_key[("S1", "disabled")]["fast_path_events"] == 0

    def test_memory_rows(self, tiny_traces):
        rows = run_memory(tiny_traces, adapters=[EgWalkerAdapter(), RefCRDTAdapter()])
        by_key = {(row["trace"], row["algorithm"]): row for row in rows}
        for name in tiny_traces:
            assert (
                by_key[(name, "ref-crdt")]["steady_kib"]
                > by_key[(name, "eg-walker")]["steady_kib"]
            )

    def test_file_size_rows(self, tiny_traces):
        full = run_file_size_full(tiny_traces)
        pruned = run_file_size_pruned(tiny_traces)
        assert len(full) == len(pruned) == len(tiny_traces)
        for row in full:
            assert row["egwalker_bytes"] > row["inserted_text_bytes"] * 0.5
            assert row["egwalker_cached_doc_bytes"] >= row["egwalker_bytes"]
        for row in pruned:
            assert row["egwalker_pruned_bytes"] >= row["final_doc_bytes"] * 0.5

    def test_sort_order_ablation(self, tiny_traces):
        rows = run_sort_order_ablation(tiny_traces, trace_names=("C1",))
        strategies = {row["sort_order"] for row in rows}
        assert strategies == {"branch_aware", "local", "interleaved"}

    def test_scaling_rows(self):
        rows = run_scaling(branch_sizes=(40, 80))
        assert len(rows) == 2
        assert rows[1]["ot_work_units"] > rows[0]["ot_work_units"]


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        table = format_table(rows, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no data)" in format_table([], title="empty")

    def test_format_results_and_json(self, tiny_traces):
        results = {"table1_trace_stats": run_table1(tiny_traces)}
        rendered = format_results(results)
        assert "Table 1" in rendered
        parsed = json.loads(results_to_json(results))
        assert "table1_trace_stats" in parsed
