"""Tests for the synthetic editing traces and their statistics (§4.1, Table 1)."""

import pytest

from repro.core.causal_graph import CausalGraph
from repro.core.walker import EgWalker
from repro.traces import (
    PAPER_TABLE1,
    TRACE_NAMES,
    compute_stats,
    generate_async,
    generate_concurrent,
    generate_sequential,
    get_trace,
)


class TestGenerators:
    def test_sequential_trace_is_linear(self, small_sequential_trace):
        stats = compute_stats(small_sequential_trace)
        assert stats.average_concurrency == 0.0
        assert stats.graph_runs == 1
        assert stats.authors == 2

    def test_sequential_trace_is_deterministic(self):
        a = generate_sequential("det", target_events=150, authors=1, seed=9)
        b = generate_sequential("det", target_events=150, authors=1, seed=9)
        assert a.final_text == b.final_text
        assert len(a.graph) == len(b.graph)

    def test_different_seeds_give_different_traces(self):
        a = generate_sequential("det", target_events=150, authors=1, seed=1)
        b = generate_sequential("det", target_events=150, authors=1, seed=2)
        assert a.final_text != b.final_text

    def test_concurrent_trace_has_branches(self, small_concurrent_trace):
        stats = compute_stats(small_concurrent_trace)
        assert stats.average_concurrency > 0.1
        assert stats.graph_runs > 5
        assert stats.authors == 2

    def test_async_trace_has_multiple_authors_and_branches(self, small_async_trace):
        stats = compute_stats(small_async_trace)
        assert stats.authors >= 4
        assert stats.average_concurrency > 0.5

    def test_async_trace_with_unmerged_heads(self):
        trace = generate_async(
            "heads",
            target_events=200,
            seed=5,
            concurrent_branches=3,
            events_per_branch=40,
            authors=3,
            keep_unmerged=True,
        )
        assert len(trace.graph.frontier) >= 2

    @pytest.mark.parametrize(
        "trace_fixture",
        ["small_sequential_trace", "small_concurrent_trace", "small_async_trace"],
    )
    def test_generated_graphs_are_valid(self, trace_fixture, request):
        """Every event's position is valid in its parents' document (Def. C.1)."""
        trace = request.getfixturevalue(trace_fixture)
        graph = trace.graph
        walker = EgWalker(graph)
        causal = CausalGraph(graph)
        # Spot-check a sample of events (checking all is quadratic).
        step = max(1, len(graph) // 40)
        for idx in range(0, len(graph), step):
            event = graph[idx]
            parent_text = walker.text_at_version(event.parents)
            if event.op.is_insert:
                assert 0 <= event.op.pos <= len(parent_text)
            else:
                assert 0 <= event.op.pos < len(parent_text)

    def test_trace_final_text_is_cached(self, small_sequential_trace):
        first = small_sequential_trace.final_text
        assert small_sequential_trace.final_text is first

    def test_summary_line(self, small_sequential_trace):
        line = small_sequential_trace.summary_line()
        assert "sequential" in line and "events=" in line


class TestStats:
    def test_chars_remaining_accounts_for_deletes(self, small_sequential_trace):
        stats = compute_stats(small_sequential_trace)
        assert 0 < stats.chars_remaining_percent <= 100
        assert stats.inserts + stats.deletes == stats.events
        assert stats.final_size_bytes == len(small_sequential_trace.final_text.encode())

    def test_as_row_keys_match_paper_table(self, small_sequential_trace):
        row = compute_stats(small_sequential_trace).as_row()
        paper_keys = set(PAPER_TABLE1["S1"].keys())
        assert paper_keys <= set(row.keys()) | {"name"}


class TestDatasetRegistry:
    def test_all_names_present(self):
        assert TRACE_NAMES == ("S1", "S2", "S3", "C1", "C2", "A1", "A2")
        assert set(PAPER_TABLE1) == set(TRACE_NAMES)

    def test_unknown_trace_rejected(self):
        with pytest.raises(KeyError):
            get_trace("S9")

    def test_get_trace_caches(self):
        a = get_trace("S1", scale=0.02)
        b = get_trace("S1", scale=0.02)
        assert a is b

    @pytest.mark.parametrize("name", ["S1", "C1", "A2"])
    def test_tiny_scale_traces_have_expected_shape(self, name):
        trace = get_trace(name, scale=0.02)
        stats = compute_stats(trace)
        if name.startswith("S"):
            assert stats.average_concurrency == 0.0
        else:
            assert stats.average_concurrency > 0.0
        assert stats.events >= 150
