"""Tests for the CRDT substrate: the list CRDT, the converter, and the baselines."""

import random

import pytest

from repro.core.walker import EgWalker
from repro.crdt import (
    AutomergeLikeDocument,
    CrdtDeleteOp,
    CrdtInsertOp,
    RefCRDTDocument,
    SimpleListCRDT,
    YjsLikeDocument,
    event_graph_to_crdt_ops,
)
from repro.core.ids import EventId


class TestSimpleListCRDTLocalEditing:
    def test_local_insert_and_text(self):
        doc = SimpleListCRDT("a")
        doc.local_insert(0, "hello")
        assert doc.text() == "hello"
        assert len(doc) == 5

    def test_local_delete(self):
        doc = SimpleListCRDT("a")
        doc.local_insert(0, "hello")
        doc.local_delete(0, 2)
        assert doc.text() == "llo"
        assert doc.item_count() == 5  # tombstones retained

    def test_ops_capture_origins(self):
        doc = SimpleListCRDT("a")
        ops = doc.local_insert(0, "ab")
        assert ops[0].origin_left is None
        assert ops[1].origin_left == ops[0].id

    def test_insert_out_of_range(self):
        doc = SimpleListCRDT("a")
        with pytest.raises(IndexError):
            doc.local_insert(1, "x")

    def test_delete_out_of_range(self):
        doc = SimpleListCRDT("a")
        doc.local_insert(0, "x")
        with pytest.raises(IndexError):
            doc.local_delete(1)


class TestSimpleListCRDTReplication:
    def _sync(self, source: SimpleListCRDT, target: SimpleListCRDT, ops):
        for op in ops:
            target.apply(op)

    def test_two_replicas_converge_concurrent_inserts(self):
        a = SimpleListCRDT("a")
        b = SimpleListCRDT("b")
        base_ops = a.local_insert(0, "Helo")
        self._sync(a, b, base_ops)
        ops_a = a.local_insert(3, "l")
        ops_b = b.local_insert(4, "!")
        self._sync(a, b, ops_a)
        self._sync(b, a, ops_b)
        assert a.text() == b.text() == "Hello!"

    def test_concurrent_delete_and_insert(self):
        a = SimpleListCRDT("a")
        b = SimpleListCRDT("b")
        self._sync(a, b, a.local_insert(0, "abc"))
        ops_a = a.local_delete(1)
        ops_b = b.local_insert(3, "!")
        self._sync(a, b, ops_a)
        self._sync(b, a, ops_b)
        assert a.text() == b.text() == "ac!"

    def test_out_of_order_delivery_is_buffered(self):
        a = SimpleListCRDT("a")
        ops = a.local_insert(0, "xyz")
        b = SimpleListCRDT("b")
        # Deliver in reverse order: later ops must wait for their origins.
        assert not b.apply(ops[2])
        assert not b.apply(ops[1])
        assert b.apply(ops[0])
        assert b.text() == "xyz"

    def test_duplicate_delivery_is_idempotent(self):
        a = SimpleListCRDT("a")
        ops = a.local_insert(0, "hi")
        b = SimpleListCRDT("b")
        for _ in range(3):
            for op in ops:
                b.apply(op)
        assert b.text() == "hi"
        assert b.item_count() == 2

    def test_apply_all_raises_on_missing_dependencies(self):
        b = SimpleListCRDT("b")
        orphan = CrdtDeleteOp(id=EventId("a", 5), target=EventId("a", 0))
        with pytest.raises(RuntimeError):
            b.apply_all([orphan])

    def test_delivery_order_does_not_matter(self):
        rng = random.Random(3)
        a = SimpleListCRDT("a")
        b = SimpleListCRDT("b")
        ops_a, ops_b = [], []
        base = a.local_insert(0, "The quick brown fox")
        for op in base:
            b.apply(op)
        ops_a += a.local_insert(4, "very ")
        ops_b += b.local_delete(4, 6)
        ops_a += a.local_insert(0, ">> ")
        all_ops = ops_a + ops_b
        results = set()
        for _ in range(5):
            order = all_ops[:]
            rng.shuffle(order)
            c = SimpleListCRDT("c")
            for op in base:
                c.apply(op)
            # Causal delivery is required, so keep retrying buffered ops.
            for op in order:
                c.apply(op)
            assert c._pending == []
            results.add(c.text())
        assert len(results) == 1


class TestConverter:
    @pytest.mark.parametrize(
        "trace_fixture",
        ["small_sequential_trace", "small_concurrent_trace", "small_async_trace"],
    )
    def test_converted_ops_replay_to_the_same_text(self, trace_fixture, request):
        trace = request.getfixturevalue(trace_fixture)
        graph = trace.graph
        ops = event_graph_to_crdt_ops(graph)
        # The converter expands run events into per-character CRDT ops.
        assert len(ops) == graph.num_chars
        replica = SimpleListCRDT("replica")
        replica.apply_all(ops)
        assert replica.text() == EgWalker(graph).replay_text()

    def test_converted_op_ids_match_event_ids(self, figure2_graph):
        ops = event_graph_to_crdt_ops(figure2_graph)
        assert [op.id for op in ops] == [figure2_graph.id_of(i) for i in range(len(figure2_graph))]

    def test_delete_ops_reference_inserted_characters(self, figure4_graph):
        ops = event_graph_to_crdt_ops(figure4_graph)
        deletes = [op for op in ops if isinstance(op, CrdtDeleteOp)]
        insert_ids = {op.id for op in ops if isinstance(op, CrdtInsertOp)}
        assert deletes, "figure 4 contains deletions"
        for op in deletes:
            assert op.target in insert_ids


class TestPersistentCrdtBaselines:
    @pytest.mark.parametrize(
        "document_class", [RefCRDTDocument, AutomergeLikeDocument, YjsLikeDocument]
    )
    def test_merge_matches_walker(self, document_class, small_concurrent_trace):
        graph = small_concurrent_trace.graph
        document = document_class()
        text = document.merge_event_graph(graph)
        assert text == EgWalker(graph).replay_text()
        # CRDT baselines retain one item per *character*, whatever the run
        # structure of the event graph.
        assert document.item_count() == sum(
            e.op.length for e in graph.events() if e.op.is_insert
        )
        deleted_chars = sum(e.op.length for e in graph.events() if e.op.is_delete)
        assert document.tombstone_count() <= deleted_chars

    @pytest.mark.parametrize(
        "document_class", [RefCRDTDocument, AutomergeLikeDocument, YjsLikeDocument]
    )
    def test_save_load_round_trip(self, document_class, small_async_trace):
        graph = small_async_trace.graph
        document = document_class()
        text = document.merge_event_graph(graph)
        data = document.save()
        loaded = document_class.load(data)
        assert loaded.text == text
        assert loaded.item_count() == document.item_count()

    def test_ref_crdt_retains_tombstones(self, small_sequential_trace):
        graph = small_sequential_trace.graph
        document = RefCRDTDocument()
        document.merge_event_graph(graph)
        deleted_chars = sum(e.op.length for e in graph.events() if e.op.is_delete)
        assert document.tombstone_count() > 0
        assert document.tombstone_count() <= deleted_chars

    def test_automerge_like_file_keeps_full_history(self, small_sequential_trace):
        graph = small_sequential_trace.graph
        document = AutomergeLikeDocument()
        document.merge_event_graph(graph)
        # The Automerge-like format stores one row per character operation,
        # so the decoded history is the per-character expansion of the graph.
        decoded = AutomergeLikeDocument.decode_history(document.save())
        assert len(decoded) == graph.num_chars
        assert EgWalker(decoded).replay_text() == document.text

    def test_yjs_like_file_is_smaller_than_automerge_like(self, small_sequential_trace):
        graph = small_sequential_trace.graph
        automerge = AutomergeLikeDocument()
        automerge.merge_event_graph(graph)
        yjs = YjsLikeDocument()
        yjs.merge_event_graph(graph)
        assert len(yjs.save()) < len(automerge.save())

    def test_wrong_magic_rejected(self):
        with pytest.raises(ValueError):
            RefCRDTDocument.load(b"XXXXnot a document")
        with pytest.raises(ValueError):
            YjsLikeDocument.load(b"XXXXnot a document")
        with pytest.raises(ValueError):
            AutomergeLikeDocument.load(b"XXXXnot a document")
