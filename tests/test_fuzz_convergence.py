"""Randomized convergence fuzzer for partial-run interop and the merge engine.

Drives N replicas through the :class:`~repro.network.simulator.NetworkSimulator`
with a mix of

* insert/delete runs of mixed sizes (1..6 characters) — with sender-side run
  coalescing live, so consecutive edits extend frontier runs in place and
  only suffix deltas travel,
* partitions and heals between random pairs (heal resends use
  ``events_since``, whose version boundaries can land mid-run and split
  stored runs),
* **offline/online toggles**: an offline replica queues its outgoing edits
  and has incoming messages held, then floods everything on reconnect —
  mixed freely with the re-carved syncs below (the PR 2 gap),
* **re-carved direct syncs**: a random causally-closed prefix of one
  replica's exported events is re-encoded with different run boundaries
  (random splits, random adjacent-run merges) and ingested by another
  replica.  The receiver may then edit on top of a *strict prefix* of a
  peer's run, which forces mid-run parent references and
  partial-overlap ingestion everywhere that event travels — the
  split-on-ingest paths this fuzzer exists to hammer.

Sessions run on a full mesh and on a star (relay) topology, and every
configuration runs with the incremental merge engine both **enabled and
disabled** (the legacy rebuild path): after healing everything and draining
the network, every replica must hold the same text in both modes, and that
text must match the per-character
:func:`~repro.core.event_graph.expand_to_chars` oracle replayed with the
simple list backend.

On top of convergence, every session exercises the **version stability**
property of the id-based history subsystem: replicas save
``document.version()`` handles (with the text they stood for) at random
points mid-session, and at the end — after all the in-place run extensions,
interop splits and re-carved syncs above — ``text_at(saved)`` must reproduce
the saved text exactly, must agree with the per-character oracle, saved
handles must round-trip through the storage codec, and ``diff`` between a
replica's consecutive saves must transform one saved text into the next.

Every converged session ends with a **storage v3 round-trip property**: the
history is encoded in full, uncompressed, pruned and snapshot-bearing
container modes (plus a re-carved interop copy of the same history), each
decode must re-encode byte-identically, replay to the oracle-agreed text,
and a snapshot-bearing file must serve that text selectively — zero events
materialised.

Each session also checks **handle stability** of the columnar event graph:
random :class:`Event` views saved mid-session must still be the live
singleton for their position at the end (same object, same id, same
handle), the handle indirection must stay an exact inverse of the local
order, order labels must remain strictly increasing through every split,
and — for incremental sessions — the handle-keyed critical-cut tracker
must agree with a from-scratch :func:`critical_cut_positions` rebuild.

Everything is seeded and deterministic: session ``i`` uses
``random.Random(BASE_SEED + i)``.  The iteration count comes from the
``--fuzz-iterations`` pytest option (tests/conftest.py); CI runs a fixed
modest count, nightly jobs can crank it up.
"""

from __future__ import annotations

import random

from repro.core.critical_versions import critical_cut_positions
from repro.core.document import Document
from repro.core.event_graph import expand_to_chars
from repro.core.oplog import recarve_events
from repro.core.walker import EgWalker
from repro.history import History, Version, apply_ops
from repro.network.simulator import full_mesh, star
from repro.storage import (
    ContainerOptions,
    LazyDecodedFile,
    decode_event_graph,
    decode_file,
    decode_version,
    encode_event_graph,
    encode_event_graph_v3,
    encode_version,
)

BASE_SEED = 0xE6_2024
ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def oracle_text(document: Document) -> str:
    """The document text according to the per-character oracle."""
    expanded = expand_to_chars(document.oplog.graph)
    return EgWalker(expanded, backend="list", enable_clearing=False).replay_text()


def oracle_text_at(document: Document, version: Version) -> str:
    """The text at ``version`` according to the per-character oracle."""
    expanded = expand_to_chars(document.oplog.graph)
    indices = tuple(sorted({expanded.index_of(eid) for eid in version.ids}))
    walker = EgWalker(expanded, backend="list", enable_clearing=False)
    return walker.text_at_version(indices)


def random_recarve(rng: random.Random, events):
    """Re-encode an event list with random run boundaries (same history)."""

    def splits(event):
        if event.op.length < 2 or rng.random() < 0.5:
            return ()
        count = rng.randint(1, min(2, event.op.length - 1))
        return rng.sample(range(1, event.op.length), count)

    return recarve_events(events, splits=splits, merge_adjacent=rng.random() < 0.5)


def run_session(
    seed: int,
    *,
    replicas: int = 3,
    steps: int = 28,
    incremental: bool = True,
    topology: str = "mesh",
) -> None:
    rng = random.Random(seed)
    names = [f"r{i}" for i in range(replicas)]
    # Sender-side run coalescing alternates by seed, so both the extended
    # and the one-event-per-edit encodings are fuzzed at no extra cost.
    document_options = {"incremental": incremental, "coalesce_local_runs": seed % 2 == 0}
    if topology == "star":
        sim = star("hub", names, latency=0.01, document_options=document_options)
        all_names = ["hub", *names]
    else:
        sim = full_mesh(names, latency=0.01, document_options=document_options)
        all_names = names
    partitioned: set[frozenset[str]] = set()
    #: Version-stability snapshots: (replica name, saved handle, saved text).
    saved_versions: list[tuple[str, Version, str]] = []
    #: Handle-stability snapshots: (replica name, Event view, id, handle).
    saved_events: list[tuple[str, object, object, int]] = []

    for _ in range(steps):
        roll = rng.random()
        replica = sim.replicas[rng.choice(names)]
        if len(saved_versions) < 6 and rng.random() < 0.18:
            saved_versions.append(
                (replica.name, replica.document.version(), replica.text)
            )
        graph = replica.document.oplog.graph
        if len(saved_events) < 8 and len(graph) and rng.random() < 0.2:
            view = graph[rng.randrange(len(graph))]
            saved_events.append((replica.name, view, view.id, view.handle))
        if roll < 0.45 or not replica.text:
            pos = rng.randint(0, len(replica.text))
            length = rng.randint(1, 6)
            replica.insert(pos, "".join(rng.choice(ALPHABET) for _ in range(length)))
        elif roll < 0.62:
            pos = rng.randrange(len(replica.text))
            replica.delete(pos, min(rng.randint(1, 4), len(replica.text) - pos))
        elif roll < 0.72 and topology == "mesh":
            a, b = rng.sample(names, 2)
            key = frozenset((a, b))
            if key in partitioned:
                sim.heal(a, b)
                partitioned.discard(key)
            else:
                sim.partition(a, b)
                partitioned.add(key)
        elif roll < 0.80:
            # Offline/online toggle: outgoing edits queue up, incoming
            # messages are held, and everything floods on reconnect — while
            # re-carved syncs (below) may slip the same spans in out of band.
            toggled = sim.replicas[rng.choice(names)]
            toggled.set_online(not toggled.online)
        else:
            # Re-carved direct sync of a random causally-closed prefix: the
            # receiver can end up holding a strict prefix of a peer's run and
            # then edit on top of it (mid-run parents, partial overlaps).
            a, b = rng.sample(names, 2)
            events = sim.replicas[a].document.oplog.export_events()
            recarved = random_recarve(rng, events)
            prefix = recarved[: rng.randint(0, len(recarved))]
            sim.replicas[b].sync_direct(prefix)
        sim.advance(rng.random() * 0.03)

    for name in all_names:
        sim.replicas[name].set_online(True)
    for key in list(partitioned):
        a, b = sorted(key)
        sim.heal(a, b)
    # Direct syncs bypass the broadcast path, so make sure every pair has
    # exchanged anything a heal-less run might still be missing.
    for i, a in enumerate(all_names):
        for b in all_names[i + 1 :]:
            sim.heal(a, b)
    sim.run_until_quiescent()

    texts = {name: replica.text for name, replica in sim.replicas.items()}
    assert len(set(texts.values())) == 1, (
        f"replicas diverged (seed {seed}, incremental={incremental}, "
        f"{topology}): {texts}"
    )
    expected = next(iter(texts.values()))
    for name, replica in sim.replicas.items():
        assert oracle_text(replica.document) == expected, (
            f"replica {name} disagrees with the per-character oracle "
            f"(seed {seed}, incremental={incremental}, {topology})"
        )

    # --- version stability: saved handles still mean what they meant -------
    context = f"seed {seed}, incremental={incremental}, {topology}"
    per_replica: dict[str, list[tuple[Version, str]]] = {}
    for owner, version, text in saved_versions:
        document = sim.replicas[owner].document
        reconstructed = document.text_at(version)
        assert reconstructed == text, (
            f"text_at(saved version) diverged from the text the replica held "
            f"when the handle was taken ({context}, owner {owner})"
        )
        assert reconstructed == oracle_text_at(document, version), (
            f"text_at(saved version) disagrees with the per-character oracle "
            f"({context}, owner {owner})"
        )
        # The handle resolves on *every* replica (all have converged), not
        # just the one that took it.
        other = sim.replicas[rng.choice(all_names)].document
        assert other.text_at(version) == text, (
            f"saved version resolved differently on another replica ({context})"
        )
        per_replica.setdefault(owner, []).append((version, text))

    # diff between a replica's consecutive saves transforms text to text.
    for owner, snaps in per_replica.items():
        document = sim.replicas[owner].document
        for (v1, t1), (v2, t2) in zip(snaps, snaps[1:]):
            assert apply_ops(t1, document.diff(v1, v2)) == t2, (
                f"diff between saved versions does not transform the saved "
                f"texts into each other ({context}, owner {owner})"
            )

    # --- handle stability: saved Event views never renumber or go stale ----
    for owner, view, saved_id, saved_handle in saved_events:
        graph = sim.replicas[owner].document.oplog.graph
        # The view is still the live singleton for its (current) position;
        # its id and handle never changed, even if the run was split (the
        # left half keeps both) or extended in place.
        assert graph[view.index] is view, (
            f"saved Event view is no longer the singleton at its index ({context})"
        )
        assert view.id == saved_id and view.handle == saved_handle, (
            f"saved Event view changed id or handle ({context}, owner {owner})"
        )
        assert graph.handle_at(view.index) == saved_handle, (
            f"handle_at disagrees with the saved handle ({context})"
        )
        assert graph.index_of_handle(saved_handle) == view.index, (
            f"index_of_handle is not the inverse of handle_at ({context})"
        )
        assert graph.locate(saved_id) == (view.index, 0), (
            f"the saved run's first character moved off its event ({context})"
        )
    for name in all_names:
        graph = sim.replicas[name].document.oplog.graph
        keys = [graph.order_key(graph.handle_at(i)) for i in range(len(graph))]
        assert keys == sorted(keys) and len(set(keys)) == len(keys), (
            f"order labels are not strictly increasing ({context}, {name})"
        )
        if incremental:
            tracker = sim.replicas[name].document.engine.tracker
            assert tracker.cuts() == sorted(
                critical_cut_positions(graph, range(len(graph)))
            ), (
                f"handle-keyed cut tracker disagrees with a from-scratch "
                f"rebuild ({context}, {name})"
            )

    # Saved handles survive a storage round trip of the event graph.
    if saved_versions:
        owner, version, text = saved_versions[0]
        graph_bytes = encode_event_graph(sim.replicas[owner].document.oplog.graph)
        handle_bytes = encode_version(version)
        history = History.over_graph(decode_event_graph(graph_bytes).graph)
        assert history.text_at(decode_version(handle_bytes)) == text, (
            f"saved version did not survive the storage round trip ({context})"
        )

    # --- storage v3 round-trip property ------------------------------------
    # The converged session history must survive the v3 container in every
    # mode: full, uncompressed, pruned, and snapshot-bearing.  Decoding and
    # re-encoding with the same options must reproduce the file byte for
    # byte, and the decoded graph must replay to the oracle-agreed text.
    sample = sim.replicas[rng.choice(all_names)].document
    _assert_v3_round_trip(sample.oplog.graph, expected, context)

    # Selective-column reads: a snapshot-bearing file serves its text from
    # the snapshot column alone (zero events materialised); any file serves
    # it through the lazy fallback.
    with_snapshot = encode_event_graph_v3(
        sample.oplog.graph,
        ContainerOptions(include_snapshot=True, final_text=sample.text),
    )
    lazy = LazyDecodedFile(with_snapshot)
    assert lazy.text == expected and lazy.stats.events_materialised == 0, (
        f"selective text read touched the graph ({context})"
    )
    plain = LazyDecodedFile(encode_event_graph_v3(sample.oplog.graph))
    assert plain.text == expected, (
        f"lazy text fallback diverged from the converged text ({context})"
    )

    # A re-carved copy of the same history (different run boundaries) is a
    # different byte stream but must round-trip just as losslessly.
    recarved_doc = Document("recarve-reader", incremental=incremental)
    recarved_doc.apply_remote_events(
        random_recarve(rng, sample.oplog.export_events())
    )
    assert recarved_doc.text == expected, (
        f"re-carved interop copy diverged before the round trip ({context})"
    )
    _assert_v3_round_trip(recarved_doc.oplog.graph, expected, f"{context}, recarved")


def _assert_v3_round_trip(graph, expected_text: str, context: str) -> None:
    for options in (
        ContainerOptions(),
        ContainerOptions(compress_columns=False),
        ContainerOptions(prune_deleted_content=True),
        ContainerOptions(include_snapshot=True, final_text=expected_text),
    ):
        data = encode_event_graph_v3(graph, options)
        decoded = decode_file(data)
        assert decoded.pruned == options.prune_deleted_content
        assert len(decoded.graph) == len(graph)
        assert decoded.graph.frontier == graph.frontier, (
            f"v3 round trip changed the frontier ({context})"
        )
        re_encoded = encode_event_graph_v3(decoded.graph, options)
        assert re_encoded == data, (
            f"v3 re-encode is not byte-identical ({context}, {options})"
        )
        history = History.over_graph(decoded.graph)
        assert history.text_at(Version.frontier(decoded.graph)) == expected_text, (
            f"v3 round trip changed the replayed text ({context}, {options})"
        )


def test_convergence_fuzz(fuzz_iterations):
    """Mesh sessions, every seed run with the merge engine on and off."""
    for i in range(fuzz_iterations):
        for incremental in (True, False):
            run_session(BASE_SEED + i, incremental=incremental)


def test_convergence_fuzz_star(fuzz_iterations):
    """Star (relay) sessions: all traffic through a forwarding hub, mixed
    with offline toggles and re-carved direct syncs between leaves."""
    for i in range(max(1, fuzz_iterations // 2)):
        for incremental in (True, False):
            run_session(BASE_SEED + 50_000 + i, incremental=incremental, topology="star")


def test_larger_sessions_converge():
    """A few bigger sessions (more replicas, more steps), fixed seeds."""
    for offset in range(3):
        for incremental in (True, False):
            run_session(
                BASE_SEED + 10_000 + offset,
                replicas=4,
                steps=48,
                incremental=incremental,
            )
        run_session(
            BASE_SEED + 20_000 + offset, replicas=4, steps=48, topology="star"
        )
