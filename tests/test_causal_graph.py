"""Unit tests for ancestry queries: happened-before, versions, and diff (§3.2)."""

import pytest

from repro.core.causal_graph import CausalGraph
from repro.core.event_graph import EventGraph
from repro.core.ids import EventId, insert_op


def diamond_graph() -> EventGraph:
    """0 -> (1, 2) -> 3 : a fork followed by a merge."""
    graph = EventGraph()
    graph.add_event(EventId("a", 0), (), insert_op(0, "a"), parents_are_indices=True)
    graph.add_event(EventId("b", 0), (0,), insert_op(1, "b"), parents_are_indices=True)
    graph.add_event(EventId("c", 0), (0,), insert_op(1, "c"), parents_are_indices=True)
    graph.add_event(EventId("a", 1), (1, 2), insert_op(0, "d"), parents_are_indices=True)
    return graph


def chain_graph(length: int) -> EventGraph:
    graph = EventGraph()
    for i in range(length):
        graph.add_local_event("a", insert_op(i, "x"))
    return graph


@pytest.fixture
def diamond() -> CausalGraph:
    return CausalGraph(diamond_graph())


class TestAncestors:
    def test_ancestors_of_root_version(self, diamond):
        assert diamond.ancestors(()) == set()

    def test_ancestors_include_version_members(self, diamond):
        assert diamond.ancestors((1,)) == {0, 1}

    def test_ancestors_of_merge_event(self, diamond):
        assert diamond.ancestors((3,)) == {0, 1, 2, 3}

    def test_events_of_version_alias(self, diamond):
        assert diamond.events_of_version((2,)) == diamond.ancestors((2,))


class TestHappenedBefore:
    def test_parent_happened_before_child(self, diamond):
        assert diamond.happened_before(0, 1)
        assert diamond.happened_before(0, 3)

    def test_child_not_before_parent(self, diamond):
        assert not diamond.happened_before(3, 0)

    def test_concurrent_events(self, diamond):
        assert diamond.concurrent(1, 2)
        assert not diamond.concurrent(0, 1)
        assert not diamond.concurrent(1, 1)

    def test_version_contains(self, diamond):
        assert diamond.version_contains((3,), 0)
        assert diamond.version_contains((1,), 0)
        assert not diamond.version_contains((1,), 2)
        assert not diamond.version_contains((), 0)


class TestVersionAlgebra:
    def test_frontier_of_removes_dominated(self, diamond):
        assert diamond.frontier_of({0, 1, 2}) == (1, 2)
        assert diamond.frontier_of({0, 1, 2, 3}) == (3,)

    def test_advance_version(self, diamond):
        assert diamond.advance_version((0,), 1) == (1,)
        assert diamond.advance_version((1,), 2) == (1, 2)
        assert diamond.advance_version((1, 2), 3) == (3,)

    def test_merge_versions(self, diamond):
        assert diamond.merge_versions((1,), (2,)) == (1, 2)
        assert diamond.merge_versions((3,), (1,)) == (3,)

    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ((1,), (1,), "equal"),
            ((0,), (1,), "before"),
            ((3,), (1,), "after"),
            ((1,), (2,), "concurrent"),
        ],
    )
    def test_compare_versions(self, diamond, a, b, expected):
        assert diamond.compare_versions(a, b) == expected


class TestDiff:
    def test_diff_of_equal_versions_is_empty(self, diamond):
        only_a, only_b = diamond.diff((1,), (1,))
        assert only_a == [] and only_b == []

    def test_diff_of_concurrent_versions(self, diamond):
        only_a, only_b = diamond.diff((1,), (2,))
        assert only_a == [1]
        assert only_b == [2]

    def test_diff_ancestor_descendant(self, diamond):
        only_a, only_b = diamond.diff((0,), (3,))
        assert only_a == []
        assert only_b == [1, 2, 3]

    def test_diff_from_root(self, diamond):
        only_a, only_b = diamond.diff((), (3,))
        assert only_a == []
        assert only_b == [0, 1, 2, 3]

    def test_diff_results_are_sorted_ascending(self, diamond):
        _, only_b = diamond.diff((), (3,))
        assert only_b == sorted(only_b)

    def test_diff_long_chain_stops_at_common_ancestor(self):
        graph = chain_graph(50)
        graph.add_event(EventId("b", 0), (30,), insert_op(0, "y"), parents_are_indices=True)
        causal = CausalGraph(graph)
        only_a, only_b = causal.diff((49,), (50,))
        assert only_a == list(range(31, 50))
        assert only_b == [50]

    def test_events_between(self, diamond):
        assert diamond.events_between((0,), (3,)) == [1, 2, 3]


class TestDiffMatchesBruteForce:
    @pytest.mark.parametrize("seed", range(5))
    def test_against_ancestor_sets(self, seed, small_concurrent_trace):
        import random

        graph = small_concurrent_trace.graph
        causal = CausalGraph(graph)
        rng = random.Random(seed)
        n = len(graph)
        for _ in range(10):
            a = (rng.randrange(n),)
            b = (rng.randrange(n),)
            only_a, only_b = causal.diff(a, b)
            set_a = causal.ancestors(a)
            set_b = causal.ancestors(b)
            assert set(only_a) == set_a - set_b
            assert set(only_b) == set_b - set_a
