"""Tests for the Eg-walker replay engine (§3): correctness and optimisations."""

import itertools

import pytest

from repro.core.causal_graph import CausalGraph
from repro.core.event_graph import EventGraph
from repro.core.ids import EventId, delete_op, insert_op
from repro.core.topo_sort import is_topological_order, sort_branch_aware
from repro.core.walker import EgWalker

WALKER_CONFIGS = [
    {"backend": "tree", "enable_clearing": True},
    {"backend": "tree", "enable_clearing": False},
    {"backend": "list", "enable_clearing": True},
    {"backend": "list", "enable_clearing": False},
]


class TestPaperExamples:
    @pytest.mark.parametrize("config", WALKER_CONFIGS)
    def test_figure_1_and_2(self, figure2_graph, config):
        walker = EgWalker(figure2_graph, **config)
        assert walker.replay_text() == "Hello!"

    @pytest.mark.parametrize("config", WALKER_CONFIGS)
    def test_figure_4(self, figure4_graph, config):
        walker = EgWalker(figure4_graph, **config)
        assert walker.replay_text() == "Hey!"

    def test_figure2_all_replay_orders_agree(self, figure2_graph):
        """Any topologically sorted order yields the same document (Lemma C.8)."""
        graph = figure2_graph
        base_order = list(range(len(graph)))
        expected = EgWalker(graph).replay_text()
        causal = CausalGraph(graph)
        valid_orders = [
            order
            for order in itertools.permutations(base_order)
            if is_topological_order(graph, order)
        ]
        assert len(valid_orders) > 1
        for order in valid_orders:
            walker = EgWalker(graph, enable_clearing=False)
            result = walker.transform(order=order)
            text = _apply_ops(result)
            assert text == expected

    def test_figure4_transformed_ops_shape(self, figure4_graph):
        walker = EgWalker(figure4_graph, enable_clearing=False)
        result = walker.transform()
        # 8 events in, 8 transformed entries out (some may be no-ops).
        assert len(result.transformed) == len(figure4_graph)
        assert result.final_length == 4


def _apply_ops(result) -> str:
    buffer: list[str] = []
    for entry in result.transformed:
        for op in entry.ops:
            if op.is_insert:
                buffer[op.pos : op.pos] = op.content
            else:
                del buffer[op.pos : op.pos + op.length]
    return "".join(buffer)


class TestConcurrentScenarios:
    def build_two_user_graph(self, edits_a, edits_b, base="base "):
        """A graph with a shared sequential base and two concurrent branches."""
        graph = EventGraph()
        for i, char in enumerate(base):
            graph.add_local_event("base", insert_op(i, char))
        fork = graph.frontier
        prev = fork
        for seq, (kind, pos, char) in enumerate(edits_a):
            op = insert_op(pos, char) if kind == "i" else delete_op(pos)
            event = graph.add_event(EventId("alice", seq), prev, op, parents_are_indices=True)
            prev = (event.index,)
        prev = fork
        for seq, (kind, pos, char) in enumerate(edits_b):
            op = insert_op(pos, char) if kind == "i" else delete_op(pos)
            event = graph.add_event(EventId("bob", seq), prev, op, parents_are_indices=True)
            prev = (event.index,)
        return graph

    @pytest.mark.parametrize("config", WALKER_CONFIGS)
    def test_concurrent_edits_at_different_positions(self, config):
        graph = self.build_two_user_graph(
            edits_a=[("i", 0, "A"), ("i", 1, "B")],
            edits_b=[("d", 4, None), ("i", 4, "Z")],
        )
        text = EgWalker(graph, **config).replay_text()
        assert text.startswith("AB")
        assert "Z" in text
        assert len(text) == 5 + 2 + 1 - 1

    @pytest.mark.parametrize("config", WALKER_CONFIGS)
    def test_concurrent_deletes_of_same_char(self, config):
        graph = self.build_two_user_graph(
            edits_a=[("d", 0, None)],
            edits_b=[("d", 0, None)],
        )
        text = EgWalker(graph, **config).replay_text()
        assert text == "ase "

    @pytest.mark.parametrize("config", WALKER_CONFIGS)
    def test_delete_concurrent_with_insert_before_it(self, config):
        graph = self.build_two_user_graph(
            edits_a=[("i", 0, "X")],
            edits_b=[("d", 4, None)],  # delete the space in "base "
        )
        text = EgWalker(graph, **config).replay_text()
        assert text == "Xbase"


class TestTraceEquivalence:
    """All walker configurations agree on every generated trace."""

    @pytest.mark.parametrize(
        "trace_fixture",
        ["small_sequential_trace", "small_concurrent_trace", "small_async_trace"],
    )
    def test_all_configs_agree(self, trace_fixture, request):
        trace = request.getfixturevalue(trace_fixture)
        texts = {
            (cfg["backend"], cfg["enable_clearing"]): EgWalker(trace.graph, **cfg).replay_text()
            for cfg in WALKER_CONFIGS
        }
        assert len(set(texts.values())) == 1

    @pytest.mark.parametrize(
        "trace_fixture",
        ["small_concurrent_trace", "small_async_trace"],
    )
    def test_sort_strategies_agree(self, trace_fixture, request):
        trace = request.getfixturevalue(trace_fixture)
        expected = EgWalker(trace.graph).replay_text()
        for strategy in ("branch_aware", "local", "interleaved"):
            assert EgWalker(trace.graph, sort_strategy=strategy).replay_text() == expected


class TestOptimisations:
    def test_sequential_trace_uses_fast_path(self, small_sequential_trace):
        walker = EgWalker(small_sequential_trace.graph, enable_clearing=True)
        walker.replay_text()
        stats = walker.last_stats
        assert stats.events_fast_path == len(small_sequential_trace.graph)
        assert stats.retreats == 0 and stats.advances == 0

    def test_disabling_clearing_disables_fast_path(self, small_sequential_trace):
        walker = EgWalker(small_sequential_trace.graph, enable_clearing=False)
        walker.replay_text()
        assert walker.last_stats.events_fast_path == 0

    def test_clearing_bounds_peak_records(self, small_async_trace):
        graph = small_async_trace.graph
        with_opt = EgWalker(graph, enable_clearing=True)
        with_opt.replay_text()
        without_opt = EgWalker(graph, enable_clearing=False)
        without_opt.replay_text()
        assert with_opt.last_stats.peak_records <= without_opt.last_stats.peak_records

    def test_stats_counts_every_event(self, small_concurrent_trace):
        walker = EgWalker(small_concurrent_trace.graph)
        walker.replay_text()
        assert walker.last_stats.events_processed == len(small_concurrent_trace.graph)


class TestPartialReplayAndHistory:
    def test_text_at_every_prefix_version_of_linear_history(self):
        graph = EventGraph()
        text = "abcdef"
        for i, char in enumerate(text):
            graph.add_local_event("a", insert_op(i, char))
        walker = EgWalker(graph)
        for i in range(len(text)):
            assert walker.text_at_version((i,)) == text[: i + 1]

    def test_text_at_version_on_branches(self, figure4_graph):
        walker = EgWalker(figure4_graph)
        # Version (1,): just "hi" typed.
        assert walker.text_at_version((1,)) == "hi"
        # Version (3,): the capitalisation branch only.
        assert walker.text_at_version((3,)) == "Hi"
        # Version (6,): the "hey" branch only.
        assert walker.text_at_version((6,)) == "hey"
        # The merge of both branches plus the exclamation mark.
        assert walker.text_at_version((7,)) == "Hey!"

    def test_transform_with_emit_only_filters_output(self, figure2_graph):
        walker = EgWalker(figure2_graph)
        result = walker.transform(emit_only={4, 5})
        assert {entry.event_index for entry in result.transformed} == {4, 5}

    def test_invalid_backend_rejected(self, figure2_graph):
        with pytest.raises(ValueError):
            EgWalker(figure2_graph, backend="hash-table")

    def test_invalid_sort_strategy_rejected(self, figure2_graph):
        with pytest.raises(ValueError):
            EgWalker(figure2_graph, sort_strategy="random")
