"""Unit tests for critical-version detection (§3.5)."""

import pytest

from repro.core.causal_graph import CausalGraph
from repro.core.critical_versions import (
    critical_cut_positions,
    is_critical_version,
    latest_critical_cut_before,
)
from repro.core.event_graph import EventGraph
from repro.core.ids import EventId, insert_op
from repro.core.topo_sort import sort_branch_aware


def linear_graph(n: int) -> EventGraph:
    graph = EventGraph()
    for i in range(n):
        graph.add_local_event("a", insert_op(i, "x"))
    return graph


def fork_merge_graph() -> EventGraph:
    """0 - 1 - (2 | 3) - 4 - 5 : one concurrent bubble in the middle."""
    graph = EventGraph()
    graph.add_event(EventId("a", 0), (), insert_op(0, "a"), parents_are_indices=True)
    graph.add_event(EventId("a", 1), (0,), insert_op(1, "b"), parents_are_indices=True)
    graph.add_event(EventId("a", 2), (1,), insert_op(2, "c"), parents_are_indices=True)
    graph.add_event(EventId("b", 0), (1,), insert_op(2, "d"), parents_are_indices=True)
    graph.add_event(EventId("a", 3), (2, 3), insert_op(4, "e"), parents_are_indices=True)
    graph.add_event(EventId("a", 4), (4,), insert_op(5, "f"), parents_are_indices=True)
    return graph


class TestLinearHistories:
    def test_every_cut_is_critical(self):
        graph = linear_graph(6)
        order = list(range(6))
        assert critical_cut_positions(graph, order) == set(range(6))

    def test_empty_order(self):
        assert critical_cut_positions(EventGraph(), []) == set()

    def test_single_event(self):
        graph = linear_graph(1)
        assert critical_cut_positions(graph, [0]) == {0}


class TestForkMerge:
    def test_cuts_outside_the_bubble_are_critical(self):
        graph = fork_merge_graph()
        order = list(range(len(graph)))
        cuts = critical_cut_positions(graph, order)
        # Positions 0 and 1 precede the fork; 4 is the merge; 5 is the tail.
        assert 0 in cuts
        assert 1 in cuts
        assert 4 in cuts
        assert 5 in cuts

    def test_cuts_inside_the_bubble_are_not_critical(self):
        graph = fork_merge_graph()
        order = list(range(len(graph)))
        cuts = critical_cut_positions(graph, order)
        assert 2 not in cuts
        assert 3 not in cuts

    def test_is_critical_version_wrapper(self):
        graph = fork_merge_graph()
        order = list(range(len(graph)))
        assert is_critical_version(graph, order, 1)
        assert not is_critical_version(graph, order, 2)

    def test_latest_critical_cut_before(self):
        graph = fork_merge_graph()
        order = list(range(len(graph)))
        assert latest_critical_cut_before(graph, order, 4) == 1
        assert latest_critical_cut_before(graph, order, 1) == 0
        assert latest_critical_cut_before(graph, order, 0) is None


class TestDefinitionEquivalence:
    """The linear-scan detection must match the paper's definition exactly."""

    def _brute_force(self, graph, order):
        causal = CausalGraph(graph)
        member = set(order)
        cuts = set()
        for i in range(len(order)):
            prefix = set(order[: i + 1])
            suffix = member - prefix
            ok = True
            for late in suffix:
                # Every prefix event must have happened before every suffix event.
                ancestors = causal.ancestors((late,)) - {late}
                if not prefix <= ancestors:
                    ok = False
                    break
            if ok:
                cuts.add(i)
        return cuts

    @pytest.mark.parametrize("fixture_name", ["small_concurrent_trace", "small_async_trace"])
    def test_against_brute_force_on_traces(self, fixture_name, request):
        trace = request.getfixturevalue(fixture_name)
        graph = trace.graph
        order = sort_branch_aware(graph, range(len(graph)))[:120]
        # Restrict to a prefix of the order so the brute force stays fast; the
        # subset is still a valid "events to replay" set.
        fast = critical_cut_positions(graph, order)
        slow = self._brute_force(graph, order)
        # The linear scan only finds single-event critical versions, so it may
        # be a subset of the brute-force answer, but only where the prefix
        # frontier has more than one head.
        assert fast <= slow
        for position in slow - fast:
            prefix = order[: position + 1]
            causal = CausalGraph(graph)
            assert len(causal.frontier_of(prefix)) > 1

    def test_sequential_trace_is_all_critical(self, small_sequential_trace):
        graph = small_sequential_trace.graph
        order = list(range(len(graph)))
        assert critical_cut_positions(graph, order) == set(range(len(graph)))
