"""Shared fixtures for the test suite.

The fixtures build small editing histories (hand-written and generated) that
are reused across test modules.  Trace sizes are deliberately tiny so the full
suite runs in seconds; the benchmarks exercise the large configurations.
"""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests from a source checkout without installing the
# package (pip's editable install needs the `wheel` package, which offline
# environments may lack).
_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

def pytest_addoption(parser):
    """Options for the randomized convergence fuzzer (test_fuzz_convergence.py)."""
    parser.addoption(
        "--fuzz-iterations",
        action="store",
        type=int,
        default=200,
        help="Number of seeded fuzz sessions to run (deterministic: session i "
        "uses seed BASE_SEED + i). Nightly runs can crank this up.",
    )


@pytest.fixture
def fuzz_iterations(request) -> int:
    return request.config.getoption("--fuzz-iterations")


from repro.core.document import Document  # noqa: E402
from repro.core.event_graph import EventGraph  # noqa: E402
from repro.core.ids import EventId, delete_op, insert_op  # noqa: E402
from repro.traces.generator import (  # noqa: E402
    generate_async,
    generate_concurrent,
    generate_sequential,
)


def build_figure2_graph() -> EventGraph:
    """The event graph of Figure 2: concurrent "l" and "!" insertions into "Helo"."""
    graph = EventGraph()
    graph.add_event(EventId("u1", 0), (), insert_op(0, "H"), parents_are_indices=True)
    graph.add_event(EventId("u1", 1), (0,), insert_op(1, "e"), parents_are_indices=True)
    graph.add_event(EventId("u1", 2), (1,), insert_op(2, "l"), parents_are_indices=True)
    graph.add_event(EventId("u1", 3), (2,), insert_op(3, "o"), parents_are_indices=True)
    graph.add_event(EventId("u1", 4), (3,), insert_op(3, "l"), parents_are_indices=True)
    graph.add_event(EventId("u2", 0), (3,), insert_op(4, "!"), parents_are_indices=True)
    return graph


def build_figure4_graph() -> EventGraph:
    """The event graph of Figure 4: "hi" -> concurrent "hey" / "Hi" -> "Hey!"."""
    graph = EventGraph()
    graph.add_event(EventId("a", 0), (), insert_op(0, "h"), parents_are_indices=True)
    graph.add_event(EventId("a", 1), (0,), insert_op(1, "i"), parents_are_indices=True)
    # Branch 1 (user b): capitalise the "h".
    graph.add_event(EventId("b", 0), (1,), insert_op(0, "H"), parents_are_indices=True)
    graph.add_event(EventId("b", 1), (2,), delete_op(1), parents_are_indices=True)
    # Branch 2 (user a): "hi" -> "hey".
    graph.add_event(EventId("a", 2), (1,), delete_op(1), parents_are_indices=True)
    graph.add_event(EventId("a", 3), (4,), insert_op(1, "e"), parents_are_indices=True)
    graph.add_event(EventId("a", 4), (5,), insert_op(2, "y"), parents_are_indices=True)
    # Merge of both branches, then "!" appended to "Hey".
    graph.add_event(EventId("a", 5), (3, 6), insert_op(3, "!"), parents_are_indices=True)
    return graph


@pytest.fixture
def figure2_graph() -> EventGraph:
    return build_figure2_graph()


@pytest.fixture
def figure4_graph() -> EventGraph:
    return build_figure4_graph()


@pytest.fixture(scope="session")
def small_sequential_trace():
    return generate_sequential("seq-small", target_events=300, authors=2, seed=11)


@pytest.fixture(scope="session")
def small_concurrent_trace():
    return generate_concurrent("conc-small", target_events=300, seed=12)


@pytest.fixture(scope="session")
def small_async_trace():
    return generate_async(
        "async-small",
        target_events=350,
        seed=13,
        concurrent_branches=3,
        events_per_branch=60,
        authors=4,
    )


@pytest.fixture(scope="session")
def all_small_traces(small_sequential_trace, small_concurrent_trace, small_async_trace):
    return {
        "sequential": small_sequential_trace,
        "concurrent": small_concurrent_trace,
        "asynchronous": small_async_trace,
    }


def make_two_branch_documents() -> tuple[Document, Document]:
    """Two replicas that share a prefix and then diverge (used by several tests)."""
    alice = Document("alice")
    alice.insert(0, "shared base text. ")
    bob = Document("bob")
    bob.merge(alice)
    alice.insert(len(alice.text), "alice adds this at the end. ")
    alice.delete(0, 7)
    bob.insert(0, "bob prepends this. ")
    bob.delete(len(bob.text) - 6, 5)
    return alice, bob


@pytest.fixture
def two_branch_documents() -> tuple[Document, Document]:
    return make_two_branch_documents()
