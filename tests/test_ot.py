"""Tests for the OT baseline: IT transformation functions and the TTF replay."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.event_graph import EventGraph
from repro.core.ids import EventId, delete_op, insert_op
from repro.core.walker import EgWalker
from repro.ot import OTDocument, OtOp, replay_ot, transform, transform_against_many


def ot_insert(pos, char, agent="a"):
    return OtOp(insert_op(pos, char), agent)


def ot_delete(pos, agent="a"):
    return OtOp(delete_op(pos), agent)


class TestTransformFunctions:
    def test_insert_insert_independent_positions(self):
        assert transform(ot_insert(1, "x"), ot_insert(5, "y")).op.pos == 1
        assert transform(ot_insert(5, "x"), ot_insert(1, "y")).op.pos == 6

    def test_insert_insert_tie_break_by_agent(self):
        a = ot_insert(3, "x", agent="a")
        b = ot_insert(3, "y", agent="b")
        assert transform(a, b).op.pos == 3
        assert transform(b, a).op.pos == 4

    def test_insert_against_delete(self):
        assert transform(ot_insert(2, "x"), ot_delete(5)).op.pos == 2
        assert transform(ot_insert(5, "x"), ot_delete(2)).op.pos == 4
        assert transform(ot_insert(2, "x"), ot_delete(2)).op.pos == 2

    def test_delete_against_insert(self):
        assert transform(ot_delete(2), ot_insert(5, "x")).op.pos == 2
        assert transform(ot_delete(5), ot_insert(2, "x")).op.pos == 6
        assert transform(ot_delete(2), ot_insert(2, "x")).op.pos == 3

    def test_delete_delete_same_position_becomes_noop(self):
        result = transform(ot_delete(4), ot_delete(4))
        assert result.is_noop

    def test_delete_delete_different_positions(self):
        assert transform(ot_delete(2), ot_delete(5)).op.pos == 2
        assert transform(ot_delete(5), ot_delete(2)).op.pos == 4

    def test_noop_propagates(self):
        noop = OtOp(None, "a")
        assert transform(noop, ot_insert(0, "x")).is_noop
        assert transform(ot_insert(0, "x"), noop).op.pos == 0

    def test_transform_against_many(self):
        op = ot_insert(5, "x")
        others = [ot_insert(0, "a", "b"), ot_delete(1, "b"), ot_insert(9, "z", "b")]
        result = transform_against_many(op, others)
        assert result.op.pos == 5  # +1 for the insert at 0, -1 for the delete at 1

    @given(
        p1=st.integers(min_value=0, max_value=20),
        p2=st.integers(min_value=0, max_value=20),
        kind1=st.sampled_from(["i", "d"]),
        kind2=st.sampled_from(["i", "d"]),
    )
    @settings(max_examples=300, deadline=None)
    def test_tp1_convergence_property(self, p1, p2, kind1, kind2):
        """TP1: applying (a, T(b,a)) and (b, T(a,b)) to the same document converges."""
        doc = "abcdefghijklmnopqrst"
        op_a = ot_insert(min(p1, len(doc)), "X", "a") if kind1 == "i" else ot_delete(min(p1, len(doc) - 1), "a")
        op_b = ot_insert(min(p2, len(doc)), "Y", "b") if kind2 == "i" else ot_delete(min(p2, len(doc) - 1), "b")

        def apply(text, ot_op):
            if ot_op.is_noop:
                return text
            return ot_op.op.apply_to(text)

        left = apply(apply(doc, op_a), transform(op_b, op_a))
        right = apply(apply(doc, op_b), transform(op_a, op_b))
        assert left == right


class TestReplay:
    def test_sequential_graph_needs_no_slow_path(self, small_sequential_trace):
        result = replay_ot(small_sequential_trace.graph)
        assert result.concurrent_events == 0
        assert result.text == EgWalker(small_sequential_trace.graph).replay_text()

    def test_figure2(self, figure2_graph):
        assert replay_ot(figure2_graph).text == "Hello!"

    def test_figure4(self, figure4_graph):
        assert replay_ot(figure4_graph).text == "Hey!"

    def test_two_branch_merge_matches_walker(self):
        graph = EventGraph()
        for i, char in enumerate("merge basis "):
            graph.add_local_event("base", insert_op(i, char))
        fork = graph.frontier
        prev = fork
        for seq, char in enumerate("AAA"):
            event = graph.add_event(
                EventId("alice", seq), prev, insert_op(0 + seq, char), parents_are_indices=True
            )
            prev = (event.index,)
        prev = fork
        for seq in range(3):
            event = graph.add_event(
                EventId("bob", seq), prev, delete_op(4), parents_are_indices=True
            )
            prev = (event.index,)
        assert replay_ot(graph).text == EgWalker(graph).replay_text()

    def test_surviving_characters_match_walker_on_concurrent_trace(
        self, small_concurrent_trace
    ):
        """OT and Eg-walker may interleave concurrent runs differently, but on
        real-time two-user traces they must agree on *which* characters survive."""
        trace = small_concurrent_trace
        ot_text = replay_ot(trace.graph).text
        eg_text = EgWalker(trace.graph).replay_text()
        assert len(ot_text) == len(eg_text)
        assert sorted(ot_text) == sorted(eg_text)

    def test_async_trace_documents_have_equal_length(self, small_async_trace):
        """On long-running branches the two algorithms may resolve an index
        against differently-ordered concurrent runs, so individual deletions can
        target different characters; the documents still have the same shape.
        (This is the well-known intention-preservation gap between classic OT
        and CRDT interleaving rules, not a convergence bug — each algorithm is
        internally consistent, see §5 of the paper.)"""
        trace = small_async_trace
        ot_text = replay_ot(trace.graph).text
        eg_text = EgWalker(trace.graph).replay_text()
        assert len(ot_text) == len(eg_text)
        differing = sum(1 for a, b in zip(sorted(ot_text), sorted(eg_text)) if a != b)
        assert differing <= max(5, len(eg_text) // 20)

    def test_concurrent_traces_report_quadratic_work(self, small_concurrent_trace):
        result = replay_ot(small_concurrent_trace.graph)
        assert result.concurrent_events > 0
        assert result.work_units > len(small_concurrent_trace.graph)

    def test_document_wrapper(self, figure2_graph):
        document = OTDocument()
        assert document.merge_event_graph(figure2_graph) == "Hello!"
        assert document.steady_state_objects() == 1


class TestWorkScaling:
    def test_ot_work_grows_quadratically_with_branch_length(self):
        """Merging two branches of k events each costs Θ(k²) work units (§1, §3.7)."""

        def two_branches(k: int) -> EventGraph:
            graph = EventGraph()
            graph.add_local_event("base", insert_op(0, "x"))
            fork = graph.frontier
            for agent in ("alice", "bob"):
                prev = fork
                for seq in range(k):
                    event = graph.add_event(
                        EventId(agent, seq), prev, insert_op(1 + seq, "y"),
                        parents_are_indices=True,
                    )
                    prev = (event.index,)
            return graph

        small = replay_ot(two_branches(30)).work_units
        large = replay_ot(two_branches(120)).work_units
        # 4x the events should cost roughly 16x the work; allow generous slack.
        assert large > small * 8
