"""Tests for the rope / gap buffer text substrates."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.rope import GapBuffer, Rope
from repro.rope.rope import CHUNK_SIZE


class TestRopeBasics:
    def test_empty(self):
        rope = Rope()
        assert len(rope) == 0
        assert str(rope) == ""

    def test_construct_from_string(self):
        rope = Rope("hello world")
        assert str(rope) == "hello world"
        assert len(rope) == 11

    def test_insert_at_start_middle_end(self):
        rope = Rope("bd")
        rope.insert(0, "a")
        rope.insert(2, "c")
        rope.insert(4, "e")
        assert str(rope) == "abcde"

    def test_delete_returns_removed_text(self):
        rope = Rope("hello world")
        assert rope.delete(5, 6) == " world"
        assert str(rope) == "hello"

    def test_char_at(self):
        rope = Rope("abc")
        assert [rope.char_at(i) for i in range(3)] == ["a", "b", "c"]

    def test_char_at_out_of_range(self):
        with pytest.raises(IndexError):
            Rope("ab").char_at(2)

    def test_slice(self):
        rope = Rope("hello world")
        assert rope.slice(6, 11) == "world"
        assert rope.slice(0, 0) == ""

    def test_slice_out_of_range(self):
        with pytest.raises(IndexError):
            Rope("abc").slice(1, 9)

    def test_insert_out_of_range(self):
        with pytest.raises(IndexError):
            Rope("abc").insert(5, "x")

    def test_delete_out_of_range(self):
        with pytest.raises(IndexError):
            Rope("abc").delete(2, 5)

    def test_equality_with_strings_and_ropes(self):
        assert Rope("abc") == "abc"
        assert Rope("abc") == Rope("abc")
        assert Rope("abc") != "abd"

    def test_iteration(self):
        assert list(Rope("abc")) == ["a", "b", "c"]

    def test_large_text_splits_into_chunks(self):
        text = "x" * (CHUNK_SIZE * 3 + 17)
        rope = Rope(text)
        assert rope.chunk_count() >= 3
        assert str(rope) == text

    def test_repeated_inserts_split_oversized_chunks(self):
        rope = Rope()
        for _ in range(5):
            rope.insert(len(rope) // 2, "y" * CHUNK_SIZE)
        assert rope.chunk_count() > 1
        assert len(rope) == 5 * CHUNK_SIZE


class TestGapBuffer:
    def test_basic_editing(self):
        buf = GapBuffer("hello")
        buf.insert(5, " world")
        assert str(buf) == "hello world"
        assert buf.delete(0, 6) == "hello "
        assert str(buf) == "world"

    def test_char_at(self):
        buf = GapBuffer("abc")
        buf.insert(1, "X")
        assert [buf.char_at(i) for i in range(4)] == ["a", "X", "b", "c"]

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            GapBuffer("ab").delete(1, 5)
        with pytest.raises(IndexError):
            GapBuffer("ab").insert(5, "x")


class TestDifferentialAgainstString:
    @pytest.mark.parametrize("cls", [Rope, GapBuffer])
    @pytest.mark.parametrize("seed", range(4))
    def test_random_edit_sequences(self, cls, seed):
        rng = random.Random(seed)
        reference = ""
        buffer = cls("")
        for _ in range(400):
            if not reference or rng.random() < 0.65:
                pos = rng.randint(0, len(reference))
                text = rng.choice(["a", "bc", "def", "x" * 50])
                reference = reference[:pos] + text + reference[pos:]
                buffer.insert(pos, text)
            else:
                pos = rng.randrange(len(reference))
                length = min(rng.randint(1, 5), len(reference) - pos)
                reference = reference[:pos] + reference[pos + length :]
                buffer.delete(pos, length)
            assert len(buffer) == len(reference)
        assert str(buffer) == reference


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=10_000), st.text(max_size=8), st.booleans()),
        max_size=60,
    )
)
@settings(max_examples=50, deadline=None)
def test_rope_matches_string_semantics(operations):
    """Property: a Rope behaves exactly like an immutable Python string."""
    reference = ""
    rope = Rope()
    for pos_seed, text, is_delete in operations:
        if is_delete and reference:
            pos = pos_seed % len(reference)
            length = 1 + pos_seed % 3
            length = min(length, len(reference) - pos)
            reference = reference[:pos] + reference[pos + length :]
            rope.delete(pos, length)
        elif text:
            pos = pos_seed % (len(reference) + 1)
            reference = reference[:pos] + text + reference[pos:]
            rope.insert(pos, text)
    assert str(rope) == reference
