"""Tests for the replication substrate: causal broadcast and the network simulator."""

import random

import pytest

from repro.core.ids import EventId, insert_op
from repro.core.oplog import RemoteEvent
from repro.network import CausalBuffer, NetworkSimulator, full_mesh, star


def remote_event(agent, seq, parents, pos, char):
    return RemoteEvent(
        id=EventId(agent, seq),
        parents=tuple(parents),
        op=insert_op(pos, char),
    )


class TestCausalBuffer:
    def test_in_order_delivery(self):
        delivered = []
        buffer = CausalBuffer(delivered.append)
        e1 = remote_event("a", 0, [], 0, "x")
        e2 = remote_event("a", 1, [e1.id], 1, "y")
        assert buffer.receive(e1) == 1
        assert buffer.receive(e2) == 1
        assert [e.id for e in delivered] == [e1.id, e2.id]

    def test_out_of_order_delivery_is_held_back(self):
        delivered = []
        buffer = CausalBuffer(delivered.append)
        e1 = remote_event("a", 0, [], 0, "x")
        e2 = remote_event("a", 1, [e1.id], 1, "y")
        e3 = remote_event("a", 2, [e2.id], 2, "z")
        assert buffer.receive(e3) == 0
        assert buffer.receive(e2) == 0
        assert buffer.pending_count == 2
        # The missing root arrives: everything cascades out in causal order.
        assert buffer.receive(e1) == 3
        assert [e.id.seq for e in delivered] == [0, 1, 2]
        assert buffer.pending_count == 0

    def test_duplicates_are_dropped(self):
        delivered = []
        buffer = CausalBuffer(delivered.append)
        e1 = remote_event("a", 0, [], 0, "x")
        buffer.receive(e1)
        buffer.receive(e1)
        assert len(delivered) == 1
        assert buffer.stats.duplicates == 1

    def test_mark_known_suppresses_local_events(self):
        delivered = []
        buffer = CausalBuffer(delivered.append)
        e1 = remote_event("a", 0, [], 0, "x")
        buffer.mark_known([e1.id])
        e2 = remote_event("b", 0, [e1.id], 1, "y")
        assert buffer.receive(e2) == 1
        assert buffer.receive(e1) == 0  # already known

    def test_stats_track_high_water_mark(self):
        buffer = CausalBuffer(lambda event: None)
        e1 = remote_event("a", 0, [], 0, "x")
        e2 = remote_event("a", 1, [e1.id], 1, "y")
        e3 = remote_event("a", 2, [e2.id], 2, "z")
        buffer.receive(e3)
        buffer.receive(e2)
        assert buffer.stats.buffered_high_water == 2


class TestSpanAwareBuffer:
    """The buffer reasons about character spans, so run carving is irrelevant."""

    def run_event(self, agent, seq, parents, pos, content):
        return RemoteEvent(
            id=EventId(agent, seq), parents=tuple(parents), op=insert_op(pos, content)
        )

    def test_recarved_redelivery_is_duplicate(self):
        delivered = []
        buffer = CausalBuffer(delivered.append)
        buffer.receive(self.run_event("a", 0, [], 0, "abcd"))
        # The same characters again, carved as two runs: both are duplicates.
        assert buffer.receive(self.run_event("a", 0, [], 0, "ab")) == 0
        assert buffer.receive(self.run_event("a", 2, [EventId("a", 1)], 2, "cd")) == 0
        assert buffer.stats.duplicates == 2
        assert len(delivered) == 1

    def test_partially_known_run_passes_through(self):
        delivered = []
        buffer = CausalBuffer(delivered.append)
        buffer.receive(self.run_event("a", 0, [], 0, "ab"))
        # A coarser carving that extends the known prefix is not a duplicate:
        # the graph's split-on-ingest keeps only the new characters.
        assert buffer.receive(self.run_event("a", 0, [], 0, "abcd")) == 1
        assert len(delivered) == 2

    def test_mid_run_parent_reference_counts_as_known(self):
        delivered = []
        buffer = CausalBuffer(delivered.append)
        buffer.receive(self.run_event("a", 0, [], 0, "abcd"))
        # A peer that saw only "ab" depends on the mid-run character (a, 1).
        assert buffer.receive(self.run_event("b", 0, [EventId("a", 1)], 2, "x")) == 1

    def test_coarser_carving_replaces_buffered_finer_carving(self):
        """A coarser run arriving while a finer carving of the same run is
        buffered must not be dropped as a duplicate — its extra characters
        would be lost."""
        delivered = []
        buffer = CausalBuffer(delivered.append)
        parent = EventId("p", 0)
        assert buffer.receive(self.run_event("a", 0, [parent], 0, "ab")) == 0
        assert buffer.receive(self.run_event("a", 0, [parent], 0, "abcd")) == 0
        assert buffer.pending_count == 1
        # The reverse direction (finer after coarser) *is* a duplicate.
        assert buffer.receive(self.run_event("a", 0, [parent], 0, "ab")) == 0
        assert buffer.stats.duplicates == 1
        buffer.receive(self.run_event("p", 0, [], 0, "!"))
        assert [e.op.content for e in delivered] == ["!", "abcd"]

    def test_mark_known_spans_flushes_waiting_events(self):
        delivered = []
        buffer = CausalBuffer(delivered.append)
        held = self.run_event("b", 0, [EventId("a", 3)], 4, "x")
        assert buffer.receive(held) == 0
        assert buffer.pending_count == 1
        # The parent span arrives out of band (e.g. a direct graph sync).
        assert buffer.mark_known_spans([(EventId("a", 0), 4)]) == 1
        assert buffer.pending_count == 0
        assert [e.id for e in delivered] == [held.id]


class TestNetworkSimulator:
    def test_full_mesh_real_time_session_converges(self):
        sim = full_mesh(["a", "b", "c"], latency=0.01)
        rng = random.Random(1)
        for _ in range(120):
            replica = sim.replicas[rng.choice(["a", "b", "c"])]
            if len(replica.text) == 0 or rng.random() < 0.7:
                replica.insert(rng.randint(0, len(replica.text)), rng.choice("abc"))
            else:
                replica.delete(rng.randrange(len(replica.text)))
            sim.advance(0.004)
        sim.run_until_quiescent()
        assert sim.converged()
        texts = set(sim.all_texts().values())
        assert len(texts) == 1 and len(texts.pop()) > 0

    def test_star_topology_relays_through_hub(self):
        sim = star("server", ["u1", "u2", "u3"], latency=0.01)
        sim.replicas["u1"].insert(0, "hello from u1 ")
        sim.replicas["u2"].insert(0, "hello from u2 ")
        sim.run_until_quiescent()
        assert sim.converged()
        assert "hello from u1" in sim.replicas["u3"].text
        assert "hello from u2" in sim.replicas["u3"].text

    def test_offline_editing_and_reconnect(self):
        sim = full_mesh(["alice", "bob"], latency=0.01)
        alice = sim.replicas["alice"]
        bob = sim.replicas["bob"]
        alice.insert(0, "base ")
        sim.run_until_quiescent()
        bob.set_online(False)
        bob.insert(len(bob.text), "offline work by bob. ")
        alice.insert(len(alice.text), "online work by alice. ")
        sim.run_until_quiescent()
        # Neither side has seen the other's edits while bob is offline.
        assert "offline work" not in alice.text
        assert "online work" not in bob.text
        bob.set_online(True)
        sim.run_until_quiescent()
        assert alice.text == bob.text
        assert "offline work by bob." in alice.text
        assert "online work by alice." in alice.text

    def test_partition_and_heal(self):
        sim = full_mesh(["x", "y"], latency=0.01)
        sim.replicas["x"].insert(0, "shared ")
        sim.run_until_quiescent()
        sim.partition("x", "y")
        sim.replicas["x"].insert(len(sim.replicas["x"].text), "from x ")
        sim.replicas["y"].insert(len(sim.replicas["y"].text), "from y ")
        sim.run_until_quiescent()
        assert not sim.converged()
        sim.heal("x", "y")
        sim.run_until_quiescent()
        assert sim.converged()
        assert "from x" in sim.replicas["y"].text
        assert "from y" in sim.replicas["x"].text

    def test_duplicate_replica_name_rejected(self):
        sim = NetworkSimulator()
        sim.add_replica("a")
        with pytest.raises(ValueError):
            sim.add_replica("a")

    def test_message_counters(self):
        sim = full_mesh(["a", "b"], latency=0.01)
        sim.replicas["a"].insert(0, "hi")
        sim.run_until_quiescent()
        # The whole insert run travels as a single event message.
        assert sim.messages_sent == 1
        assert sim.messages_delivered == 1


class TestBatchedDelivery:
    def test_buffer_batches_cascades_into_one_call(self):
        batches = []
        buffer = CausalBuffer(deliver_batch=batches.append)
        e1 = RemoteEvent(EventId("a", 0), (), insert_op(0, "x"))
        e2 = RemoteEvent(EventId("a", 1), (EventId("a", 0),), insert_op(1, "y"))
        e3 = RemoteEvent(EventId("a", 2), (EventId("a", 1),), insert_op(2, "z"))
        assert buffer.receive(e3) == 0
        assert buffer.receive(e2) == 0
        # e1 unblocks the whole chain: one batch carries all three, in order.
        assert buffer.receive(e1) == 3
        assert len(batches) == 1
        assert [e.id.seq for e in batches[0]] == [0, 1, 2]
        assert buffer.stats.batches == 1

    def test_receive_batch_is_one_dispatch(self):
        batches = []
        buffer = CausalBuffer(deliver_batch=batches.append)
        events = [
            RemoteEvent(EventId("a", 0), (), insert_op(0, "x")),
            RemoteEvent(EventId("b", 0), (EventId("a", 0),), insert_op(1, "y")),
            RemoteEvent(EventId("c", 0), (EventId("b", 0),), insert_op(2, "z")),
        ]
        assert buffer.receive_batch(events) == 3
        assert len(batches) == 1 and buffer.stats.batches == 1

    def test_exactly_one_callback_required(self):
        with pytest.raises(ValueError):
            CausalBuffer()
        with pytest.raises(ValueError):
            CausalBuffer(lambda e: None, deliver_batch=lambda b: None)

    def test_hub_fan_in_pays_one_integrate_per_tick(self):
        """Relay-hub amortisation: many leaves editing in the same latency
        window must cost the hub one merge per advance() tick, not one per
        event (the PR 3 leftover this batching exists for)."""
        leaves = [f"u{i}" for i in range(6)]
        sim = star("hub", leaves, latency=0.01)
        hub = sim.replicas["hub"]
        for round_no in range(5):
            for i, leaf in enumerate(leaves):
                replica = sim.replicas[leaf]
                replica.insert(len(replica.text), f"{leaf}r{round_no} ")
            sim.advance(0.05)  # every leaf's event reaches the hub this tick
        sim.run_until_quiescent()
        assert sim.converged()
        stats = hub.document.merge_stats
        # 30 events arrived at the hub; without batching that is >= 30 merges.
        assert stats.events_integrated >= 30
        assert stats.merges <= 10
        assert hub.buffer.buffer.stats.batches == hub.document.merge_stats.merges


class TestReconnectReplayDedup:
    """A reconnecting peer replays spans the receiver may already have; every
    fully-covered event must be a clean no-op (``receive`` returns 0, nothing
    is re-dispatched, nothing leaks into the pending buffer)."""

    def run_event(self, agent, seq, parents, pos, content):
        return RemoteEvent(
            id=EventId(agent, seq), parents=tuple(parents), op=insert_op(pos, content)
        )

    def test_covered_receive_is_clean_noop(self):
        delivered = []
        buffer = CausalBuffer(delivered.append)
        event = self.run_event("a", 0, [], 0, "hello")
        assert buffer.receive(event) == 1
        assert buffer.receive(event) == 0
        assert len(delivered) == 1
        assert buffer.stats.duplicates == 1
        assert buffer.pending_count == 0

    def test_disconnect_replay_overlapping_batch(self):
        """Disconnect, miss some spans, then receive a replayed batch that
        overlaps what was already delivered: only the missed tail comes out."""
        delivered = []
        buffer = CausalBuffer(deliver_batch=delivered.extend)
        e1 = self.run_event("a", 0, [], 0, "abc")
        e2 = self.run_event("b", 0, [EventId("a", 2)], 3, "xy")
        # Seen before the disconnect.
        assert buffer.receive_batch([e1, e2]) == 2
        # Missed while offline, then replayed together with the old spans
        # (the sender resends everything after the client's last version).
        e3 = self.run_event("a", 3, [EventId("b", 1)], 5, "de")
        assert buffer.receive_batch([e1, e2, e3]) == 1
        assert [e.id for e in delivered] == [e1.id, e2.id, e3.id]
        assert buffer.stats.duplicates == 2
        assert buffer.pending_count == 0

    def test_reconnect_seeded_from_known_spans(self):
        """A fresh buffer (new connection) seeded with the replica's known
        spans treats the replayed overlap exactly like the old buffer did."""
        delivered = []
        buffer = CausalBuffer(delivered.append)
        # The replica already holds "abc" + "xy" from before the reconnect.
        buffer.mark_known_spans([(EventId("a", 0), 3), (EventId("b", 0), 2)])
        replay = [
            self.run_event("a", 0, [], 0, "abc"),
            self.run_event("b", 0, [EventId("a", 2)], 3, "xy"),
            self.run_event("a", 3, [EventId("b", 1)], 5, "de"),
        ]
        assert sum(buffer.receive(e) for e in replay) == 1
        assert [e.id for e in delivered] == [EventId("a", 3)]
        assert buffer.stats.duplicates == 2
        assert buffer.pending_count == 0

    def test_recarved_overlap_is_still_duplicate(self):
        """The replayed batch may carve the same characters into different
        runs (sender-side coalescing after the reconnect): coverage is by
        character span, so every re-carving of known spans is a no-op."""
        delivered = []
        buffer = CausalBuffer(delivered.append)
        buffer.receive(self.run_event("a", 0, [], 0, "ab"))
        buffer.receive(self.run_event("a", 2, [EventId("a", 1)], 2, "cd"))
        # Replayed as one coalesced run: fully covered by the two finer runs.
        assert buffer.receive(self.run_event("a", 0, [], 0, "abcd")) == 0
        # Replayed as a mid-run suffix: also fully covered.
        assert buffer.receive(self.run_event("a", 1, [EventId("a", 0)], 1, "bcd")) == 0
        assert buffer.stats.duplicates == 2
        assert len(delivered) == 2
        assert buffer.pending_count == 0

    def test_recarved_overlap_with_new_tail_passes_once(self):
        delivered = []
        buffer = CausalBuffer(delivered.append)
        buffer.receive(self.run_event("a", 0, [], 0, "abcd"))
        # Replay extends the run: only the tail is new, delivered exactly once.
        extended = self.run_event("a", 0, [], 0, "abcdef")
        assert buffer.receive(extended) == 1
        assert buffer.receive(extended) == 0
        assert len(delivered) == 2
        assert buffer.stats.duplicates == 1

    def test_mark_known_flushes_waiting_events(self):
        """``mark_known`` must flush events that were only waiting on the
        marked ids, like ``mark_known_spans`` does — otherwise a session
        seeded after the events arrived parks them forever."""
        delivered = []
        buffer = CausalBuffer(delivered.append)
        held = self.run_event("b", 0, [EventId("a", 1)], 2, "z")
        assert buffer.receive(held) == 0
        assert buffer.pending_count == 1
        assert buffer.mark_known([EventId("a", 0), EventId("a", 1)]) == 1
        assert [e.id for e in delivered] == [held.id]
        assert buffer.pending_count == 0

    def test_duplicate_of_pending_event_stays_single(self):
        """A replayed copy of an event that is still buffered (parent missing
        at both arrivals) is delivered exactly once when the parent lands."""
        delivered = []
        buffer = CausalBuffer(delivered.append)
        parent = self.run_event("p", 0, [], 0, "!")
        child = self.run_event("a", 0, [parent.id], 1, "qq")
        assert buffer.receive(child) == 0
        assert buffer.receive(child) == 0  # replayed while still pending
        assert buffer.pending_count == 1
        assert buffer.receive(parent) == 2
        assert [e.id for e in delivered] == [parent.id, child.id]
        assert buffer.stats.duplicates == 1
        assert buffer.pending_count == 0
