"""Regression tests for the deprecated index-based API shims.

The public API moved to id-based :class:`repro.history.Version` handles; the
old entry points survive as thin forwarding shims.  Each shim must (a) raise a
``DeprecationWarning`` and (b) return *exactly* what the Version-handle API
returns — a shim that silently drifts from the canonical path is worse than
no shim at all.
"""

import warnings

import pytest

from repro.core.document import Document
from repro.history import Version


def two_branch_document():
    """A document whose frontier has two heads (merged concurrent edits), so
    version ordering/canonicalisation actually matters."""
    a = Document("a")
    b = Document("b")
    a.insert(0, "base ")
    b.apply_remote_events(a.events_since(()))
    a.insert(5, "left")
    b.insert(5, "right")
    a.apply_remote_events(b.events_since(a.version()))
    b.apply_remote_events(a.events_since(b.version()))
    assert a.text == b.text
    return a


def assert_deprecated(callable_, *args):
    """Call a shim, assert it warns, return its value."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        value = callable_(*args)
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    ), f"{callable_} did not raise DeprecationWarning"
    return value


class TestDocumentShims:
    def test_remote_version_matches_version_ids(self):
        doc = two_branch_document()
        ids = assert_deprecated(doc.remote_version)
        assert ids == doc.version().ids
        # Canonical form: sorted and duplicate-free, like the handle.
        assert ids == tuple(sorted(set(ids)))

    def test_text_at_remote_matches_text_at_version(self):
        doc = two_branch_document()
        for handle in doc.versions():
            via_shim = assert_deprecated(doc.text_at_remote, handle.ids)
            assert via_shim == doc.text_at(handle)
        # The full frontier too (two heads).
        assert assert_deprecated(doc.text_at_remote, doc.version().ids) == doc.text

    def test_text_at_with_index_tuple_matches_handle(self):
        doc = Document("solo")
        doc.insert(0, "one")
        doc.insert(3, " two")
        frontier = doc.local_version
        via_shim = assert_deprecated(doc.text_at, tuple(frontier))
        assert via_shim == doc.text_at(doc.version()) == doc.text

    def test_history_versions_parity_with_versions(self):
        doc = two_branch_document()
        index_versions = assert_deprecated(doc.history_versions)
        handles = doc.versions()
        assert len(index_versions) == len(handles)
        for index_version, handle in zip(index_versions, handles):
            assert assert_deprecated(doc.text_at, index_version) == doc.text_at(
                handle
            )


class TestOpLogShims:
    def test_version_property_forwards_to_local_version(self):
        doc = two_branch_document()
        value = assert_deprecated(lambda: doc.oplog.version)
        assert value == doc.oplog.local_version

    def test_version_property_tracks_graph_mutation(self):
        doc = Document("solo")
        doc.insert(0, "x")
        first = assert_deprecated(lambda: doc.oplog.version)
        assert first == doc.oplog.local_version
        doc.insert(1, "y")
        second = assert_deprecated(lambda: doc.oplog.version)
        assert second == doc.oplog.local_version


class TestShimWarningsAreClean:
    def test_canonical_apis_do_not_warn(self):
        doc = two_branch_document()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            doc.version()
            doc.versions()
            doc.text_at(doc.version())
            doc.text_at(Version(doc.version().ids))
            _ = doc.oplog.local_version
