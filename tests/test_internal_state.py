"""Unit tests for the internal CRDT state: apply / retreat / advance (§3.2–3.3)."""

import pytest

from repro.core.ids import EventId
from repro.core.internal_state import DeleteSegment, InternalState
from repro.core.order_statistic_tree import TreeSequence
from repro.core.records import INSERTED, NOT_YET_INSERTED, CrdtRecord
from repro.core.sequence import ListSequence


def make_state(backend: str, placeholder: int = 0) -> InternalState:
    if backend == "tree":
        return InternalState(TreeSequence(placeholder))
    return InternalState(ListSequence(placeholder))


BACKENDS = ["list", "tree"]


class TestApplyInsert:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sequential_inserts(self, backend):
        state = make_state(backend)
        for i, char in enumerate("hello"):
            effect_pos = state.apply_insert(EventId("a", i), i)
            assert effect_pos == i
        assert state.prepare_length() == 5
        assert state.effect_length() == 5

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_insert_in_middle_reports_effect_position(self, backend):
        state = make_state(backend)
        state.apply_insert(EventId("a", 0), 0)
        state.apply_insert(EventId("a", 1), 1)
        effect_pos = state.apply_insert(EventId("a", 2), 1)
        assert effect_pos == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_records_registered_in_id_index(self, backend):
        state = make_state(backend)
        state.apply_insert(EventId("a", 0), 0)
        record = state.record_for(EventId("a", 0))
        assert isinstance(record, CrdtRecord)
        assert record.prepare_state == INSERTED
        assert not record.ever_deleted

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_insert_run_creates_one_record(self, backend):
        state = make_state(backend)
        effect_pos = state.apply_insert(EventId("a", 0), 0, 5)
        assert effect_pos == 0
        assert state.prepare_length() == 5
        assert state.effect_length() == 5
        assert state.record_count() == 1
        # Every character of the run resolves to the same record.
        assert state.record_for(EventId("a", 0)) is state.record_for(EventId("a", 4))


class TestApplyDelete:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delete_returns_effect_position(self, backend):
        state = make_state(backend)
        for i in range(3):
            state.apply_insert(EventId("a", i), i)
        segments = state.apply_delete(EventId("a", 3), 1)
        assert [(s.length, s.effect_pos) for s in segments] == [(1, 1)]
        assert state.prepare_length() == 2
        assert state.effect_length() == 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delete_run_splits_insert_run(self, backend):
        state = make_state(backend)
        state.apply_insert(EventId("a", 0), 0, 6)
        segments = state.apply_delete(EventId("b", 0), 2, 3)
        assert [(s.length, s.effect_pos) for s in segments] == [(3, 2)]
        assert state.prepare_length() == 3
        assert state.effect_length() == 3
        # The run is now three spans: kept | deleted | kept.
        assert state.record_count() == 3
        assert state.record_for(EventId("a", 2)).ever_deleted
        assert not state.record_for(EventId("a", 0)).ever_deleted
        assert not state.record_for(EventId("a", 5)).ever_deleted

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_double_delete_is_noop(self, backend):
        """Two concurrent deletions of the same character (Lemma C.7 case 2)."""
        state = make_state(backend)
        state.apply_insert(EventId("a", 0), 0)
        segments = state.apply_delete(EventId("b", 0), 0)
        assert [(s.length, s.effect_pos) for s in segments] == [(1, 0)]
        # Concurrent second delete: retreat the first, then apply the second.
        state.retreat(EventId("b", 0), is_insert=False)
        segments = state.apply_delete(EventId("c", 0), 0)
        assert [(s.length, s.effect_pos) for s in segments] == [(1, None)]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delete_inside_placeholder(self, backend):
        state = make_state(backend, placeholder=10)
        segments = state.apply_delete(EventId("a", 0), 4)
        assert [(s.length, s.effect_pos) for s in segments] == [(1, 4)]
        assert state.prepare_length() == 9
        assert state.effect_length() == 9
        record = state.record_for(EventId("a", 0))
        assert record.ever_deleted
        assert record.prepare_state == INSERTED + 1


class TestRetreatAdvance:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_retreat_insert_hides_it_from_prepare(self, backend):
        state = make_state(backend)
        state.apply_insert(EventId("a", 0), 0)
        state.apply_insert(EventId("a", 1), 1)
        state.retreat(EventId("a", 1), is_insert=True)
        assert state.prepare_length() == 1
        assert state.effect_length() == 2
        record = state.record_for(EventId("a", 1))
        assert record.prepare_state == NOT_YET_INSERTED

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_advance_restores_prepare_visibility(self, backend):
        state = make_state(backend)
        state.apply_insert(EventId("a", 0), 0)
        state.retreat(EventId("a", 0), is_insert=True)
        state.advance(EventId("a", 0), is_insert=True)
        assert state.prepare_length() == 1
        assert state.record_for(EventId("a", 0)).prepare_state == INSERTED

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_retreat_delete_restores_prepare_visibility(self, backend):
        state = make_state(backend)
        state.apply_insert(EventId("a", 0), 0)
        state.apply_delete(EventId("b", 0), 0)
        assert state.prepare_length() == 0
        state.retreat(EventId("b", 0), is_insert=False)
        assert state.prepare_length() == 1
        # The effect version never un-deletes (s_e has no backwards moves).
        assert state.effect_length() == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_figure5_state_machine(self, backend):
        """Walk the s_p state machine of Figure 5: NIY <-> Ins <-> Del1 <-> Del2."""
        state = make_state(backend)
        state.apply_insert(EventId("a", 0), 0)
        record = state.record_for(EventId("a", 0))
        state.apply_delete(EventId("b", 0), 0)
        assert record.prepare_state == 2  # Del 1
        state.advance(EventId("b", 0), is_insert=False)
        assert record.prepare_state == 3  # Del 2
        state.retreat(EventId("b", 0), is_insert=False)
        assert record.prepare_state == 2
        state.retreat(EventId("b", 0), is_insert=False)
        assert record.prepare_state == INSERTED
        state.retreat(EventId("a", 0), is_insert=True)
        assert record.prepare_state == NOT_YET_INSERTED


class TestConcurrentInsertOrdering:
    """Figure 1 / Lemma C.5: concurrent insertions integrate consistently."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_figure1_scenario(self, backend):
        # Document "Helo"; user1 inserts "l" at 3, user2 inserts "!" at 4.
        def build(order):
            state = make_state(backend)
            for i, char in enumerate("Helo"):
                state.apply_insert(EventId("base", i), i)
            positions = {}
            if order == "l_first":
                positions["l"] = state.apply_insert(EventId("user1", 0), 3)
                state.retreat(EventId("user1", 0), is_insert=True)
                positions["!"] = state.apply_insert(EventId("user2", 0), 4)
            else:
                positions["!"] = state.apply_insert(EventId("user2", 0), 4)
                state.retreat(EventId("user2", 0), is_insert=True)
                positions["l"] = state.apply_insert(EventId("user1", 0), 3)
            sequence = [r.id for r in state.iter_records()]
            return positions, sequence

        pos_a, seq_a = build("l_first")
        pos_b, seq_b = build("bang_first")
        # Both replay orders produce the same internal ordering of records.
        assert seq_a == seq_b
        # And the transformed positions match Figure 1: the "!" lands at 5
        # when applied after the "l", and the "l" stays at 3 either way.
        assert pos_a["l"] == 3 and pos_a["!"] == 5
        assert pos_b["!"] == 4 and pos_b["l"] == 3

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_concurrent_inserts_at_same_position_do_not_interleave_badly(self, backend):
        state = make_state(backend)
        # Two users concurrently type runs at position 0 of an empty document.
        state.apply_insert(EventId("alice", 0), 0)
        state.apply_insert(EventId("alice", 1), 1)
        for eid in (EventId("alice", 1), EventId("alice", 0)):
            state.retreat(eid, is_insert=True)
        state.apply_insert(EventId("bob", 0), 0)
        state.apply_insert(EventId("bob", 1), 1)
        # Per-character agent order (span re-merging may coalesce each user's
        # characters into a single record, which is exactly the point).
        order = [r.id.agent for r in state.iter_records() for _ in range(r.length)]
        # Each user's run stays contiguous (maximal non-interleaving).
        assert order in (["alice", "alice", "bob", "bob"], ["bob", "bob", "alice", "alice"])


class TestClear:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_clear_resets_to_placeholder(self, backend):
        state = make_state(backend)
        for i in range(4):
            state.apply_insert(EventId("a", i), i)
        state.clear(4)
        assert state.prepare_length() == 4
        assert state.effect_length() == 4
        assert state.record_count() == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_editing_after_clear_uses_placeholder(self, backend):
        state = make_state(backend)
        for i in range(4):
            state.apply_insert(EventId("a", i), i)
        state.clear(4)
        assert state.apply_insert(EventId("b", 0), 2) == 2
        segments = state.apply_delete(EventId("b", 1), 0)
        assert [(s.length, s.effect_pos) for s in segments] == [(1, 0)]
        assert state.effect_length() == 4
