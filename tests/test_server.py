"""End-to-end tests for the collaboration server, over real sockets.

Each test spins up a :class:`~repro.server.CollabServer` on an ephemeral
loopback port inside ``asyncio.run`` and drives it with the loadgen clients —
the same code paths the benchmark and the CI smoke job exercise, at small
scale.
"""

import asyncio
import json

import pytest

from repro.server import CollabServer, run_loadgen, run_trace_replay
from repro.server.loadgen import CollabClient, PollClient, http_request
from repro.traces.datasets import get_trace


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60.0))


async def wait_until(predicate, timeout=8.0, interval=0.01):
    """Poll ``predicate`` until it holds (returning True) or time runs out."""
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


def assert_no_leaks(server, doc, *clients):
    room = server.room(doc)
    leaks = dict(room.buffer_pending())
    for client in clients:
        leaks[f"client:{client.agent}"] = client.pending_count
    assert all(count == 0 for count in leaks.values()), leaks


class TestWebSocketSessions:
    def test_two_clients_converge(self):
        async def scenario():
            async with CollabServer() as server:
                a = CollabClient(server.host, server.port, "d", "alice")
                b = CollabClient(server.host, server.port, "d", "bob")
                await a.connect()
                await b.connect()
                await a.insert(0, "hello ")
                assert await wait_until(lambda: b.text == "hello ")
                await b.insert(6, "world")
                assert await wait_until(
                    lambda: a.text == b.text == "hello world"
                )
                assert server.room("d").document.text == "hello world"
                assert_no_leaks(server, "d", a, b)
                await a.close()
                await b.close()

        run(scenario())

    def test_late_joiner_gets_catchup_delta(self):
        async def scenario():
            async with CollabServer() as server:
                a = CollabClient(server.host, server.port, "d", "alice")
                await a.connect()
                await a.insert(0, "already here")
                b = CollabClient(server.host, server.port, "d", "bob")
                await b.connect()
                assert await wait_until(lambda: b.text == "already here")
                assert_no_leaks(server, "d", a, b)
                await a.close()
                await b.close()

        run(scenario())

    def test_reconnect_replay_is_deduplicated(self):
        """Disconnect, edit elsewhere, reconnect with the old document and
        replay everything already uploaded: the server must ship only the
        missed suffix and drop the replayed overlap without re-applying it."""

        async def scenario():
            async with CollabServer() as server:
                a = CollabClient(server.host, server.port, "d", "alice")
                b = CollabClient(server.host, server.port, "d", "bob")
                await a.connect()
                await b.connect()
                await a.insert(0, "shared ")
                assert await wait_until(lambda: b.text == "shared ")
                await b.insert(7, "tail")
                assert await wait_until(lambda: a.text == "shared tail")
                # b's connection drops without a bye.
                await b.close(send_bye=False)
                # Meanwhile alice keeps typing.
                await a.insert(0, "new ")
                assert await wait_until(
                    lambda: server.room("d").document.text == "new shared tail"
                )
                room = server.room("d")
                dropped_before = room.stats.duplicates_dropped
                # b reconnects with its old replica and (paranoid client)
                # replays its complete local history, overlapping everything
                # the server already holds.
                b2 = CollabClient(
                    server.host, server.port, "d", "bob", document=b.document
                )
                await b2.connect()
                replay = b2.document.oplog.export_since_seq("bob", 0)
                assert replay
                await b2.send_events(replay)
                assert await wait_until(lambda: b2.text == "new shared tail")
                assert await wait_until(
                    lambda: room.stats.duplicates_dropped > dropped_before
                )
                # The replay changed nothing: server and both clients agree.
                assert room.document.text == "new shared tail"
                assert a.text == "new shared tail"
                assert_no_leaks(server, "d", a, b2)
                await a.close()
                await b2.close()

        run(scenario())

    def test_malformed_frames_get_errors_not_disconnects(self):
        async def scenario():
            async with CollabServer() as server:
                a = CollabClient(server.host, server.port, "d", "alice")
                b = CollabClient(server.host, server.port, "d", "bob")
                await a.connect()
                await b.connect()
                await a.send_raw("{this is not json")
                assert await wait_until(lambda: len(a.errors) == 1)
                assert a.errors[0]["code"] == "bad-json"
                await a.send_raw(json.dumps({"type": "teleport"}))
                assert await wait_until(lambda: len(a.errors) == 2)
                assert a.errors[1]["code"] == "unknown-type"
                # A client-sent server-only frame is rejected the same way.
                await a.send_raw(json.dumps({"type": "ack", "accepted": 1}))
                assert await wait_until(lambda: len(a.errors) == 3)
                assert a.errors[2]["code"] == "unexpected-type"
                # The connection survived all three: edits still flow.
                await a.insert(0, "still alive")
                assert await wait_until(lambda: b.text == "still alive")
                await a.close()
                await b.close()

        run(scenario())

    def test_presence_reaches_websocket_peers_only(self):
        async def scenario():
            async with CollabServer() as server:
                a = CollabClient(server.host, server.port, "d", "alice")
                b = CollabClient(server.host, server.port, "d", "bob")
                c = PollClient(server.host, server.port, "d", "carol", poll_wait=0.05)
                await a.connect()
                await b.connect()
                await c.connect()
                await a.insert(0, "x")
                await a.send_presence()
                assert await wait_until(lambda: "alice" in b.presence_seen)
                assert b.presence_seen["alice"]  # pinned to an id frontier
                # The sender does not hear its own cursor back; the polling
                # fallback gets no presence at all.
                assert a.presence_received == 0
                await asyncio.sleep(0.2)
                assert c.presence_received == 0
                # A late WS joiner receives the existing cursors on connect.
                d = CollabClient(server.host, server.port, "d", "dave")
                await d.connect()
                assert await wait_until(lambda: "alice" in d.presence_seen)
                for client in (a, b, c, d):
                    await client.close()

        run(scenario())


class TestLongPollFallback:
    def test_poll_and_ws_clients_converge(self):
        async def scenario():
            async with CollabServer() as server:
                ws = CollabClient(server.host, server.port, "d", "alice")
                poll = PollClient(server.host, server.port, "d", "bob", poll_wait=0.05)
                await ws.connect()
                await poll.connect()
                await ws.insert(0, "from ws ")
                assert await wait_until(lambda: poll.text == "from ws ")
                await poll.insert(8, "and poll")
                assert await wait_until(
                    lambda: ws.text == poll.text == "from ws and poll"
                )
                assert_no_leaks(server, "d", ws, poll)
                await ws.close()
                await poll.close()

        run(scenario())

    def test_http_endpoints(self):
        async def scenario():
            async with CollabServer() as server:
                host, port = server.host, server.port
                status, body = await http_request(host, port, "GET", "/healthz")
                assert status == 200 and body["ok"] is True
                status, body = await http_request(host, port, "GET", "/nope")
                assert status == 404 and body["code"] == "not-found"
                # A session opened over HTTP answers sends with acks.
                client = PollClient(host, port, "d", "eve", poll_wait=0.05)
                await client.connect()
                await client.insert(0, "hi")
                status, body = await http_request(
                    host, port, "GET", "/v1/text?doc=d"
                )
                assert status == 200 and body["text"] == "hi"
                status, body = await http_request(
                    host, port, "GET", "/v1/stats?doc=d"
                )
                assert status == 200 and body["doc"] == "d"
                await client.close()

        run(scenario())


class TestLoadgen:
    def test_live_session_mixed_transports(self):
        async def scenario():
            async with CollabServer() as server:
                result = await run_loadgen(
                    server.host,
                    server.port,
                    clients=3,
                    edits_per_client=8,
                    edit_interval=0.0,
                    transport="mixed",
                )
                assert result.converged, result.as_row()
                assert result.leaks == {} or all(
                    v == 0 for v in result.leaks.values()
                ), result.leaks
                assert result.edits == 24
                assert result.latency_samples > 0

        run(scenario())

    def test_trace_replay_matches_per_character_oracle(self):
        trace = get_trace("C2", 0.04)

        async def scenario():
            async with CollabServer() as server:
                result = await run_trace_replay(server.host, server.port, trace)
                assert result.converged, result.as_row()
                assert all(v == 0 for v in result.leaks.values()), result.leaks

        run(scenario())


class TestLifecycleRaces:
    """Regressions for the read→await→write interleavings the
    ``await-state-race`` lint rule flagged in the server lifecycle."""

    def test_restart_during_suspended_stop_is_not_clobbered(self):
        # stop() used to null self._server only after wait_closed() resumed,
        # clobbering (and leaking) a server started concurrently during the
        # suspension.  The fix detaches the reference before the first await.
        async def scenario():
            server = CollabServer()
            await server.start()
            stop_task = asyncio.create_task(server.stop())
            await asyncio.sleep(0)  # let stop() detach and suspend in close
            await server.start()  # restart while the old stop is in flight
            await stop_task
            # The restarted listener survived the resumed stop() and serves.
            status, payload = await http_request(
                server.host, server.port, "GET", "/v1/stats"
            )
            assert status == 200 and isinstance(payload, dict)
            await server.stop()

        run(scenario())

    def test_concurrent_stops_are_idempotent(self):
        async def scenario():
            server = CollabServer()
            await server.start()
            await asyncio.gather(server.stop(), server.stop(), server.stop())
            with pytest.raises(OSError):
                await http_request(server.host, server.port, "GET", "/v1/stats")

        run(scenario())

    def test_double_start_raises_and_keeps_the_first_listener(self):
        async def scenario():
            server = CollabServer()
            await server.start()
            port = server.port
            with pytest.raises(RuntimeError):
                await server.start()
            assert server.port == port
            status, _ = await http_request(server.host, port, "GET", "/v1/stats")
            assert status == 200
            await server.stop()

        run(scenario())


class TestBackgroundMaintenance:
    def test_periodic_reaper_reclaims_abandoned_poll_sessions(self):
        """A long-poll client that vanishes without a bye must be reclaimed
        by the periodic reaper — session object, room entry, and the
        server-level routing entry all gone."""

        async def scenario():
            server = CollabServer(reap_interval=0.05, poll_session_timeout=0.1)
            async with server:
                poll = PollClient(server.host, server.port, "d", "ghost")
                await poll.connect()
                await poll.insert(0, "left behind")
                room = server.room("d")
                assert len(room.sessions) == 1
                # Vanish: kill the poll loop, never send a bye.
                poll._stopping = True
                poll._poll_task.cancel()
                try:
                    await poll._poll_task
                except asyncio.CancelledError:
                    pass
                assert await wait_until(
                    lambda: room.sessions == {} and server._sessions == {}
                )
                assert room.stats.sessions_reaped >= 1
                # The room itself survives with the ghost's edit intact.
                assert room.document.text == "left behind"

        run(scenario())

    def test_abandoned_final_flush_frames_are_counted(self):
        """A WebSocket reader that disconnects while its outbound queue is
        still draining: the drain is bounded and the frames it gives up on
        are accounted, not silently lost."""
        from repro.faults import FaultPlan

        async def scenario():
            plan = FaultPlan(seed=1, slow_reader_agents=("lurker",), slow_reader_delay=0.5)
            server = CollabServer(faults=plan, drain_timeout=0.05)
            async with server:
                lurker = CollabClient(server.host, server.port, "d", "lurker")
                fast = CollabClient(server.host, server.port, "d", "fast")
                await lurker.connect()
                await fast.connect()
                for i in range(5):
                    await fast.insert(0, f"w{i} ")
                room = server.room("d")
                # The lurker's pump is stalled in the injected throttle with
                # most of the fan-out batch unsent; vanish under it.  The
                # bounded drain then cancels the pump, which requeues the
                # unsent tail for the accounting.
                await asyncio.sleep(0.05)
                await lurker.close(send_bye=False)
                assert await wait_until(lambda: room.stats.frames_abandoned > 0)
                assert await wait_until(
                    lambda: all(
                        s.agent != "lurker" for s in room.sessions.values()
                    )
                )
                await fast.close()
                assert room.document.text == "w4 w3 w2 w1 w0 "

        run(scenario())
