"""Quickstart: two users collaboratively editing a document with Eg-walker.

This walks through the scenario of Figure 1 in the paper: starting from the
shared text "Helo", user 1 fixes the typo while user 2 appends an exclamation
mark, concurrently.  Both replicas merge each other's events and converge to
"Hello!" — with the exclamation mark in the right place even though user 1
never saw user 2's index.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import Document


def main() -> None:
    # Each user edits their own replica; no server is involved.
    user1 = Document("user1")
    user2 = Document("user2")

    # User 1 types the initial text and user 2 receives it.
    user1.insert(0, "Helo")
    user2.merge(user1)
    print(f"after initial sync : user1={user1.text!r}  user2={user2.text!r}")

    # Now both users edit *concurrently*.
    user1.insert(3, "l")   # "Helo" -> "Hello"
    user2.insert(4, "!")   # "Helo" -> "Helo!"
    print(f"concurrent edits   : user1={user1.text!r}  user2={user2.text!r}")

    # They exchange their events (in any order) and both converge.
    ops_for_user1 = user1.merge(user2)
    ops_for_user2 = user2.merge(user1)
    print(f"after merging      : user1={user1.text!r}  user2={user2.text!r}")
    print(f"transformed op applied at user1: {ops_for_user1}")
    print(f"transformed op applied at user2: {ops_for_user2}")
    assert user1.text == user2.text == "Hello!"

    # The whole editing history is retained, so any past version can be
    # shown.  Versions are stable, id-based handles (repro.history.Version):
    # they keep meaning the same text no matter what is edited later.
    print("\ndocument history at user1:")
    for version in user1.versions():
        print(f"  {version}: {user1.text_at(version)!r}")

    # The history can be persisted with the compact columnar format of §3.8.
    from repro.storage import EncodeOptions, encode_event_graph

    data = encode_event_graph(
        user1.oplog.graph,
        EncodeOptions(include_snapshot=True, final_text=user1.text),
    )
    print(f"\non-disk size of the full history + cached text: {len(data)} bytes")


if __name__ == "__main__":
    main()
