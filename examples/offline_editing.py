"""Offline editing / long-running branches: where Eg-walker shines over OT.

Two authors work on the same report while disconnected (a flight, fieldwork,
or simply a feature branch).  Each writes hundreds of sentences; when they
reconnect, their long-running branches must be merged.  This is the scenario
where classical OT needs O(k·m) transformations (the paper's trace A2 takes an
hour) while Eg-walker replays the two branches in O((k+m)·log(k+m)).

The example merges the branches with both algorithms, checks they agree, and
prints how much work each one did.

Run with::

    python examples/offline_editing.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import Document, EgWalker
from repro.ot import replay_ot

SENTENCES_PER_AUTHOR = 120


def write_report_section(doc: Document, author: str, sentences: int) -> None:
    """Simulate an author appending prose and fixing up earlier wording."""
    for i in range(sentences):
        doc.insert(len(doc.text), f"{author} wrote sentence {i}. ")
        if i % 7 == 3 and len(doc.text) > 40:
            # Go back and tighten some earlier wording.
            doc.delete(10, 5)
            doc.insert(10, "edit.")


def main() -> None:
    # A shared starting point.
    alice = Document("alice")
    alice.insert(0, "Trip report, draft zero. ")
    bob = Document("bob")
    bob.merge(alice)

    # Both go offline and write a lot of text independently.
    write_report_section(alice, "alice", SENTENCES_PER_AUTHOR)
    write_report_section(bob, "bob", SENTENCES_PER_AUTHOR)
    print(f"alice wrote {len(alice.oplog)} events, bob wrote {len(bob.oplog)} events")

    # Reconnect: merge bob's branch into alice's replica (and vice versa).
    start = time.perf_counter()
    alice.merge(bob)
    bob.merge(alice)
    merge_seconds = time.perf_counter() - start
    assert alice.text == bob.text
    print(f"Eg-walker merged both branches in {merge_seconds * 1000:.1f} ms")
    print(f"merged document: {len(alice.text)} characters")

    # The same merge through the walker directly, with its work counters.
    walker = EgWalker(alice.oplog.graph)
    start = time.perf_counter()
    walker.replay_text()
    replay_seconds = time.perf_counter() - start
    stats = walker.last_stats
    print(
        f"full replay: {replay_seconds * 1000:.1f} ms "
        f"({stats.events_fast_path} fast-path events, "
        f"{stats.retreats} retreats, {stats.advances} advances)"
    )

    # And through the OT baseline, counting its quadratic work.
    start = time.perf_counter()
    ot_result = replay_ot(alice.oplog.graph)
    ot_seconds = time.perf_counter() - start
    print(
        f"OT merge: {ot_seconds * 1000:.1f} ms, "
        f"{ot_result.work_units} work units over "
        f"{ot_result.concurrent_events} concurrent events"
    )
    print(f"documents agree in length: {len(ot_result.text) == len(alice.text)}")


if __name__ == "__main__":
    main()
