"""Peer-to-peer collaboration over a simulated mesh network.

Eg-walker assumes no central server (§2.1): replicas broadcast their events to
whoever they can reach, a causal-delivery buffer re-orders what arrives, and
every replica converges once it has seen every event.  This example runs four
peers on a full-mesh gossip topology with different link latencies, lets them
type concurrently, partitions two of them for a while, heals the partition,
and shows that everyone ends up with the same document.

Run with::

    python examples/peer_to_peer.py
"""

from __future__ import annotations

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.network import full_mesh

PEERS = ["nairobi", "oslo", "quito", "taipei"]
PHRASES = [
    "peer-to-peer editing ",
    "no server required ",
    "merge on reconnect ",
    "event graphs everywhere ",
]


def main() -> None:
    rng = random.Random(2025)
    sim = full_mesh(PEERS, latency=0.08)

    # Everyone types concurrently while messages propagate with latency.
    for round_number in range(30):
        peer = sim.replicas[rng.choice(PEERS)]
        phrase = rng.choice(PHRASES)
        position = rng.randint(0, len(peer.text))
        peer.insert(position, phrase)
        if len(peer.text) > 60 and rng.random() < 0.3:
            peer.delete(rng.randrange(len(peer.text) - 10), 5)
        sim.advance(0.05)

    # Two peers lose connectivity to each other but keep editing.
    sim.partition("nairobi", "taipei")
    sim.replicas["nairobi"].insert(0, "[nairobi offline edit] ")
    sim.replicas["taipei"].insert(0, "[taipei offline edit] ")
    sim.advance(1.0)
    print("during the partition:")
    for name in ("nairobi", "taipei"):
        print(f"  {name:8s}: {len(sim.replicas[name].text):4d} chars")

    # The partition heals; the reliable broadcast re-sends whatever is missing.
    sim.heal("nairobi", "taipei")
    sim.run_until_quiescent()

    texts = sim.all_texts()
    print("\nafter healing and quiescence:")
    for name, text in texts.items():
        print(f"  {name:8s}: {len(text):4d} chars")
    assert len(set(texts.values())) == 1, "all peers must converge"
    print("\nall four peers converged to the same document")
    print(f"messages sent: {sim.messages_sent}, delivered: {sim.messages_delivered}")

    sample = texts[PEERS[0]]
    print(f"\nfinal document starts with: {sample[:80]!r}")


if __name__ == "__main__":
    main()
