"""Serve a document and edit it from two transports, in one process.

Starts a :class:`repro.server.CollabServer` on an ephemeral loopback port,
connects a WebSocket client (the fast path) and a long-polling client (the
fallback), lets them edit concurrently, and shows everything converging —
server replica included.  See docs/architecture.md, "Serving documents".

Run with:  PYTHONPATH=src python examples/server_quickstart.py
"""

import asyncio

from repro.server import CollabServer
from repro.server.loadgen import CollabClient, PollClient


async def settle(predicate, timeout=5.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("replicas did not converge")
        await asyncio.sleep(0.01)


async def main():
    async with CollabServer() as server:
        print(f"server listening on {server.host}:{server.port}")

        # A WebSocket client and a long-polling client join the same room.
        alice = CollabClient(server.host, server.port, "notes", "alice")
        bob = PollClient(server.host, server.port, "notes", "bob", poll_wait=0.05)
        await alice.connect()
        await bob.connect()

        # Concurrent edits from both transports.
        await alice.insert(0, "Meeting notes: ")
        await settle(lambda: bob.text == "Meeting notes: ")
        await bob.insert(15, "ship the demo")
        await alice.insert(0, "DRAFT - ")

        await settle(lambda: alice.text == bob.text)
        room = server.room("notes")
        print(f"alice (websocket): {alice.text!r}")
        print(f"bob   (long-poll): {bob.text!r}")
        print(f"server replica   : {room.document.text!r}")
        assert alice.text == bob.text == room.document.text

        # Presence: alice announces her cursor as an id-frontier position.
        # (Only WebSocket peers receive presence; bob is polling.)
        await alice.send_presence()
        await asyncio.sleep(0.05)
        print(f"cursors known to the room: {sorted(room.presence)}")

        # Nothing is parked in any causal buffer once the room is quiet.
        assert all(count == 0 for count in room.buffer_pending().values())
        assert alice.pending_count == bob.pending_count == 0
        print("all causal buffers drained - no leaks")

        await alice.close()
        await bob.close()


if __name__ == "__main__":
    asyncio.run(main())
