"""History browsing and time travel over the event graph.

Because Eg-walker keeps the full, fine-grained editing history of a document
(the event graph), an application can reconstruct any past version, diff
between versions, branch off a historical state, and show who wrote what —
the paper highlights this as a benefit of storing the event graph (§6).

The currency for all of it is the **id-based version handle**
(:class:`repro.history.Version`), returned by ``Document.version()``: a
frozen frontier of character ids that stays exact across later edits,
sender-side run coalescing (runs extended in place), re-carved interop syncs
and storage round trips.  This example builds a document with two authors and
a concurrent branch, then:

* saves version handles mid-session and reconstructs their texts later,
* diffs between saved versions (cheap walker work, not a full replay),
* compares versions under the causal partial order (meet / join),
* checks out a historical version as an editable branch, and
* saves/loads history *and handles* through the columnar storage format,
  proving the reloaded file supports the same time travel.

Run with::

    python examples/history_browsing.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import Document, apply_ops
from repro.history import History
from repro.storage import (
    ContainerOptions,
    LazyDecodedFile,
    decode_version,
    encode_event_graph_v3,
    encode_version,
)


def main() -> None:
    alice = Document("alice")
    alice.insert(0, "Minutes of the meeting. ")
    draft = alice.version()  # a stable handle: save it, send it, persist it
    alice.insert(len(alice.text), "Attendees: alice. ")

    # Bob joins, and the two edit concurrently for a while.
    bob = Document("bob")
    bob.merge(alice)
    bob.insert(len(bob.text), "Attendees: bob. ")
    alice.insert(len(alice.text), "Agenda: event graphs. ")
    fork_alice = alice.version()  # two concurrent views of the document
    fork_bob = bob.version()
    alice.merge(bob)
    bob.merge(alice)
    bob.delete(0, 8)                      # "Minutes " -> trimmed
    bob.insert(0, "Notes ")
    alice.merge(bob)
    final = alice.version()

    print(f"final document ({len(alice.text)} chars): {alice.text!r}\n")

    # --- time travel through saved handles ---------------------------------
    print("document at saved versions (reconstructed after all later edits):")
    for name, version in [
        ("draft", draft),
        ("alice's fork", fork_alice),
        ("bob's fork", fork_bob),
        ("final", final),
    ]:
        print(f"  {name:13s}: {alice.text_at(version)[:58]!r}")

    # --- version algebra ----------------------------------------------------
    history = alice.history
    print(f"\ndraft vs final        : {history.compare(draft, final)}")
    print(f"alice fork vs bob fork: {history.compare(fork_alice, fork_bob)}")
    meet = history.meet(fork_alice, fork_bob)
    print(f"common ancestor text  : {alice.text_at(meet)[:58]!r}")

    # --- diffs between versions --------------------------------------------
    ops = alice.diff(draft, fork_alice)
    print(f"\ndiff draft -> alice's fork: {len(ops)} operation(s)")
    for op in ops:
        kind = "insert" if op.is_insert else "delete"
        print(f"  {kind} @{op.pos}: {op.content[:40]!r}" if op.is_insert
              else f"  {kind} @{op.pos} x{op.length}")
    assert apply_ops(alice.text_at(draft), ops) == alice.text_at(fork_alice)

    # --- branching from history --------------------------------------------
    branch = alice.checkout(draft, agent="editor")
    branch.insert(len(branch.text), "(approved) ")
    print(f"\nbranch from draft     : {branch.text!r}")
    alice.merge(branch)  # a checkout is a full replica: it merges back
    print(f"after merging branch  : {alice.text[:70]!r}")

    # --- per-author statistics ---------------------------------------------
    inserts: dict[str, int] = {}
    deletes: dict[str, int] = {}
    for event in alice.oplog.graph.events():
        bucket = inserts if event.op.is_insert else deletes
        bucket[event.id.agent] = bucket.get(event.id.agent, 0) + 1
    print("\nper-author contribution (events):")
    for agent in sorted(set(inserts) | set(deletes)):
        print(
            f"  {agent:6s}: {inserts.get(agent, 0):4d} insertions, "
            f"{deletes.get(agent, 0):3d} deletions"
        )

    # --- persistence round trip --------------------------------------------
    data = encode_event_graph_v3(
        alice.oplog.graph,
        ContainerOptions(include_snapshot=True, final_text=alice.text),
    )
    saved_handle = encode_version(draft)  # handles persist independently
    lazy = LazyDecodedFile(data)
    print(f"\nhistory file: {len(data)} bytes (v3 container, snapshot column), "
          f"saved handle: {len(saved_handle)} bytes")
    # Selective read: the current text costs only the snapshot column.
    print(f"fast load from snapshot column: {lazy.text == alice.text} "
          f"({lazy.stats.bytes_read} of {len(data)} bytes read, "
          f"{lazy.stats.events_materialised} events materialised)")
    # History access hydrates the remaining columns, exactly once.
    reloaded = lazy.history
    print(f"time travel after reload works: "
          f"{reloaded.text_at(decode_version(saved_handle)) == alice.text_at(draft)} "
          f"(hydrations: {lazy.stats.hydrations})")


if __name__ == "__main__":
    main()
