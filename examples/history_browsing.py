"""History browsing and time travel over the event graph.

Because Eg-walker keeps the full, fine-grained editing history of a document
(the event graph), an application can reconstruct any past version, show who
wrote what, and diff between versions — the paper highlights this as a benefit
of storing the event graph (§6).  This example builds a small document with
two authors and a concurrent branch, then:

* replays a handful of historical versions,
* shows per-author contribution statistics, and
* saves/loads the history through the columnar storage format, proving the
  reloaded file supports the same time travel.

Run with::

    python examples/history_browsing.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import Document, EgWalker
from repro.storage import EncodeOptions, decode_event_graph, encode_event_graph


def main() -> None:
    alice = Document("alice")
    alice.insert(0, "Minutes of the meeting. ")
    alice.insert(len(alice.text), "Attendees: alice. ")

    # Bob joins, and the two edit concurrently for a while.
    bob = Document("bob")
    bob.merge(alice)
    bob.insert(len(bob.text), "Attendees: bob. ")
    alice.insert(len(alice.text), "Agenda: event graphs. ")
    alice.merge(bob)
    bob.merge(alice)
    bob.delete(0, 8)                      # "Minutes " -> trimmed
    bob.insert(0, "Notes ")
    alice.merge(bob)

    print(f"final document ({len(alice.text)} chars): {alice.text!r}\n")

    # --- time travel -------------------------------------------------------
    graph = alice.oplog.graph
    checkpoints = [len(graph) // 4, len(graph) // 2, (3 * len(graph)) // 4, len(graph) - 1]
    print("document at selected historical versions:")
    for index in checkpoints:
        text = alice.text_at((index,))
        print(f"  after event {index:3d}: {text[:60]!r}")

    # --- per-author statistics --------------------------------------------
    inserts: dict[str, int] = {}
    deletes: dict[str, int] = {}
    for event in graph.events():
        bucket = inserts if event.op.is_insert else deletes
        bucket[event.id.agent] = bucket.get(event.id.agent, 0) + 1
    print("\nper-author contribution (events):")
    for agent in sorted(set(inserts) | set(deletes)):
        print(
            f"  {agent:6s}: {inserts.get(agent, 0):4d} insertions, "
            f"{deletes.get(agent, 0):3d} deletions"
        )

    # --- persistence round trip --------------------------------------------
    data = encode_event_graph(
        graph, EncodeOptions(include_snapshot=True, final_text=alice.text)
    )
    decoded = decode_event_graph(data)
    walker = EgWalker(decoded.graph)
    print(f"\nhistory file: {len(data)} bytes (snapshot included)")
    print(f"fast load from snapshot: {decoded.snapshot == alice.text}")
    print(f"replaying the reloaded graph reproduces the document: "
          f"{walker.replay_text() == alice.text}")
    # And old versions are still reachable from the reloaded file.
    print(f"time travel after reload works: "
          f"{walker.text_at_version((checkpoints[0],)) == alice.text_at((checkpoints[0],))}")


if __name__ == "__main__":
    main()
