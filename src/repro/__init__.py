"""Eg-walker: collaborative text editing via event graph replay.

A from-scratch Python reproduction of *Collaborative Text Editing with
Eg-walker: Better, Faster, Smaller* (Gentle & Kleppmann, EuroSys 2025),
including the Eg-walker algorithm itself, the substrates it depends on (event
graphs, order-statistic trees, ropes, causal broadcast, columnar storage), the
baselines it is evaluated against (a reference list CRDT, Automerge-like and
Yjs-like CRDTs, and a TTF-based OT implementation), synthetic editing traces
matching the paper's benchmark suite, and the harness that regenerates every
table and figure of the paper's evaluation.

Quickstart::

    from repro import Document

    alice = Document("alice")
    bob = Document("bob")

    alice.insert(0, "Helo")
    bob.merge(alice)

    alice.insert(3, "l")        # "Hello"
    bob.insert(4, "!")          # "Helo!"

    alice.merge(bob)
    bob.merge(alice)
    assert alice.text == bob.text == "Hello!"
"""

from .core import (
    Document,
    EgWalker,
    Event,
    EventGraph,
    EventId,
    Operation,
    OpKind,
    OpLog,
    RemoteEvent,
    ReplayResult,
    delete_op,
    insert_op,
)
from .history import ROOT, History, Version, apply_ops
from .rope import GapBuffer, Rope

__version__ = "1.0.0"

__all__ = [
    "Document",
    "EgWalker",
    "Event",
    "EventGraph",
    "EventId",
    "GapBuffer",
    "History",
    "Operation",
    "OpKind",
    "OpLog",
    "RemoteEvent",
    "ReplayResult",
    "ROOT",
    "Rope",
    "Version",
    "apply_ops",
    "delete_op",
    "insert_op",
    "__version__",
]
