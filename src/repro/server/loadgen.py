"""Load-generator clients: trace replay and live sessions over real sockets.

Every client is a *full replica*: it owns a
:class:`~repro.core.document.Document` and a client-side
:class:`~repro.network.causal_broadcast.CausalBuffer`, mirrors the network
simulator's broadcast discipline (``export_since_seq`` suffix deltas, local
spans marked known before sending) and converges byte-identically with the
server and every other client.  Two drivers:

* :func:`run_loadgen` — a **live session**: N concurrent WebSocket (or
  long-polling) clients edit deterministically pseudo-randomly, presence
  frames ride along, and every delivered event is timestamped against its
  send time.  Produces sustained edits/sec and delivery-latency percentiles
  — the numbers ``BENCH_server_latency.json`` reports per client count.
* :func:`run_trace_replay` — replays a trace-suite session (S3, C2, ...):
  each trace author becomes a client that feeds its own events through the
  socket as soon as their causal parents are visible in its replica, so the
  original concurrency structure survives the trip through the server.
  Convergence is asserted against the **per-character oracle**
  (:func:`~repro.core.event_graph.expand_to_chars` + a reference replay).

All drivers return a :class:`LoadgenResult` whose ``leaks`` field aggregates
every buffer's parked-event count — zero after quiescence, by construction.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from ..core.document import Document
from ..core.event_graph import expand_to_chars
from ..core.ids import EventId
from ..core.oplog import RemoteEvent
from ..core.walker import EgWalker
from ..network.causal_broadcast import CausalBuffer
from ..traces.trace import Trace
from .protocol import (
    PROTOCOL_VERSION,
    bye_frame,
    decode_frame,
    delta_frame,
    encode_frame,
    hello_frame,
    presence_frame,
)
from .wire import WebSocketConnection, connect_websocket, read_http_request

__all__ = [
    "LoadgenResult",
    "ReconnectPolicy",
    "CollabClient",
    "PollClient",
    "run_loadgen",
    "run_loadgen_sync",
    "run_trace_replay",
    "http_request",
]

_WORDS = ["alpha ", "beta ", "gamma ", "delta ", "epsilon ", "zeta "]


@dataclass(frozen=True, slots=True)
class ReconnectPolicy:
    """Jittered exponential backoff for client auto-reconnect.

    A client with a policy survives connection cuts, server crashes and
    backpressure sheds: it redials, says ``hello`` with its **current**
    version (so the server ships only the missed suffix) and replays its own
    complete local history (the server's span-based dedup makes the overlap
    a no-op, while anything the server lost to a crash is restored).
    """

    max_attempts: int = 8
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    #: Fraction of each delay that is randomised away (0 = fixed backoff).
    jitter: float = 0.5

    def delays(self, rng: random.Random) -> Iterator[float]:
        """Yield up to ``max_attempts`` backoff delays, jittered by ``rng``."""
        delay = self.base_delay
        for _ in range(self.max_attempts):
            yield delay * (1.0 - self.jitter * rng.random())
            delay = min(delay * self.multiplier, self.max_delay)


@dataclass
class LoadgenResult:
    """One load-generation run, as a JSON-friendly result row."""

    mode: str
    transport: str
    clients: int
    edits: int
    run_events_sent: int
    seconds: float
    edits_per_sec: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_samples: int
    converged: bool
    final_text_len: int
    presence_received: int
    leaks: dict[str, int] = field(default_factory=dict)

    def as_row(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "transport": self.transport,
            "clients": self.clients,
            "edits": self.edits,
            "run_events_sent": self.run_events_sent,
            "seconds": round(self.seconds, 4),
            "edits_per_sec": round(self.edits_per_sec, 1),
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p99_ms": round(self.latency_p99_ms, 3),
            "latency_samples": self.latency_samples,
            "converged": self.converged,
            "final_text_len": self.final_text_len,
            "presence_received": self.presence_received,
            "leaked_events": sum(self.leaks.values()),
        }


# ----------------------------------------------------------------------
# Minimal HTTP client (for the fallback transport and the oracle endpoints)
# ----------------------------------------------------------------------
async def http_request(
    host: str, port: int, method: str, target: str, payload: Any | None = None
) -> tuple[int, Any]:
    """One HTTP exchange with the server; returns ``(status, parsed_json)``."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        writer.write(
            (
                f"{method} {target} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await reader.readexactly(length) if length else b""
        return status, (json.loads(raw) if raw else None)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


class _ReplicaCore:
    """The replica-side state shared by both transports."""

    def __init__(
        self,
        agent: str,
        *,
        document: Document | None = None,
        document_options: dict | None = None,
        sent_times: dict[EventId, float] | None = None,
        latency_samples: list[float] | None = None,
    ) -> None:
        self.agent = agent
        self.document = document or Document(agent, **(document_options or {}))
        self.buffer = CausalBuffer(deliver_batch=self._apply_batch)
        # A reconnecting client reuses its document: everything already in
        # the graph is known to the (fresh) buffer.
        graph = self.document.oplog.graph
        if len(graph):
            self.buffer.mark_known_spans(
                (graph[i].id, graph[i].num_chars) for i in range(len(graph))
            )
        self.sent_times = sent_times
        self.latency_samples = latency_samples
        self.presence_seen: dict[str, tuple] = {}
        self.presence_received = 0
        self.errors: list[dict[str, Any]] = []
        #: Server-initiated byes (e.g. a backpressure shed's resumable bye).
        self.byes: list[dict[str, Any]] = []
        self.run_events_sent = 0
        #: Successful re-establishments after a lost connection.
        self.reconnects = 0
        self.delta_arrived = asyncio.Event()

    def _apply_batch(self, events: list[RemoteEvent]) -> None:
        self.document.apply_remote_events(events)

    @property
    def text(self) -> str:
        return self.document.text

    @property
    def pending_count(self) -> int:
        return self.buffer.pending_count

    def handle_frame(self, frame: dict[str, Any]) -> None:
        if frame["type"] == "delta":
            events = frame["events"]
            if self.latency_samples is not None and self.sent_times is not None:
                now = time.perf_counter()
                for event in events:
                    t0 = self.sent_times.get(event.id)
                    if t0 is not None:
                        self.latency_samples.append(now - t0)
            self.buffer.receive_batch(events)
            self.delta_arrived.set()
        elif frame["type"] == "presence":
            self.presence_seen[frame["agent"]] = tuple(frame["cursor"])
            self.presence_received += 1
        elif frame["type"] == "error":
            self.errors.append(frame)
        elif frame["type"] == "bye":
            self.byes.append(frame)

    def take_local_edit(self, before_seq: int) -> list[RemoteEvent]:
        """Export (and account) the suffix a local edit produced."""
        events = self.document.oplog.export_since_seq(self.agent, before_seq)
        self.buffer.mark_known_spans((e.id, e.op.length) for e in events)
        if self.sent_times is not None:
            now = time.perf_counter()
            for event in events:
                self.sent_times[event.id] = now
        self.run_events_sent += len(events)
        return events


class CollabClient(_ReplicaCore):
    """A WebSocket collaboration client (the fast path).

    With a :class:`ReconnectPolicy` the client is *self-healing*: a dropped
    socket (cut, crash, shed) triggers jittered-backoff redials from the
    read loop, resuming from the last locally applied version.
    """

    transport = "ws"

    def __init__(
        self,
        host: str,
        port: int,
        doc: str,
        agent: str,
        *,
        reconnect: ReconnectPolicy | None = None,
        **kwargs,
    ) -> None:
        super().__init__(agent, **kwargs)
        self.host = host
        self.port = port
        self.doc = doc
        self.reconnect = reconnect
        self.session_id: str | None = None
        self.ws: WebSocketConnection | None = None
        self._reader_task: asyncio.Task | None = None
        self._closing = False
        self._reconnect_rng = random.Random(zlib.crc32(agent.encode("utf-8")))

    async def connect(self) -> None:
        await self._open_session()
        self._reader_task = asyncio.create_task(self._read_loop())

    async def _open_session(self) -> None:
        """Dial, ``hello`` with the current version, await ``welcome``."""
        self.ws = await connect_websocket(self.host, self.port, "/v1/ws")
        await self.ws.send_text(
            encode_frame(hello_frame(self.doc, self.agent, self.document.version().as_tuples()))
        )
        welcome = decode_frame(await self._recv_required())
        if welcome["type"] == "error":
            raise ConnectionError(f"server rejected hello: {welcome}")
        assert welcome["type"] == "welcome" and welcome["protocol"] == PROTOCOL_VERSION
        self.session_id = welcome["session"]

    async def _recv_required(self) -> str:
        text = await self.ws.recv_text()
        if text is None:
            raise ConnectionError("server closed the connection during the handshake")
        return text

    async def _read_loop(self) -> None:
        while True:
            try:
                text = await self.ws.recv_text()
            except ConnectionError:
                text = None
            if text is None:
                if self._closing or self.reconnect is None:
                    return
                if not await self._redial():
                    return
                continue
            self.handle_frame(decode_frame(text))

    async def _redial(self) -> bool:
        """Jittered-backoff reconnect; returns False when attempts run out
        (or the client is closing)."""
        assert self.reconnect is not None
        for delay in self.reconnect.delays(self._reconnect_rng):
            await asyncio.sleep(delay)
            if self._closing:
                return False
            try:
                await self._open_session()
            except (ConnectionError, OSError, AssertionError):
                continue
            self.reconnects += 1
            # The hello's version already fetched the missed suffix; replay
            # our complete history so a crashed server recovers anything it
            # lost (span dedup makes the overlap a clean no-op).
            replay = self.document.oplog.export_since_seq(self.agent, 0)
            if replay:
                try:
                    await self.ws.send_text(encode_frame(delta_frame(replay)))
                except ConnectionError:
                    continue
            return True
        return False

    # -- editing -------------------------------------------------------
    async def insert(self, pos: int, content: str) -> None:
        before = self.document.oplog.graph.next_seq_for(self.agent)
        self.document.insert(pos, content)
        await self._send_events(self.take_local_edit(before))

    async def delete(self, pos: int, length: int = 1) -> None:
        before = self.document.oplog.graph.next_seq_for(self.agent)
        self.document.delete(pos, length)
        await self._send_events(self.take_local_edit(before))

    async def send_events(self, events: Iterable[RemoteEvent]) -> None:
        await self._send_events(list(events))

    async def _send_events(self, events: list[RemoteEvent]) -> None:
        if not events:
            return
        try:
            await self.ws.send_text(encode_frame(delta_frame(events)))
        except ConnectionError:
            if self.reconnect is None:
                raise
            # Lost with the connection; the reconnect replay re-ships them.

    async def send_presence(self) -> None:
        try:
            await self.ws.send_text(
                encode_frame(presence_frame(self.agent, self.document.version().as_tuples()))
            )
        except ConnectionError:
            if self.reconnect is None:
                raise
            # Presence is ephemeral: a cursor lost to a dead socket is moot.

    async def send_raw(self, text: str) -> None:
        await self.ws.send_text(text)

    async def close(self, *, send_bye: bool = True) -> None:
        self._closing = True
        if self.ws is not None and send_bye and not self.ws.closed:
            try:
                await self.ws.send_text(encode_frame(bye_frame()))
            except ConnectionError:
                pass
        if self._reader_task is not None:
            try:
                await asyncio.wait_for(self._reader_task, timeout=1.0)
            except asyncio.TimeoutError:
                self._reader_task.cancel()
                try:
                    await self._reader_task
                except asyncio.CancelledError:
                    pass
        if self.ws is not None:
            await self.ws.close()


class PollClient(_ReplicaCore):
    """A long-polling collaboration client (the fallback path).

    Same replica semantics as :class:`CollabClient`, but frames travel as
    JSON bodies over plain HTTP and arrive on a polling task.  Presence is
    not available on this transport.
    """

    transport = "poll"

    def __init__(
        self,
        host: str,
        port: int,
        doc: str,
        agent: str,
        *,
        poll_wait: float = 0.25,
        reconnect: ReconnectPolicy | None = None,
        **kwargs,
    ) -> None:
        super().__init__(agent, **kwargs)
        self.host = host
        self.port = port
        self.doc = doc
        self.poll_wait = poll_wait
        self.reconnect = reconnect
        self.session_id: str | None = None
        self._poll_task: asyncio.Task | None = None
        self._stopping = False
        self._reconnect_rng = random.Random(zlib.crc32(agent.encode("utf-8")))

    async def connect(self) -> None:
        await self._open_session()
        self._poll_task = asyncio.create_task(self._poll_loop())

    async def _open_session(self) -> None:
        status, payload = await http_request(
            self.host,
            self.port,
            "POST",
            "/v1/connect",
            hello_frame(self.doc, self.agent, self.document.version().as_tuples()),
        )
        if status != 200:
            raise ConnectionError(f"connect failed ({status}): {payload}")
        session_id = None
        for raw in payload["frames"]:
            frame = decode_frame(json.dumps(raw))
            if frame["type"] == "welcome":
                session_id = frame["session"]
            else:
                self.handle_frame(frame)
        if session_id is None:
            raise ConnectionError("connect response carried no welcome frame")
        self.session_id = session_id

    async def _poll_loop(self) -> None:
        while not self._stopping:
            status, payload = await http_request(
                self.host,
                self.port,
                "GET",
                f"/v1/poll?session={self.session_id}&wait={self.poll_wait}",
            )
            if status != 200:
                if self._stopping or self.reconnect is None:
                    return
                if not await self._redial():
                    return
                continue
            for raw in payload["frames"]:
                self.handle_frame(decode_frame(json.dumps(raw)))

    async def _redial(self) -> bool:
        """Jittered-backoff re-``connect``; resumes from the local version
        and replays local history (deduplicated server-side)."""
        assert self.reconnect is not None
        for delay in self.reconnect.delays(self._reconnect_rng):
            await asyncio.sleep(delay)
            if self._stopping:
                return False
            try:
                await self._open_session()
                self.reconnects += 1
                replay = self.document.oplog.export_since_seq(self.agent, 0)
                if replay:
                    await self._send_frames([delta_frame(replay)])
                return True
            except (ConnectionError, OSError):
                continue
        return False

    async def _send_frames(self, frames: list[dict[str, Any]]) -> None:
        try:
            status, payload = await http_request(
                self.host,
                self.port,
                "POST",
                f"/v1/send?session={self.session_id}",
                {"frames": frames},
            )
        except (ConnectionError, OSError):
            if self.reconnect is None:
                raise
            # Server unreachable (crash window); reconnect replay re-ships.
            return
        if status != 200:
            if self.reconnect is not None:
                # Dead session (cut / shed / restart): the poll loop's redial
                # re-establishes and replays; this upload is not lost.
                return
            self.errors.append(payload if isinstance(payload, dict) else {"code": str(status)})

    async def insert(self, pos: int, content: str) -> None:
        before = self.document.oplog.graph.next_seq_for(self.agent)
        self.document.insert(pos, content)
        events = self.take_local_edit(before)
        if events:
            await self._send_frames([delta_frame(events)])

    async def delete(self, pos: int, length: int = 1) -> None:
        before = self.document.oplog.graph.next_seq_for(self.agent)
        self.document.delete(pos, length)
        events = self.take_local_edit(before)
        if events:
            await self._send_frames([delta_frame(events)])

    async def send_events(self, events: Iterable[RemoteEvent]) -> None:
        events = list(events)
        if events:
            await self._send_frames([delta_frame(events)])

    async def close(self, *, send_bye: bool = True) -> None:
        self._stopping = True
        if send_bye and self.session_id is not None:
            await self._send_frames([bye_frame()])
        if self._poll_task is not None:
            try:
                await asyncio.wait_for(self._poll_task, timeout=self.poll_wait + 1.0)
            except asyncio.TimeoutError:
                self._poll_task.cancel()
                try:
                    await self._poll_task
                except asyncio.CancelledError:
                    pass


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def _percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


async def _await_convergence(
    clients: list[_ReplicaCore], host: str, port: int, doc: str, timeout: float
) -> tuple[bool, str]:
    """Poll until every client's text equals the server's (and stays put)."""
    deadline = time.monotonic() + timeout
    server_text = ""
    while time.monotonic() < deadline:
        _, payload = await http_request(host, port, "GET", f"/v1/text?doc={doc}")
        server_text = payload["text"]
        if all(c.text == server_text for c in clients) and all(
            c.pending_count == 0 for c in clients
        ):
            return True, server_text
        await asyncio.sleep(0.05)
    return False, server_text


async def _collect_leaks(
    clients: list[_ReplicaCore], host: str, port: int, doc: str
) -> dict[str, int]:
    _, payload = await http_request(host, port, "GET", f"/v1/stats?doc={doc}")
    leaks = {f"server:{k}": v for k, v in payload["buffer_pending"].items()}
    for client in clients:
        leaks[f"client:{client.agent}"] = client.pending_count
    return leaks


async def run_loadgen(
    host: str,
    port: int,
    doc: str = "loadgen",
    *,
    clients: int = 8,
    edits_per_client: int = 40,
    edit_interval: float = 0.002,
    presence_every: int = 10,
    transport: str = "ws",
    seed: int = 0,
    convergence_timeout: float = 30.0,
) -> LoadgenResult:
    """Drive a live session against a running server and measure it.

    Args:
        clients: concurrent clients (each a full replica on its own socket).
        edits_per_client: local edits each client performs.
        edit_interval: pause between a client's edits (seconds).
        presence_every: send a cursor-presence frame every N edits (WS only).
        transport: ``"ws"``, ``"poll"``, or ``"mixed"`` (one poll client,
            the rest WebSockets).
        seed: drives each client's deterministic pseudo-random edit stream.

    Returns:
        A :class:`LoadgenResult`; ``converged`` is the byte-identical check
        and ``leaks`` maps every causal buffer to its parked-event count.
    """
    sent_times: dict[EventId, float] = {}
    latency_samples: list[float] = []
    pool: list[_ReplicaCore] = []
    for i in range(clients):
        kind = (
            PollClient
            if transport == "poll" or (transport == "mixed" and i == 0)
            else CollabClient
        )
        pool.append(
            kind(
                host,
                port,
                doc,
                f"lg{i}",
                sent_times=sent_times,
                latency_samples=latency_samples,
            )
        )
    for client in pool:
        await client.connect()

    async def drive(client, index: int) -> None:
        rng = random.Random(seed * 1009 + index)
        for n in range(edits_per_client):
            text_len = len(client.document.rope)
            if text_len > 30 and rng.random() < 0.2:
                pos = rng.randrange(text_len - 4)
                await client.delete(pos, rng.randint(1, 4))
            else:
                await client.insert(rng.randint(0, text_len), rng.choice(_WORDS))
            if client.transport == "ws" and presence_every and n % presence_every == 0:
                await client.send_presence()
            await asyncio.sleep(edit_interval)

    t0 = time.perf_counter()
    await asyncio.gather(*(drive(client, i) for i, client in enumerate(pool)))
    edit_seconds = time.perf_counter() - t0

    converged, final_text = await _await_convergence(
        pool, host, port, doc, convergence_timeout
    )
    leaks = await _collect_leaks(pool, host, port, doc)
    for client in pool:
        await client.close()

    total_edits = clients * edits_per_client
    return LoadgenResult(
        mode="live",
        transport=transport,
        clients=clients,
        edits=total_edits,
        run_events_sent=sum(c.run_events_sent for c in pool),
        seconds=edit_seconds,
        edits_per_sec=total_edits / edit_seconds if edit_seconds > 0 else 0.0,
        latency_p50_ms=_percentile(latency_samples, 0.50) * 1000,
        latency_p99_ms=_percentile(latency_samples, 0.99) * 1000,
        latency_samples=len(latency_samples),
        converged=converged,
        final_text_len=len(final_text),
        presence_received=sum(c.presence_received for c in pool),
        leaks=leaks,
    )


def run_loadgen_sync(host: str, port: int, **kwargs) -> LoadgenResult:
    """Synchronous wrapper around :func:`run_loadgen` (for scripts/benchmarks
    that manage their own server out of process)."""
    return asyncio.run(run_loadgen(host, port, **kwargs))


async def run_trace_replay(
    host: str,
    port: int,
    trace: Trace,
    doc: str | None = None,
    *,
    batch_size: int = 16,
    transport: str = "ws",
    convergence_timeout: float = 60.0,
) -> LoadgenResult:
    """Replay a trace-suite session over real sockets, one client per author.

    Each client feeds its author's events through its socket as soon as their
    causal parents are visible in its own replica (which they become via
    server deltas), preserving the trace's concurrency structure.  The final
    texts are checked byte-for-byte against the **per-character oracle**: a
    reference walker replay of the trace expanded to one event per character.
    """
    doc = doc or f"trace-{trace.name}"
    graph = trace.graph
    all_events = [
        RemoteEvent(
            id=event.id,
            parents=tuple(graph.dependency_id(p) for p in event.parents),
            op=event.op,
        )
        for event in graph.events()
    ]
    oracle_text = EgWalker(expand_to_chars(graph)).replay_text()
    by_author: dict[str, list[RemoteEvent]] = {}
    for event in all_events:
        by_author.setdefault(event.id.agent, []).append(event)

    client_kind = PollClient if transport == "poll" else CollabClient
    pool: list[_ReplicaCore] = [
        client_kind(host, port, doc, author) for author in by_author
    ]
    for client in pool:
        await client.connect()

    async def feed(client, events: list[RemoteEvent]) -> None:
        queue = list(events)
        position = 0
        doc_graph = client.document.oplog.graph
        while position < len(queue):
            ready: list[RemoteEvent] = []
            while position < len(queue) and len(ready) < batch_size:
                event = queue[position]
                if all(doc_graph.contains_id(p) for p in event.parents):
                    ready.append(event)
                    position += 1
                else:
                    break
            if ready:
                # Originate: ingest locally (marking the spans known to the
                # client buffer) and ship the batch in one delta frame.
                client.buffer.mark_known_spans((e.id, e.op.length) for e in ready)
                client.document.apply_remote_events(ready)
                client.run_events_sent += len(ready)
                await client.send_events(ready)
                await asyncio.sleep(0)
            else:
                # Blocked on another author's events: wait for the next delta.
                client.delta_arrived.clear()
                await asyncio.wait_for(client.delta_arrived.wait(), timeout=10.0)

    t0 = time.perf_counter()
    await asyncio.gather(
        *(feed(client, by_author[client.agent]) for client in pool)
    )
    feed_seconds = time.perf_counter() - t0

    converged, final_text = await _await_convergence(
        pool, host, port, doc, convergence_timeout
    )
    converged = converged and final_text == oracle_text
    leaks = await _collect_leaks(pool, host, port, doc)
    for client in pool:
        await client.close()

    total_events = len(all_events)
    return LoadgenResult(
        mode=f"trace:{trace.name}",
        transport=transport,
        clients=len(pool),
        edits=total_events,
        run_events_sent=sum(c.run_events_sent for c in pool),
        seconds=feed_seconds,
        edits_per_sec=total_events / feed_seconds if feed_seconds > 0 else 0.0,
        latency_p50_ms=0.0,
        latency_p99_ms=0.0,
        latency_samples=0,
        converged=converged,
        final_text_len=len(final_text),
        presence_received=0,
        leaks=leaks,
    )
