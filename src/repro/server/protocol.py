"""The collaboration wire protocol: JSON frames shared by both transports.

One frame is one JSON object with a ``type`` field.  The same schema travels
as WebSocket text frames on the fast path and as JSON bodies over the HTTP
long-polling fallback, so a session can be resumed on either transport.

Frame types
-----------

``hello``     client → server: open a session on a document.  Carries the
              client's agent name and its current version (``Version``
              frontier ids as ``[agent, seq]`` pairs) so the server can ship
              exactly the missing suffix.
``welcome``   server → client: session id + the server's current version.
``delta``     both directions: a causally ordered batch of portable run
              events (:class:`~repro.core.oplog.RemoteEvent`), the same
              id-span representation ``export_since_seq`` produces.
``presence``  both directions: a cursor as an id-frontier position
              (``Version.as_tuples()``).  Character ids survive re-carving,
              so a cursor stays pinned while runs split and extend.
``error``     server → client: structured rejection (``code`` + ``reason``).
              A malformed frame earns an ``error`` frame, never a dropped
              connection.
``ack``       server → client (long-poll only): receipt for a ``send`` body.
``bye``       either direction: clean session teardown.

Malformed input raises :class:`ProtocolError`, which carries the machine
readable ``code`` used in ``error`` frames.  Decoding is strict — unknown
frame types, missing fields, malformed id pairs and oversized frames are all
rejected — because the server feeds decoded events straight into the event
graph.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from ..core.ids import EventId, Operation, delete_op, insert_op
from ..core.oplog import RemoteEvent

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "encode_event",
    "decode_event",
    "hello_frame",
    "welcome_frame",
    "delta_frame",
    "presence_frame",
    "error_frame",
    "ack_frame",
    "bye_frame",
]

#: Bumped when the frame schema changes incompatibly; ``hello`` carries it and
#: the server rejects mismatches with a structured error.
PROTOCOL_VERSION = 1

#: Hard ceiling on one encoded frame.  Large edits are shipped as multiple
#: delta frames by the sender; a frame above this is rejected, not buffered.
MAX_FRAME_BYTES = 1 << 20

#: The frame types the decoder accepts, with their required fields.
_REQUIRED_FIELDS: dict[str, tuple[str, ...]] = {
    "hello": ("doc", "agent", "version", "protocol"),
    "welcome": ("doc", "session", "version", "protocol"),
    "delta": ("events",),
    "presence": ("agent", "cursor"),
    "error": ("code", "reason"),
    "ack": ("accepted",),
    "bye": (),
}


class ProtocolError(ValueError):
    """A frame violated the wire protocol.

    Attributes:
        code: short machine-readable identifier (``bad-json``,
            ``unknown-type``, ``missing-field``, ``bad-id``, ``bad-op``,
            ``frame-too-large``, ``bad-protocol-version``, ...), echoed in the
            ``error`` frame sent back to the peer.
    """

    def __init__(self, code: str, reason: str) -> None:
        super().__init__(reason)
        self.code = code
        self.reason = reason


# ----------------------------------------------------------------------
# Event codec (RemoteEvent <-> JSON)
# ----------------------------------------------------------------------
def encode_event(event: RemoteEvent) -> dict[str, Any]:
    """One portable run event as a JSON-safe dict."""
    op = event.op
    if op.is_insert:
        op_obj: dict[str, Any] = {"kind": "ins", "pos": op.pos, "content": op.content}
    else:
        op_obj = {"kind": "del", "pos": op.pos, "len": op.length}
    return {
        "id": [event.id.agent, event.id.seq],
        "parents": [[p.agent, p.seq] for p in event.parents],
        "op": op_obj,
    }


def _decode_id(obj: Any, *, what: str) -> EventId:
    if (
        not isinstance(obj, (list, tuple))
        or len(obj) != 2
        or not isinstance(obj[0], str)
        or not isinstance(obj[1], int)
        or isinstance(obj[1], bool)
        or obj[1] < 0
    ):
        raise ProtocolError("bad-id", f"{what} must be a [agent, seq>=0] pair, got {obj!r}")
    return EventId(obj[0], obj[1])


def _decode_op(obj: Any) -> Operation:
    if not isinstance(obj, dict):
        raise ProtocolError("bad-op", f"op must be an object, got {type(obj).__name__}")
    kind = obj.get("kind")
    pos = obj.get("pos")
    if not isinstance(pos, int) or isinstance(pos, bool) or pos < 0:
        raise ProtocolError("bad-op", f"op.pos must be an int >= 0, got {pos!r}")
    try:
        if kind == "ins":
            content = obj.get("content")
            if not isinstance(content, str) or not content:
                raise ProtocolError("bad-op", "insert op needs non-empty string content")
            return insert_op(pos, content)
        if kind == "del":
            length = obj.get("len")
            if not isinstance(length, int) or isinstance(length, bool) or length < 1:
                raise ProtocolError("bad-op", f"delete op needs len >= 1, got {length!r}")
            return delete_op(pos, length)
    except ValueError as exc:  # Operation's own validation
        raise ProtocolError("bad-op", str(exc)) from exc
    raise ProtocolError("bad-op", f"op.kind must be 'ins' or 'del', got {kind!r}")


def decode_event(obj: Any) -> RemoteEvent:
    """Decode one event dict; raises :class:`ProtocolError` on any violation."""
    if not isinstance(obj, dict):
        raise ProtocolError("bad-event", f"event must be an object, got {type(obj).__name__}")
    parents = obj.get("parents")
    if not isinstance(parents, list):
        raise ProtocolError("bad-event", "event.parents must be a list")
    return RemoteEvent(
        id=_decode_id(obj.get("id"), what="event.id"),
        parents=tuple(_decode_id(p, what="event parent") for p in parents),
        op=_decode_op(obj.get("op")),
    )


def _decode_version(obj: Any, *, what: str) -> tuple[EventId, ...]:
    if not isinstance(obj, list):
        raise ProtocolError("bad-id", f"{what} must be a list of [agent, seq] pairs")
    return tuple(_decode_id(pair, what=what) for pair in obj)


# ----------------------------------------------------------------------
# Frame builders
# ----------------------------------------------------------------------
def hello_frame(
    doc: str, agent: str, version_ids: Iterable[EventId | tuple[str, int]] = ()
) -> dict[str, Any]:
    return {
        "type": "hello",
        "doc": doc,
        "agent": agent,
        "version": [[a, s] for a, s in version_ids],
        "protocol": PROTOCOL_VERSION,
    }


def welcome_frame(doc: str, session_id: str, version_ids: Sequence[EventId]) -> dict[str, Any]:
    return {
        "type": "welcome",
        "doc": doc,
        "session": session_id,
        "version": [[eid.agent, eid.seq] for eid in version_ids],
        "protocol": PROTOCOL_VERSION,
    }


def delta_frame(events: Iterable[RemoteEvent]) -> dict[str, Any]:
    return {"type": "delta", "events": [encode_event(e) for e in events]}


def presence_frame(agent: str, cursor_ids: Iterable[EventId | tuple[str, int]]) -> dict[str, Any]:
    return {"type": "presence", "agent": agent, "cursor": [[a, s] for a, s in cursor_ids]}


def error_frame(code: str, reason: str) -> dict[str, Any]:
    return {"type": "error", "code": code, "reason": reason}


def ack_frame(accepted: int) -> dict[str, Any]:
    return {"type": "ack", "accepted": accepted}


def bye_frame(reason: str | None = None, resume: bool = False) -> dict[str, Any]:
    """A teardown frame; optional fields make it *structured*.

    ``reason`` says why the server ends the session (e.g.
    ``"slow-consumer"`` for a backpressure shed), and ``resume=True`` tells
    the client a reconnect-and-replay from its current version will fully
    recover — the fields are additive, so a plain ``bye`` stays byte-for-byte
    what it always was.
    """
    frame: dict[str, Any] = {"type": "bye"}
    if reason is not None:
        frame["reason"] = reason
    if resume:
        frame["resume"] = True
    return frame


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
def encode_frame(frame: dict[str, Any]) -> str:
    """Serialise one frame for the wire (compact JSON)."""
    return json.dumps(frame, separators=(",", ":"), ensure_ascii=False)


def decode_frame(text: str | bytes) -> dict[str, Any]:
    """Parse and validate one frame.

    Returns the frame dict with ``version`` / ``cursor`` fields normalised to
    :class:`EventId` tuples and ``events`` normalised to
    :class:`RemoteEvent` lists, so consumers never touch raw JSON shapes.

    Raises:
        ProtocolError: on oversized input, invalid JSON, unknown frame types,
            missing fields or malformed ids/operations.
    """
    if len(text) > MAX_FRAME_BYTES:
        raise ProtocolError("frame-too-large", f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        frame = json.loads(text)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad-json", f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError("bad-frame", "frame must be a JSON object")
    frame_type = frame.get("type")
    if frame_type not in _REQUIRED_FIELDS:
        raise ProtocolError("unknown-type", f"unknown frame type {frame_type!r}")
    for field in _REQUIRED_FIELDS[frame_type]:
        if field not in frame:
            raise ProtocolError("missing-field", f"{frame_type} frame is missing {field!r}")
    if frame_type == "hello":
        if frame["protocol"] != PROTOCOL_VERSION:
            raise ProtocolError(
                "bad-protocol-version",
                f"peer speaks protocol {frame['protocol']!r}, this end speaks {PROTOCOL_VERSION}",
            )
        if not isinstance(frame["doc"], str) or not isinstance(frame["agent"], str):
            raise ProtocolError("bad-frame", "hello doc/agent must be strings")
        frame["version"] = _decode_version(frame["version"], what="hello version id")
    elif frame_type == "welcome":
        frame["version"] = _decode_version(frame["version"], what="welcome version id")
    elif frame_type == "delta":
        events = frame["events"]
        if not isinstance(events, list):
            raise ProtocolError("bad-frame", "delta events must be a list")
        frame["events"] = [decode_event(e) for e in events]
    elif frame_type == "presence":
        if not isinstance(frame["agent"], str):
            raise ProtocolError("bad-frame", "presence agent must be a string")
        frame["cursor"] = _decode_version(frame["cursor"], what="presence cursor id")
    elif frame_type == "error":
        if not isinstance(frame["code"], str) or not isinstance(frame["reason"], str):
            raise ProtocolError("bad-frame", "error code/reason must be strings")
    return frame
