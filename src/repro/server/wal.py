"""Crash-safe durable rooms: a per-room write-ahead log plus snapshot
compaction.

Eg-walker's pitch is that the durable event graph *is* the document, so
durability falls out of the storage layer this repo already has:

* Every causally ordered batch a room ingests is appended to a
  :class:`WriteAheadLog` as one varint-framed record — the same LEB128
  primitives and column discipline as the storage v2 encoder
  (:mod:`repro.storage.encoder`), scoped down to one batch of portable
  :class:`~repro.core.oplog.RemoteEvent`\\ s (agent table, id/parents rows,
  op rows).  Records are guarded by a CRC32 so a torn write (crash mid
  ``write``) is detected, not silently decoded.
* ``fsync`` is a policy, not a constant: ``"always"`` syncs per appended
  delta, ``"group"`` lets the server's group-commit task sync on an interval
  (the production trade), ``"none"`` never syncs (the ablation floor).
* When the log grows past a threshold the room is **compacted**: the full
  event graph is written as one storage-v3 container (final text included as
  its own snapshot column, so a recovered room serves without a replay) via
  an atomic temp-file-plus-``os.replace``, and the log is reset.  Recovery
  sniffs the magic, so rooms compacted before the v3 container (legacy v2
  snapshots) still recover.  A crash between the
  snapshot replace and the log reset merely leaves duplicate spans in the
  log — recovery routes every batch through a
  :class:`~repro.network.causal_broadcast.CausalBuffer`, which dedups them
  exactly like a reconnect replay.
* :func:`recover_document` rebuilds a server replica from snapshot + WAL
  tail, tolerating a truncated or corrupt final record: the scan stops at
  the first frame that does not parse and verify, and reports how many tail
  bytes were dropped.

Room names are arbitrary strings; on disk each room lives in a directory
named by the UTF-8 hex of its name (reversible, filesystem-safe).
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..core.ids import EventId, delete_op, insert_op
from ..core.oplog import RemoteEvent
from ..network.causal_broadcast import CausalBuffer
from ..storage.container import ContainerOptions, decode_file, encode_event_graph_v3
from ..storage.varint import ByteReader, ByteWriter, decode_uvarint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (Document imports rope etc.)
    from ..core.document import Document
    from ..core.event_graph import EventGraph

__all__ = [
    "DurabilityOptions",
    "WalStats",
    "RecoveryInfo",
    "WriteAheadLog",
    "RoomStorage",
    "encode_wal_record",
    "decode_wal_record",
    "graph_to_remote_events",
    "room_directory",
    "room_name_from_directory",
    "list_room_directories",
    "recover_document",
]

_WAL_MAGIC = b"EGWL"
_WAL_FORMAT = 1
_CRC_BYTES = 4

SNAPSHOT_FILENAME = "snapshot.egwk"
WAL_FILENAME = "wal.log"


@dataclass(frozen=True, slots=True)
class DurabilityOptions:
    """Knobs for the durability subsystem.

    Attributes:
        fsync_policy: ``"always"`` (sync per appended delta — the paranoid
            ablation), ``"group"`` (the server's group-commit task syncs
            every ``group_interval`` seconds), or ``"none"`` (never fsync;
            bytes still reach the OS via ``write``).
        group_interval: seconds between group-commit syncs.
        compact_min_bytes / compact_min_records: compaction triggers — when
            the WAL exceeds either, the room is snapshotted and the log
            reset.
        compact_on_close: write a final snapshot on clean shutdown, so the
            next start recovers from the snapshot alone.
    """

    fsync_policy: str = "group"
    group_interval: float = 0.05
    compact_min_bytes: int = 1 << 18
    compact_min_records: int = 1024
    compact_on_close: bool = True

    def __post_init__(self) -> None:
        if self.fsync_policy not in ("none", "group", "always"):
            raise ValueError(
                f"fsync_policy must be 'none', 'group' or 'always', "
                f"got {self.fsync_policy!r}"
            )


@dataclass(slots=True)
class WalStats:
    """Counters for one room's durability machinery (surfaced in
    ``/v1/stats``)."""

    records_appended: int = 0
    events_appended: int = 0
    bytes_appended: int = 0
    fsyncs: int = 0
    compactions: int = 0
    torn_writes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "records_appended": self.records_appended,
            "events_appended": self.events_appended,
            "bytes_appended": self.bytes_appended,
            "fsyncs": self.fsyncs,
            "compactions": self.compactions,
            "torn_writes": self.torn_writes,
        }


@dataclass(slots=True)
class RecoveryInfo:
    """What :func:`recover_document` found on disk for one room."""

    snapshot_loaded: bool = False
    snapshot_events: int = 0
    snapshot_text_verified: bool = False
    wal_records: int = 0
    wal_events: int = 0
    #: Bytes of torn/corrupt WAL tail that were discarded (0 on a clean log).
    torn_bytes_dropped: int = 0
    #: Events still parked in the recovery buffer afterwards (0 means every
    #: surviving record was a causally closed continuation — the invariant
    #: append order guarantees).
    pending_after_recovery: int = 0

    def as_dict(self) -> dict[str, int | bool]:
        return {
            "snapshot_loaded": self.snapshot_loaded,
            "snapshot_events": self.snapshot_events,
            "snapshot_text_verified": self.snapshot_text_verified,
            "wal_records": self.wal_records,
            "wal_events": self.wal_events,
            "torn_bytes_dropped": self.torn_bytes_dropped,
            "pending_after_recovery": self.pending_after_recovery,
        }


# ----------------------------------------------------------------------
# Record codec: one causally ordered batch of RemoteEvents per record
# ----------------------------------------------------------------------
def encode_wal_record(events: Iterable[RemoteEvent]) -> bytes:
    """Serialise one ingest batch as a WAL record payload.

    The layout mirrors the storage v2 columns at batch scope: an agent
    table, then per event the id, parents and op as varint rows.  Parents
    are explicit ``(agent, seq)`` pairs (they may reference events from
    earlier records or the snapshot).
    """
    events = list(events)
    agents: list[str] = []
    agent_index: dict[str, int] = {}

    def agent_ref(name: str) -> int:
        index = agent_index.get(name)
        if index is None:
            index = agent_index[name] = len(agents)
            agents.append(name)
        return index

    for event in events:
        agent_ref(event.id.agent)
        for parent in event.parents:
            agent_ref(parent.agent)

    writer = ByteWriter()
    writer.write_uvarint(len(agents))
    for agent in agents:
        writer.write_string(agent)
    writer.write_uvarint(len(events))
    for event in events:
        writer.write_uvarint(agent_index[event.id.agent])
        writer.write_uvarint(event.id.seq)
        writer.write_uvarint(len(event.parents))
        for parent in event.parents:
            writer.write_uvarint(agent_index[parent.agent])
            writer.write_uvarint(parent.seq)
        op = event.op
        writer.write_uvarint(int(op.kind))
        writer.write_svarint(op.pos)
        if op.is_insert:
            writer.write_string(op.content)
        else:
            writer.write_uvarint(op.length)
    return writer.getvalue()


def decode_wal_record(payload: bytes) -> list[RemoteEvent]:
    """Inverse of :func:`encode_wal_record`.

    Raises:
        ValueError: if the payload is malformed (the framing CRC makes this
            unreachable for torn writes; it guards against foreign bytes).
    """
    reader = ByteReader(payload)
    agents = [reader.read_string() for _ in range(reader.read_uvarint())]
    count = reader.read_uvarint()
    events: list[RemoteEvent] = []
    for _ in range(count):
        event_id = EventId(agents[reader.read_uvarint()], reader.read_uvarint())
        parent_count = reader.read_uvarint()
        parents = tuple(
            EventId(agents[reader.read_uvarint()], reader.read_uvarint())
            for _ in range(parent_count)
        )
        kind = reader.read_uvarint()
        pos = reader.read_svarint()
        if kind == 0:
            op = insert_op(pos, reader.read_string())
        elif kind == 1:
            op = delete_op(pos, reader.read_uvarint())
        else:
            raise ValueError(f"unknown op kind {kind} in WAL record")
        events.append(RemoteEvent(id=event_id, parents=parents, op=op))
    if not reader.at_end():
        raise ValueError("trailing bytes after WAL record payload")
    return events


def frame_record(payload: bytes) -> bytes:
    """Frame one record for the log: ``uvarint(len) + payload + crc32``."""
    writer = ByteWriter()
    writer.write_uvarint(len(payload))
    writer.write_bytes(payload)
    writer.write_bytes(zlib.crc32(payload).to_bytes(_CRC_BYTES, "little"))
    return writer.getvalue()


def _file_header() -> bytes:
    writer = ByteWriter()
    writer.write_bytes(_WAL_MAGIC)
    writer.write_uvarint(_WAL_FORMAT)
    return writer.getvalue()


_HEADER_LEN = len(_file_header())


class WriteAheadLog:
    """An append-only varint-framed record log with tolerant replay.

    Bytes are written with ``os.write`` on an ``O_APPEND`` descriptor, so a
    crashed *process* loses nothing that :meth:`append_record` returned
    from; :meth:`sync` is the machine-crash durability point the fsync
    policy controls.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_RDWR, 0o644)
        self.size = os.fstat(self._fd).st_size
        if self.size == 0:
            self.size += os.write(self._fd, _file_header())
        self._closed = False

    def append_record(self, payload: bytes, *, partial: int | None = None) -> int:
        """Append one framed record; returns bytes written.

        Args:
            partial: write only the first ``partial`` bytes of the framed
                record — the fault harness's torn-write injection (a real
                crash mid ``write`` leaves exactly this shape on disk).
        """
        framed = frame_record(payload)
        if partial is not None:
            framed = framed[: max(1, min(partial, len(framed)))]
        written = os.write(self._fd, framed)
        self.size += written
        return written

    def sync(self) -> None:
        os.fsync(self._fd)

    def reset(self) -> None:
        """Truncate back to the header (after a snapshot compaction)."""
        os.ftruncate(self._fd, _HEADER_LEN)
        self.size = _HEADER_LEN

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            os.close(self._fd)

    # ------------------------------------------------------------------
    @staticmethod
    def scan(path: str) -> tuple[list[bytes], int]:
        """Read every intact record payload from ``path``.

        Returns ``(payloads, torn_bytes)``: the scan stops at the first
        frame that is truncated or fails its CRC, and ``torn_bytes`` is how
        much tail was discarded (0 for a clean log).  A missing or
        header-less file yields no records.
        """
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return [], 0
        if len(data) < _HEADER_LEN or data[: len(_WAL_MAGIC)] != _WAL_MAGIC:
            return [], len(data)
        try:
            version, offset = decode_uvarint(data, len(_WAL_MAGIC))
        except ValueError:
            return [], len(data)
        if version != _WAL_FORMAT:
            return [], len(data) - len(_WAL_MAGIC)
        payloads: list[bytes] = []
        while offset < len(data):
            start = offset
            try:
                length, pos = decode_uvarint(data, offset)
            except ValueError:
                break
            end = pos + length + _CRC_BYTES
            if end > len(data):
                break
            payload = data[pos : pos + length]
            crc = int.from_bytes(data[pos + length : end], "little")
            if zlib.crc32(payload) != crc:
                break
            payloads.append(payload)
            offset = end
        else:
            start = len(data)
        return payloads, len(data) - start if offset < len(data) else 0


# ----------------------------------------------------------------------
# Room directories
# ----------------------------------------------------------------------
def room_directory(data_dir: str, name: str) -> str:
    """The on-disk directory for room ``name`` (UTF-8 hex — reversible)."""
    return os.path.join(data_dir, name.encode("utf-8").hex())


def room_name_from_directory(dirname: str) -> str:
    """Inverse of :func:`room_directory` for one path component."""
    return bytes.fromhex(os.path.basename(dirname)).decode("utf-8")


def list_room_directories(data_dir: str) -> list[tuple[str, str]]:
    """Every recoverable room under ``data_dir`` as ``(name, path)`` pairs."""
    try:
        entries = sorted(os.listdir(data_dir))
    except FileNotFoundError:
        return []
    rooms: list[tuple[str, str]] = []
    for entry in entries:
        path = os.path.join(data_dir, entry)
        if not os.path.isdir(path):
            continue
        try:
            name = room_name_from_directory(entry)
        except ValueError:
            continue
        rooms.append((name, path))
    return rooms


class RoomStorage:
    """One room's durable state: a WAL plus a compacted snapshot file."""

    def __init__(
        self,
        directory: str,
        *,
        options: DurabilityOptions | None = None,
    ) -> None:
        self.directory = directory
        self.options = options or DurabilityOptions()
        os.makedirs(directory, exist_ok=True)
        self.wal = WriteAheadLog(os.path.join(directory, WAL_FILENAME))
        self.snapshot_path = os.path.join(directory, SNAPSHOT_FILENAME)
        self.stats = WalStats()
        self._dirty = False
        self._records_since_compaction = 0
        self._closed = False

    # ------------------------------------------------------------------
    def append(self, events: list[RemoteEvent], *, torn: bool = False) -> None:
        """Append one ingest batch as a WAL record.

        Args:
            torn: fault injection — write only a prefix of the framed record
                (the caller then crashes the server; recovery must shed the
                torn tail).
        """
        payload = encode_wal_record(events)
        if torn:
            framed_len = len(frame_record(payload))
            self.wal.append_record(payload, partial=framed_len // 2)
            self.stats.torn_writes += 1
            return
        written = self.wal.append_record(payload)
        self.stats.records_appended += 1
        self.stats.events_appended += len(events)
        self.stats.bytes_appended += written
        self._records_since_compaction += 1
        self._dirty = True
        if self.options.fsync_policy == "always":
            self.sync()

    def sync(self) -> None:
        """Fsync the WAL if anything was appended since the last sync."""
        if self._dirty and not self._closed:
            self.wal.sync()
            self.stats.fsyncs += 1
            self._dirty = False

    def maybe_compact(self, document: "Document") -> bool:
        """Compact when the WAL exceeds the configured thresholds."""
        if (
            self.wal.size < self.options.compact_min_bytes
            and self._records_since_compaction < self.options.compact_min_records
        ):
            return False
        self.compact(document)
        return True

    def compact(self, document: "Document") -> None:
        """Write a full snapshot (graph + final text) and reset the WAL.

        The snapshot lands via temp-file + ``os.replace`` so a crash during
        compaction leaves either the old or the new snapshot, never a torn
        one; a crash *between* the replace and the WAL reset leaves
        duplicate spans in the log, which recovery dedups.
        """
        data = encode_event_graph_v3(
            document.oplog.graph,
            ContainerOptions(include_snapshot=True, final_text=document.text),
        )
        tmp_path = self.snapshot_path + ".tmp"
        fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp_path, self.snapshot_path)
        self.wal.reset()
        self._records_since_compaction = 0
        self._dirty = False
        self.stats.compactions += 1

    def close(self, *, document: "Document | None" = None) -> None:
        """Clean shutdown: final sync (and snapshot, when configured)."""
        if self._closed:
            return
        if document is not None and self.options.compact_on_close:
            self.compact(document)
        self.sync()
        self._closed = True
        self.wal.close()

    def abandon(self) -> None:
        """Crash-style close: release the descriptor without syncing or
        compacting — whatever ``write`` already handed the OS survives,
        nothing else does."""
        if not self._closed:
            self._closed = True
            self.wal.close()


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
def graph_to_remote_events(graph: "EventGraph") -> list[RemoteEvent]:
    """A decoded event graph as portable events (id-based parents)."""
    return [
        RemoteEvent(
            id=event.id,
            parents=tuple(graph.dependency_id(p) for p in event.parents),
            op=event.op,
        )
        for event in graph.events()
    ]


def recover_document(
    directory: str,
    agent: str,
    document_options: dict | None = None,
) -> "tuple[Document, RecoveryInfo]":
    """Rebuild a room's server replica from snapshot + WAL tail.

    Every batch — the snapshot's events and each surviving WAL record — is
    routed through a :class:`CausalBuffer`, so duplicate spans (a crash
    between snapshot replace and WAL reset, or overlapping re-carved runs)
    dedup exactly like reconnect replays do on the live path.  A torn or
    corrupt final record is discarded and reported, never decoded.
    """
    from ..core.document import Document

    document = Document(agent, **(document_options or {}))
    info = RecoveryInfo()
    buffer = CausalBuffer(deliver_batch=document.apply_remote_events)

    try:
        with open(os.path.join(directory, SNAPSHOT_FILENAME), "rb") as fh:
            snapshot_data = fh.read()
    except FileNotFoundError:
        snapshot_data = None
    if snapshot_data is not None:
        # Sniffs the magic: rooms compacted before the v3 container still
        # recover (v2 is a read-only legacy format).
        decoded = decode_file(snapshot_data)
        events = graph_to_remote_events(decoded.graph)
        buffer.receive_batch(events)
        info.snapshot_loaded = True
        info.snapshot_events = len(events)
        info.snapshot_text_verified = (
            decoded.snapshot is not None and decoded.snapshot == document.text
        )

    payloads, torn_bytes = WriteAheadLog.scan(os.path.join(directory, WAL_FILENAME))
    info.torn_bytes_dropped = torn_bytes
    for payload in payloads:
        batch = decode_wal_record(payload)
        buffer.receive_batch(batch)
        info.wal_records += 1
        info.wal_events += len(batch)
    info.pending_after_recovery = buffer.pending_count
    return document, info
