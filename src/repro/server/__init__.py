"""Real-time collaboration server (asyncio WebSockets + HTTP long-polling).

This package turns the in-process machinery — :class:`~repro.core.document.Document`,
``export_since_seq`` suffix deltas and :class:`~repro.network.causal_broadcast.CausalBuffer`
batch delivery — into a network service:

* :mod:`repro.server.protocol` — the JSON message schema (hello / welcome /
  delta / presence / error / bye) shared by both transports, with structured
  rejection of malformed frames.
* :mod:`repro.server.wire` — a minimal HTTP/1.1 request reader and an RFC 6455
  WebSocket implementation over asyncio streams (no third-party deps).
* :mod:`repro.server.session` — per-document rooms and per-connection
  sessions; every connection owns an outbound :class:`CausalBuffer`, so batch
  delivery and re-carve-proof dedup work exactly as they do in the simulator.
* :mod:`repro.server.app` — :class:`CollabServer`, the asyncio server that
  speaks WebSockets on the fast path and degrades to HTTP long-polling
  (cursor presence disabled there, like sysreptor's fallback).
* :mod:`repro.server.loadgen` — a load-generator client that replays
  trace-suite sessions over real sockets and measures delivery latency.
* :mod:`repro.server.wal` — crash-safe durable rooms: a varint-framed,
  CRC-guarded write-ahead log per room with group-commit fsync, snapshot
  compaction and torn-tail-tolerant recovery.

Run a standalone server with ``python -m repro.server``.
"""

from .app import CollabServer
from .loadgen import (
    LoadgenResult,
    ReconnectPolicy,
    run_loadgen,
    run_loadgen_sync,
    run_trace_replay,
)
from .protocol import ProtocolError, decode_frame, encode_frame
from .session import DocumentRoom, Session
from .wal import DurabilityOptions, RecoveryInfo, RoomStorage, recover_document

__all__ = [
    "CollabServer",
    "DocumentRoom",
    "Session",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "LoadgenResult",
    "ReconnectPolicy",
    "DurabilityOptions",
    "RecoveryInfo",
    "RoomStorage",
    "recover_document",
    "run_loadgen",
    "run_loadgen_sync",
    "run_trace_replay",
]
