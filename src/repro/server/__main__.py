"""Run a standalone collaboration server: ``python -m repro.server``."""

from __future__ import annotations

import argparse
import asyncio

from .app import CollabServer
from .wal import DurabilityOptions


def main() -> None:
    parser = argparse.ArgumentParser(description="repro collaboration server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8760)
    parser.add_argument(
        "--data-dir",
        default=None,
        help="directory for durable rooms (per-room WAL + snapshots); "
        "omit for in-memory rooms",
    )
    parser.add_argument(
        "--fsync",
        choices=("none", "group", "always"),
        default="group",
        help="WAL fsync policy when --data-dir is set (default: group commit)",
    )
    args = parser.parse_args()

    async def serve() -> None:
        server = CollabServer(
            args.host,
            args.port,
            data_dir=args.data_dir,
            durability=DurabilityOptions(fsync_policy=args.fsync),
        )
        await server.start()
        durable = f", rooms persisted to {args.data_dir}" if args.data_dir else ""
        print(
            f"serving on ws://{args.host}:{server.port}/v1/ws{durable} "
            "(Ctrl-C to stop)"
        )
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
