"""Run a standalone collaboration server: ``python -m repro.server``."""

from __future__ import annotations

import argparse
import asyncio

from .app import CollabServer


def main() -> None:
    parser = argparse.ArgumentParser(description="repro collaboration server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8760)
    args = parser.parse_args()

    async def serve() -> None:
        server = CollabServer(args.host, args.port)
        await server.start()
        print(f"serving on ws://{args.host}:{server.port}/v1/ws (Ctrl-C to stop)")
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
