"""Transport plumbing: minimal HTTP/1.1 parsing and RFC 6455 WebSockets.

The container this reproduction runs in has no third-party networking
packages, so the server speaks HTTP and WebSockets directly over
``asyncio`` streams.  Only the subset the collaboration protocol needs is
implemented:

* one HTTP request/response exchange per connection for the long-polling
  fallback (long-poll clients open a fresh connection per round anyway);
* the WebSocket handshake (``Sec-WebSocket-Accept``) and data framing —
  text/binary/ping/pong/close opcodes, client-side masking, fragmented
  messages — enough for full-duplex JSON frames.

The frame codec is exposed as pure functions (:func:`build_ws_frame`,
:func:`parse_ws_frame_header`) so the protocol tests can exercise it without
sockets.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import struct
from typing import Any
from urllib.parse import parse_qs, urlsplit

__all__ = [
    "HttpRequest",
    "read_http_request",
    "http_response",
    "websocket_accept_key",
    "build_ws_frame",
    "parse_ws_frame_header",
    "WebSocketConnection",
    "server_websocket_handshake",
    "connect_websocket",
    "OP_TEXT",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
]

_WS_MAGIC = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"
_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_WS_PAYLOAD = 8 * 1024 * 1024

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA


class HttpRequest:
    """One parsed HTTP request (method, target, headers, body)."""

    __slots__ = ("method", "target", "path", "query", "headers", "body")

    def __init__(self, method: str, target: str, headers: dict[str, str], body: bytes) -> None:
        self.method = method
        self.target = target
        split = urlsplit(target)
        self.path = split.path
        #: Query params, first value wins (the fallback endpoints use scalars).
        self.query = {k: v[0] for k, v in parse_qs(split.query).items()}
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        """The body parsed as JSON (raises ``ValueError`` on garbage)."""
        return json.loads(self.body.decode("utf-8"))

    @property
    def wants_websocket(self) -> bool:
        return (
            "websocket" in self.headers.get("upgrade", "").lower()
            and "upgrade" in self.headers.get("connection", "").lower()
        )


async def read_http_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Read one HTTP/1.1 request; ``None`` on EOF or a malformed preamble."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    except asyncio.LimitOverrunError:
        return None
    if len(head) > _MAX_HEADER_BYTES:
        return None
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        return None
    method, target, _http_version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > _MAX_BODY_BYTES:
        return None
    body = await reader.readexactly(length) if length else b""
    return HttpRequest(method.upper(), target, headers, body)


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    101: "Switching Protocols",
}


def http_response(
    status: int,
    body: bytes | str = b"",
    *,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Serialise one HTTP/1.1 response (connection: close)."""
    if isinstance(body, str):
        body = body.encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


# ----------------------------------------------------------------------
# RFC 6455 framing
# ----------------------------------------------------------------------
def websocket_accept_key(client_key: str) -> str:
    """``Sec-WebSocket-Accept`` for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((client_key + _WS_MAGIC).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def _mask_payload(payload: bytes, mask: bytes) -> bytes:
    # XOR with the 4-byte mask, vectorised via int arithmetic.
    if not payload:
        return payload
    repeated = (mask * (len(payload) // 4 + 1))[: len(payload)]
    return (
        int.from_bytes(payload, "big") ^ int.from_bytes(repeated, "big")
    ).to_bytes(len(payload), "big")


def build_ws_frame(opcode: int, payload: bytes, *, mask: bool = False, fin: bool = True) -> bytes:
    """Serialise one WebSocket frame (client frames must set ``mask``)."""
    header = bytearray([(0x80 if fin else 0) | opcode])
    mask_bit = 0x80 if mask else 0
    length = len(payload)
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if mask:
        mask_key = os.urandom(4)
        header += mask_key
        payload = _mask_payload(payload, mask_key)
    return bytes(header) + payload


def parse_ws_frame_header(data: bytes) -> tuple[int, bool, int, bytes | None, int] | None:
    """Parse a frame header from ``data``.

    Returns ``(opcode, fin, payload_length, mask_key, header_size)`` or
    ``None`` if more bytes are needed.  Used by the tests to exercise the
    codec without a socket; the connection class reads incrementally instead.
    """
    if len(data) < 2:
        return None
    fin = bool(data[0] & 0x80)
    opcode = data[0] & 0x0F
    masked = bool(data[1] & 0x80)
    length = data[1] & 0x7F
    offset = 2
    if length == 126:
        if len(data) < offset + 2:
            return None
        length = struct.unpack_from(">H", data, offset)[0]
        offset += 2
    elif length == 127:
        if len(data) < offset + 8:
            return None
        length = struct.unpack_from(">Q", data, offset)[0]
        offset += 8
    mask_key = None
    if masked:
        if len(data) < offset + 4:
            return None
        mask_key = data[offset : offset + 4]
        offset += 4
    return opcode, fin, length, mask_key, offset


class WebSocketConnection:
    """A WebSocket over asyncio streams, after the handshake.

    Args:
        reader / writer: the connection's streams.
        mask_outgoing: ``True`` on the client side (RFC 6455 requires client
            frames to be masked; server frames must not be).
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        mask_outgoing: bool,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._mask = mask_outgoing
        self.closed = False

    async def send_text(self, text: str) -> None:
        await self._send(OP_TEXT, text.encode("utf-8"))

    async def _send(self, opcode: int, payload: bytes) -> None:
        if self.closed:
            raise ConnectionError("websocket is closed")
        self._writer.write(build_ws_frame(opcode, payload, mask=self._mask))
        await self._writer.drain()

    async def _read_frame(self) -> tuple[int, bool, bytes] | None:
        try:
            first = await self._reader.readexactly(2)
        except asyncio.IncompleteReadError:
            return None
        fin = bool(first[0] & 0x80)
        opcode = first[0] & 0x0F
        masked = bool(first[1] & 0x80)
        length = first[1] & 0x7F
        if length == 126:
            length = struct.unpack(">H", await self._reader.readexactly(2))[0]
        elif length == 127:
            length = struct.unpack(">Q", await self._reader.readexactly(8))[0]
        if length > _MAX_WS_PAYLOAD:
            raise ConnectionError(f"websocket frame of {length} bytes exceeds the limit")
        mask_key = await self._reader.readexactly(4) if masked else None
        payload = await self._reader.readexactly(length) if length else b""
        if mask_key is not None:
            payload = _mask_payload(payload, mask_key)
        return opcode, fin, payload

    async def recv_text(self) -> str | None:
        """The next text/binary message, transparently handling control
        frames and fragmentation.  ``None`` once the peer closes."""
        buffer = b""
        while True:
            try:
                frame = await self._read_frame()
            except (asyncio.IncompleteReadError, ConnectionError):
                # Monotonic latch: closed only transitions False -> True, so a
                # concurrent close() writes the same value — no lost update.
                self.closed = True
                return None
            if frame is None:
                self.closed = True  # monotonic latch: see comment above
                return None
            opcode, fin, payload = frame
            if opcode == OP_PING:
                try:
                    await self._send(OP_PONG, payload)
                except ConnectionError:
                    return None
                continue
            if opcode == OP_PONG:
                continue
            if opcode == OP_CLOSE:
                if not self.closed:
                    self.closed = True
                    try:
                        self._writer.write(
                            build_ws_frame(OP_CLOSE, payload[:2], mask=self._mask)
                        )
                        await self._writer.drain()
                    except (ConnectionError, RuntimeError):
                        pass
                return None
            if opcode in (OP_TEXT, OP_BINARY, OP_CONT):
                buffer += payload
                if fin:
                    return buffer.decode("utf-8", errors="replace")
                continue
            # Unknown opcode: skip the frame rather than killing the link.

    async def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self._writer.write(build_ws_frame(OP_CLOSE, b"", mask=self._mask))
                await self._writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass


async def server_websocket_handshake(
    writer: asyncio.StreamWriter, request: HttpRequest
) -> bool:
    """Answer a WebSocket upgrade request; ``False`` if it was malformed."""
    key = request.headers.get("sec-websocket-key")
    if not key:
        writer.write(http_response(400, json.dumps({"error": "missing Sec-WebSocket-Key"})))
        await writer.drain()
        return False
    writer.write(
        (
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {websocket_accept_key(key)}\r\n"
            "\r\n"
        ).encode("latin-1")
    )
    await writer.drain()
    return True


async def connect_websocket(host: str, port: int, path: str) -> WebSocketConnection:
    """Open a client WebSocket to ``ws://host:port{path}``."""
    reader, writer = await asyncio.open_connection(host, port)
    key = base64.b64encode(os.urandom(16)).decode("ascii")
    writer.write(
        (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            "\r\n"
        ).encode("latin-1")
    )
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
    if " 101 " not in f"{status_line} ":
        writer.close()
        raise ConnectionError(f"websocket handshake rejected: {status_line}")
    expected = websocket_accept_key(key)
    for line in head.decode("latin-1").split("\r\n")[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "sec-websocket-accept" and value.strip() != expected:
            writer.close()
            raise ConnectionError("websocket handshake returned a bad accept key")
    return WebSocketConnection(reader, writer, mask_outgoing=True)
