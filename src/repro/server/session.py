"""Server-side state: documents as rooms, connections as sessions.

A :class:`DocumentRoom` owns one live server replica
(:class:`~repro.core.document.Document`) plus an **inbound**
:class:`~repro.network.causal_broadcast.CausalBuffer`: every delta a client
uploads goes through the buffer, which re-orders out-of-causal-order arrivals,
drops duplicates (reconnect replays, however they are re-carved) and hands the
document one causally ordered batch per upload — the same amortisation the
network simulator's relay hub enjoys.

Each connection is a :class:`Session` with an **outbound** ``CausalBuffer`` of
its own, seeded with the spans the client already has (computed from the
``hello`` version's ancestor closure).  Everything the room ingests is offered
to every session; a session's buffer dedups what that client already holds —
its own uploads, catch-up overlap after a reconnect, re-carved duplicates —
and frames the rest as ``delta`` messages on the session's queue.  The queue
is transport-agnostic: the WebSocket handler pumps it over the socket, the
long-poll handler drains it per poll.

Presence (cursors as id-frontier positions) rides the same queues but is only
delivered to WebSocket sessions: the long-polling fallback skips cursor
traffic, exactly like sysreptor's production fallback.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Iterable

from ..core.document import Document
from ..core.ids import EventId
from ..core.oplog import RemoteEvent
from ..faults import InjectedCrash
from ..history import Version
from ..network.causal_broadcast import CausalBuffer
from .protocol import bye_frame, delta_frame, presence_frame, welcome_frame
from .wal import RoomStorage

__all__ = ["Session", "DocumentRoom", "RoomStats"]

#: Idle seconds after which a long-poll session is reaped (a vanished poll
#: client never says ``bye``; WebSocket sessions die with their socket).
POLL_SESSION_TIMEOUT = 60.0

_session_counter = itertools.count(1)


@dataclass(slots=True)
class RoomStats:
    """Counters for one room (exposed via the ``/v1/stats`` endpoint)."""

    events_ingested: int = 0
    chars_ingested: int = 0
    deltas_received: int = 0
    duplicates_dropped: int = 0
    frames_queued: int = 0
    presence_updates: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0
    #: Frames still queued when a disconnecting socket's final flush gave up
    #: (slow socket); the client recovers them by reconnect + replay.
    frames_abandoned: int = 0
    #: Sessions dropped by backpressure shedding (queue over the cap).
    sessions_shed: int = 0
    #: Frames discarded when those sessions were shed.
    frames_shed: int = 0
    #: Idle long-poll sessions reclaimed by the periodic reaper.
    sessions_reaped: int = 0


class Session:
    """One client connection (WebSocket or long-polling) to one room.

    Args:
        room: the owning :class:`DocumentRoom`.
        agent: the client's replica name (as announced in ``hello``).
        transport: ``"ws"`` or ``"poll"``; poll sessions are excluded from
            presence traffic.
        max_queued_frames: backpressure cap — when the queue outgrows it the
            session is **shed** (queue dropped, one resumable ``bye`` queued,
            session closed) instead of growing without bound behind a slow
            consumer.  0 disables shedding.
    """

    def __init__(
        self,
        room: "DocumentRoom",
        agent: str,
        transport: str,
        *,
        max_queued_frames: int = 0,
    ) -> None:
        self.id = f"s{next(_session_counter)}"
        self.room = room
        self.agent = agent
        self.transport = transport
        self.max_queued_frames = max_queued_frames
        self.closed = False
        #: True once backpressure shed this session (it got a resumable bye).
        self.shed = False
        self.last_seen = time.monotonic()
        #: Frames waiting for this client, in delivery order.
        self._queue: list[dict[str, Any]] = []
        self._wakeup = asyncio.Event()
        #: Outbound causal buffer: offered every room ingest, delivers (as
        #: one ``delta`` frame per batch) only what this client is missing.
        self.outbound = CausalBuffer(deliver_batch=self._queue_delta)

    # ------------------------------------------------------------------
    @property
    def wants_presence(self) -> bool:
        return self.transport == "ws"

    @property
    def pending_count(self) -> int:
        """Events parked in the outbound buffer (0 after quiescence)."""
        return self.outbound.pending_count

    @property
    def queued_frames(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    def seed_known(self, spans: Iterable[tuple[EventId, int]]) -> None:
        """Mark the spans the client already holds (its ``hello`` version's
        ancestor closure), so catch-up and live traffic dedup against them."""
        self.outbound.mark_known_spans(spans)

    def mark_uploaded(self, events: Iterable[RemoteEvent]) -> None:
        """Record that the client itself sent ``events``: the room's ingest
        loop will offer them back, and the buffer must treat the echo as
        already-known (a clean no-op, whatever the carving)."""
        self.outbound.mark_known_spans((e.id, e.op.length) for e in events)

    def offer_events(self, events: list[RemoteEvent]) -> None:
        """Offer newly ingested room events; only the genuinely new ones (for
        this client) are framed and queued."""
        self.outbound.receive_batch(events)

    def queue_frame(self, frame: dict[str, Any]) -> None:
        """Queue one non-delta frame (welcome / presence / error / bye)."""
        self._queue.append(frame)
        self.room.stats.frames_queued += 1
        if (
            self.max_queued_frames
            and not self.shed
            and len(self._queue) > self.max_queued_frames
        ):
            self._shed()
        self._wakeup.set()

    def _shed(self) -> None:
        """Backpressure: this client fell too far behind — drop its queue,
        hand it one structured *resumable* ``bye`` and close the session.

        The client's reconnect path replays from its locally applied version,
        so nothing is lost; the room only sheds the memory.  The transport
        handler observes ``closed``/``shed`` and performs the actual
        ``disconnect`` — shedding fires inside the ingest fan-out, which is
        iterating ``room.sessions``.
        """
        self.room.stats.frames_shed += len(self._queue)
        self.room.stats.sessions_shed += 1
        self._queue.clear()
        self.shed = True
        self._queue.append(bye_frame(reason="slow-consumer", resume=True))
        self.close()

    def requeue(self, frames: list[dict[str, Any]]) -> None:
        """Put undelivered frames back at the queue head (a flush failed
        mid-way); they are retried or counted as abandoned by the caller."""
        if frames:
            self._queue[0:0] = frames
            self._wakeup.set()

    def _queue_delta(self, events: list[RemoteEvent]) -> None:
        self.queue_frame(delta_frame(events))

    # ------------------------------------------------------------------
    def drain(self) -> list[dict[str, Any]]:
        """Take every queued frame (long-poll response / WS pump step)."""
        self.last_seen = time.monotonic()
        frames = self._queue
        self._queue = []
        self._wakeup.clear()
        return frames

    async def wait_for_frames(self, timeout: float) -> list[dict[str, Any]]:
        """Wait up to ``timeout`` seconds for frames, then drain.

        Returns an empty list on timeout — the long-poll contract: the client
        immediately re-polls.
        """
        if not self._queue:
            try:
                await asyncio.wait_for(self._wakeup.wait(), timeout)
            except asyncio.TimeoutError:
                self.last_seen = time.monotonic()
                return []
        return self.drain()

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._wakeup.set()


class DocumentRoom:
    """One hosted document plus everything connected to it.

    Args:
        document: a pre-built server replica (the recovery path passes the
            document rebuilt from snapshot + WAL); default is a fresh one.
        storage: a :class:`~repro.server.wal.RoomStorage` — every ingested
            batch is WAL-appended *before* it is fanned out to sessions.
        faults: a :class:`~repro.faults.FaultInjector` consulted for injected
            crash points around the WAL append.
        on_crash: called (synchronously) when an injected crash fires, before
            :class:`~repro.faults.InjectedCrash` is raised — the server binds
            this to its abrupt-teardown path.
        max_queued_frames: per-session backpressure cap (see
            :class:`Session`).
    """

    def __init__(
        self,
        name: str,
        document_options: dict | None = None,
        *,
        document: Document | None = None,
        storage: RoomStorage | None = None,
        faults: Any | None = None,
        on_crash: Callable[[], None] | None = None,
        max_queued_frames: int = 0,
    ) -> None:
        self.name = name
        if document is None:
            document = Document(f"server::{name}", **(document_options or {}))
        self.document = document
        self.storage = storage
        self.faults = faults
        self.on_crash = on_crash
        self.max_queued_frames = max_queued_frames
        self.sessions: dict[str, Session] = {}
        #: Last announced cursor per agent (id-frontier positions).
        self.presence: dict[str, tuple[EventId, ...]] = {}
        self.stats = RoomStats()
        #: Inbound causal buffer: uploads from every session funnel through
        #: here, so the document sees causally ordered, deduplicated batches.
        self.inbound = CausalBuffer(deliver_batch=self._ingest)
        # A room can be created over a pre-loaded document; everything already
        # in the graph counts as known.
        self._seed_inbound()

    def _seed_inbound(self) -> None:
        graph = self.document.oplog.graph
        self.inbound.mark_known_spans(
            (graph[i].id, graph[i].num_chars) for i in range(len(graph))
        )

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def connect(self, agent: str, transport: str, version_ids: Iterable[EventId]) -> Session:
        """Open a session: seed its dedup state from the client's version and
        queue ``welcome`` + catch-up ``delta`` + current presence frames."""
        self.reap_idle_sessions()
        session = Session(
            self, agent, transport, max_queued_frames=self.max_queued_frames
        )
        self.sessions[session.id] = session
        self.stats.sessions_opened += 1
        version_ids = tuple(version_ids)
        session.seed_known(self._spans_at(version_ids))
        session.queue_frame(
            welcome_frame(self.name, session.id, self.document.version().ids)
        )
        catchup = self.document.events_since(version_ids)
        if catchup:
            session.offer_events(catchup)
        if session.wants_presence:
            for other_agent, cursor in self.presence.items():
                if other_agent != agent:
                    session.queue_frame(presence_frame(other_agent, cursor))
        return session

    def disconnect(self, session: Session) -> None:
        if self.sessions.pop(session.id, None) is not None:
            self.stats.sessions_closed += 1
        session.close()
        self.presence.pop(session.agent, None)

    def reap_idle_sessions(self, timeout: float = POLL_SESSION_TIMEOUT) -> list[Session]:
        """Drop long-poll sessions that stopped polling (vanished clients).

        Returns the reaped sessions so the server can purge its own routing
        entries for them (the periodic reaper task does exactly that).
        """
        deadline = time.monotonic() - timeout
        reaped = []
        for session in list(self.sessions.values()):
            if session.transport == "poll" and session.last_seen < deadline:
                self.disconnect(session)
                self.stats.sessions_reaped += 1
                reaped.append(session)
        return reaped

    def _spans_at(self, version_ids: tuple[EventId, ...]) -> list[tuple[EventId, int]]:
        """The id spans covered by ``Events(version)`` — what a client at that
        version already holds.  Unknown ids (the client is ahead of us on a
        branch) contribute nothing; its uploads will fill the gap."""
        graph = self.document.oplog.graph
        known = [eid for eid in version_ids if graph.contains_id(eid)]
        if not known:
            return []
        indices = tuple(sorted({graph.dependency_index(eid) for eid in known}))
        closure = self.document.oplog.causal.ancestors(indices)
        return [(graph[i].id, graph[i].num_chars) for i in closure]

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def receive_delta(self, session: Session, events: list[RemoteEvent]) -> int:
        """Ingest one uploaded delta; returns how many events reached the
        document (0 for a pure duplicate replay)."""
        self.stats.deltas_received += 1
        session.last_seen = time.monotonic()
        session.mark_uploaded(events)
        before = self.inbound.stats.duplicates
        delivered = self.inbound.receive_batch(events)
        self.stats.duplicates_dropped += self.inbound.stats.duplicates - before
        return delivered

    def _ingest(self, events: list[RemoteEvent]) -> None:
        """Inbound-buffer delivery: apply one causally ordered batch to the
        server replica, WAL-append it, then fan it out to every session's
        outbound buffer.

        The write-ahead append happens *before* any session sees the batch:
        a crash after the append loses only unacknowledged fan-out (clients
        re-fetch on reconnect), never durable state a client observed.
        Injected crash points fire around the append — ``before-wal`` loses
        the batch, ``torn-wal`` truncates its record mid-write, ``after-wal``
        crashes with the record intact.
        """
        self.document.apply_remote_events(events)
        self.stats.events_ingested += len(events)
        self.stats.chars_ingested += sum(e.op.length for e in events)
        crash = self.faults.crash_due() if self.faults is not None else None
        if crash != "before-wal" and self.storage is not None:
            self.storage.append(events, torn=crash == "torn-wal")
            if crash is None:
                self.storage.maybe_compact(self.document)
        if crash is not None:
            if self.on_crash is not None:
                self.on_crash()
            raise InjectedCrash(f"injected server crash at {crash}")
        for session in self.sessions.values():
            if not session.closed:
                session.offer_events(events)

    def receive_presence(self, session: Session, cursor: tuple[EventId, ...]) -> None:
        """Update an agent's cursor and fan it out to WebSocket sessions."""
        self.stats.presence_updates += 1
        session.last_seen = time.monotonic()
        self.presence[session.agent] = cursor
        frame = presence_frame(session.agent, cursor)
        for other in self.sessions.values():
            if other is not session and other.wants_presence and not other.closed:
                other.queue_frame(frame)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def text(self) -> str:
        return self.document.text

    def version(self) -> Version:
        return self.document.version()

    def buffer_pending(self) -> dict[str, int]:
        """Parked-event counts for the leak check: all zero once the room has
        quiesced (no in-flight uploads, every session caught up)."""
        pending = {"inbound": self.inbound.pending_count}
        for session in self.sessions.values():
            pending[f"outbound:{session.id}"] = session.pending_count
        return pending

    def summary(self) -> dict[str, Any]:
        summary = {
            "doc": self.name,
            "sessions": len(self.sessions),
            "run_events": len(self.document.oplog.graph),
            "chars": self.document.oplog.graph.num_chars,
            "text_len": len(self.document.rope),
            "version": [[a, s] for a, s in self.document.version().as_tuples()],
            "buffer_pending": self.buffer_pending(),
            "stats": asdict(self.stats),
        }
        if self.storage is not None:
            summary["durability"] = self.storage.stats.as_dict()
        return summary
