"""The collaboration server: WebSockets on the fast path, long-polling as
fallback.

:class:`CollabServer` listens on one TCP port and routes by request shape:

* ``GET /v1/ws`` with an ``Upgrade: websocket`` header — the fast path.  The
  first frame must be ``hello``; after that the connection is full duplex:
  uploaded ``delta``/``presence`` frames feed the room, and a pump task
  drains the session queue to the socket as frames arrive.
* ``POST /v1/connect`` / ``POST /v1/send`` / ``GET /v1/poll`` — the HTTP
  long-polling fallback.  The same session machinery, but frames accumulate
  on the session queue until the next poll; presence is disabled (the
  fallback trades cursor liveness for transport simplicity, as production
  systems do).
* ``GET /v1/text`` and ``GET /v1/stats`` — read-only introspection used by
  the load generator's convergence oracle and the leak checks.

A malformed frame is answered with a structured ``error`` frame and the
connection (or poll exchange) stays usable — a buggy client cannot take down
its own session, let alone the server.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from ..faults import FaultInjector, FaultPlan, InjectedCrash
from .protocol import (
    ProtocolError,
    ack_frame,
    bye_frame,
    decode_frame,
    encode_frame,
    error_frame,
)
from .session import POLL_SESSION_TIMEOUT, DocumentRoom, Session
from .wal import (
    DurabilityOptions,
    RecoveryInfo,
    RoomStorage,
    list_room_directories,
    recover_document,
    room_directory,
)
from .wire import (
    HttpRequest,
    WebSocketConnection,
    http_response,
    read_http_request,
    server_websocket_handshake,
)

__all__ = ["CollabServer"]

#: Cap on how long one ``/v1/poll`` request may hang (seconds).
MAX_POLL_WAIT = 30.0


class CollabServer:
    """An asyncio collaboration server hosting any number of documents.

    Rooms are created on first use: connecting to document ``"notes"``
    creates a server replica for it.  ``port=0`` (the default) picks an
    ephemeral port; read :attr:`port` after :meth:`start`.

    Usage::

        server = CollabServer()
        await server.start()
        ...  # connect clients to ("127.0.0.1", server.port)
        await server.stop()

    Also usable as an async context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        document_options: dict | None = None,
        data_dir: str | None = None,
        durability: DurabilityOptions | None = None,
        faults: FaultPlan | FaultInjector | None = None,
        max_queued_frames: int = 0,
        reap_interval: float = 5.0,
        poll_session_timeout: float = POLL_SESSION_TIMEOUT,
        drain_timeout: float = 1.0,
    ) -> None:
        """
        Args:
            data_dir: root directory for durable rooms (WAL + snapshots);
                ``None`` keeps the server purely in-memory.  On
                :meth:`start`, every room found under it is recovered.
            durability: fsync/group-commit/compaction policy for durable
                rooms (:class:`~repro.server.wal.DurabilityOptions`).
            faults: a seeded :class:`~repro.faults.FaultPlan` (or a
                pre-built injector) whose schedule is injected into the
                transports and ingest path.  ``None`` injects nothing.
            max_queued_frames: per-session backpressure cap; a session whose
                queue outgrows it is shed with a resumable ``bye``
                (0 = unbounded).
            reap_interval: seconds between periodic idle-session sweeps.
            poll_session_timeout: idle seconds after which a long-poll
                session is reaped.
            drain_timeout: bound on the final WS flush before remaining
                frames are abandoned (counted in ``RoomStats``).
        """
        self.host = host
        self.port = port
        self.document_options = dict(document_options or {})
        self.data_dir = data_dir
        self.durability = durability or DurabilityOptions()
        self.faults = faults.injector() if isinstance(faults, FaultPlan) else faults
        self.max_queued_frames = max_queued_frames
        self.reap_interval = reap_interval
        self.poll_session_timeout = poll_session_timeout
        self.drain_timeout = drain_timeout
        self.rooms: dict[str, DocumentRoom] = {}
        #: Per-room recovery report from the last :meth:`start` (empty for
        #: in-memory servers and rooms created fresh).
        self.recovery: dict[str, RecoveryInfo] = {}
        #: Session id -> (room, session), for poll routing.
        self._sessions: dict[str, tuple[DocumentRoom, Session]] = {}
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._reaper_task: asyncio.Task | None = None
        self._commit_task: asyncio.Task | None = None
        self._crash_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "CollabServer":
        if self._server is not None:
            raise RuntimeError("server already started")
        if self.data_dir is not None:
            self._recover_rooms()
        server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        if self._server is not None:
            # A concurrent start() won the race while we were suspended in
            # start_server(); keep the winner, release our socket.
            server.close()
            await server.wait_closed()
            raise RuntimeError("server already started")
        self._server = server
        # Resolving port=0 to the ephemerally bound port: the write is derived
        # from this call's own socket, and re-entry is guarded above.
        self.port = server.sockets[0].getsockname()[1]  # lint: disable=await-state-race
        # Background maintenance: the reaper reclaims abandoned long-poll
        # sessions even on an idle server; the group-commit task is the
        # durability heartbeat (fsync + compaction checks) for "group" mode.
        self._reaper_task = asyncio.create_task(self._reaper_loop())
        if self.data_dir is not None and self.durability.fsync_policy == "group":
            self._commit_task = asyncio.create_task(
                self._commit_loop(self.durability.group_interval)
            )
        return self

    async def stop(self) -> None:
        # Detach before the first await: a stop() that suspended holding the
        # server reference used to null self._server on resume, clobbering
        # (and leaking) a server started concurrently in the meantime.
        server, self._server = self._server, None
        reaper, self._reaper_task = self._reaper_task, None
        committer, self._commit_task = self._commit_task, None
        background = [t for t in (reaper, committer) if t is not None]
        for task in background:
            task.cancel()
        if background:
            await asyncio.gather(*background, return_exceptions=True)
        if server is not None:
            server.close()
            await server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        for room in self.rooms.values():
            for session in list(room.sessions.values()):
                room.disconnect(session)
            if room.storage is not None:
                # Clean shutdown: final fsync, plus a compaction when the
                # policy asks for one — the next start recovers instantly.
                room.storage.close(document=room.document)
        self._sessions.clear()

    async def crash(self) -> None:
        """Abrupt teardown — the fault harness's ``kill -9``.

        No final fsync, no compaction, no goodbyes: sessions and sockets are
        dropped, storage descriptors are released as-is.  Whatever the WAL's
        ``write`` calls already handed the OS survives for the next
        :meth:`start`; everything else is lost, exactly like a real crash.
        """
        server, self._server = self._server, None
        reaper, self._reaper_task = self._reaper_task, None
        committer, self._commit_task = self._commit_task, None
        background = [t for t in (reaper, committer) if t is not None]
        for task in background:
            task.cancel()
        if background:
            await asyncio.gather(*background, return_exceptions=True)
        if server is not None:
            server.close()
            await server.wait_closed()
        for room in self.rooms.values():
            if room.storage is not None:
                room.storage.abandon()
            for session in list(room.sessions.values()):
                room.disconnect(session)
        self._sessions.clear()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    def _begin_crash(self) -> None:
        """Injected-crash callback (sync): schedule the abrupt teardown."""
        if self._crash_task is None:
            self._crash_task = asyncio.get_running_loop().create_task(self.crash())

    async def __aenter__(self) -> "CollabServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def room(self, name: str) -> DocumentRoom:
        room = self.rooms.get(name)
        if room is None:
            room = self.rooms[name] = self._make_room(name)
        return room

    def _make_room(self, name: str, document=None) -> DocumentRoom:
        storage = None
        if self.data_dir is not None:
            storage = RoomStorage(
                room_directory(self.data_dir, name), options=self.durability
            )
        return DocumentRoom(
            name,
            self.document_options,
            document=document,
            storage=storage,
            faults=self.faults,
            on_crash=self._begin_crash,
            max_queued_frames=self.max_queued_frames,
        )

    def _recover_rooms(self) -> None:
        """Rebuild every room found under ``data_dir`` from snapshot + WAL
        tail (see :func:`~repro.server.wal.recover_document`)."""
        assert self.data_dir is not None
        for name, path in list_room_directories(self.data_dir):
            if name in self.rooms:
                continue
            document, info = recover_document(
                path, f"server::{name}", self.document_options
            )
            self.recovery[name] = info
            self.rooms[name] = self._make_room(name, document=document)

    # ------------------------------------------------------------------
    # Background maintenance
    # ------------------------------------------------------------------
    async def _reaper_loop(self) -> None:
        while True:
            await asyncio.sleep(self.reap_interval)
            self._reap_once()

    def _reap_once(self) -> None:
        """One sweep: reap idle long-poll sessions in every room, then purge
        routing entries whose sessions are fully gone — reaped sessions used
        to linger in the routing table forever."""
        for room in list(self.rooms.values()):
            for session in room.reap_idle_sessions(self.poll_session_timeout):
                self._sessions.pop(session.id, None)
        for sid, (room, session) in list(self._sessions.items()):
            if session.closed and sid not in room.sessions:
                self._sessions.pop(sid, None)

    async def _commit_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            for room in list(self.rooms.values()):
                storage = room.storage
                if storage is not None:
                    storage.sync()
                    storage.maybe_compact(room.document)

    # ------------------------------------------------------------------
    # Connection dispatch
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            request = await read_http_request(reader)
            if request is None:
                return
            if request.wants_websocket:
                await self._serve_websocket(reader, writer, request)
            else:
                await self._serve_http(writer, request)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Teardown (stop/crash) cancelled this connection mid-read; end
            # the task cleanly — asyncio.streams' connection_made callback
            # calls task.exception(), which *raises* for cancelled tasks and
            # would spam the log during every injected crash.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    # ------------------------------------------------------------------
    # WebSocket path
    # ------------------------------------------------------------------
    async def _serve_websocket(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request: HttpRequest,
    ) -> None:
        if not await server_websocket_handshake(writer, request):
            return
        ws = WebSocketConnection(reader, writer, mask_outgoing=False)
        hello = await self._expect_hello(ws)
        if hello is None:
            return
        room = self.room(hello["doc"])
        session = room.connect(hello["agent"], "ws", hello["version"])
        self._sessions[session.id] = (room, session)
        pump = asyncio.create_task(self._pump_session(ws, session))
        #: Frame parked by reorder injection, delivered after its successor.
        held: str | None = None
        try:
            while True:
                text = await ws.recv_text()
                if text is None:
                    if held is not None:
                        # The socket closed under a parked frame: flush it —
                        # reordering must never turn into a silent drop.
                        self._handle_ws_frame(room, session, held)
                        held = None
                    break
                texts = [text]
                if self.faults is not None:
                    fate = self.faults.inbound_fate()
                    if fate.cut:
                        raise InjectedCrash("injected connection cut")
                    if fate.delay:
                        await asyncio.sleep(fate.delay)
                    if fate.hold and held is None:
                        held = text
                        continue
                    texts *= fate.copies
                if held is not None:
                    # Adjacent-swap reorder: the parked frame lands after
                    # this one (the causal buffers absorb the inversion).
                    texts.append(held)
                    held = None
                stop = False
                for item in texts:
                    if not self._handle_ws_frame(room, session, item):
                        stop = True
                if stop:
                    break
        finally:
            room.disconnect(session)
            self._sessions.pop(session.id, None)
            try:
                # The session is closed, so the pump exits after one final
                # flush (bye / trailing errors).  Give the flush a bounded
                # window; anything a slow socket still holds afterwards is
                # requeued by the pump and *counted* below — never silently
                # dropped.
                await asyncio.wait_for(pump, timeout=self.drain_timeout)
            except (asyncio.TimeoutError, ConnectionError):
                pump.cancel()
                try:
                    await pump
                except (asyncio.CancelledError, ConnectionError):
                    pass
            abandoned = session.queued_frames
            if abandoned:
                room.stats.frames_abandoned += abandoned
            await ws.close()

    def _handle_ws_frame(self, room: DocumentRoom, session: Session, text: str) -> bool:
        """Process one inbound WS frame; returns False when the connection
        should wind down (client ``bye``)."""
        try:
            frame = decode_frame(text)
        except ProtocolError as exc:
            # Structured rejection; the connection stays up.
            session.queue_frame(error_frame(exc.code, exc.reason))
            return True
        if frame["type"] == "delta":
            room.receive_delta(session, frame["events"])
        elif frame["type"] == "presence":
            room.receive_presence(session, frame["cursor"])
        elif frame["type"] == "bye":
            session.queue_frame(bye_frame())
            return False
        else:
            session.queue_frame(
                error_frame(
                    "unexpected-type",
                    f"{frame['type']!r} frames are server-to-client",
                )
            )
        return True

    async def _expect_hello(self, ws: WebSocketConnection) -> dict[str, Any] | None:
        text = await ws.recv_text()
        if text is None:
            return None
        try:
            frame = decode_frame(text)
            if frame["type"] != "hello":
                raise ProtocolError("hello-required", "first frame must be hello")
        except ProtocolError as exc:
            try:
                await ws.send_text(encode_frame(error_frame(exc.code, exc.reason)))
            except ConnectionError:
                pass
            await ws.close()
            return None
        return frame

    async def _pump_session(self, ws: WebSocketConnection, session: Session) -> None:
        """Drain the session queue to the socket as frames arrive."""
        try:
            while not session.closed:
                frames = await session.wait_for_frames(timeout=30.0)
                await self._forward_frames(ws, session, frames)
            # Final flush (bye / trailing errors): per-frame sends, so
            # whatever a dead or slow socket rejects goes back on the queue
            # for the abandoned-frames accounting instead of vanishing.
            await self._forward_frames(ws, session, session.drain())
            if session.shed:
                # Backpressure shed: the resumable bye is out — cut the
                # socket so the read loop unwinds and the client's
                # reconnect path takes over.
                await ws.close()
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception:  # pragma: no cover - defensive; pump must not spin
            pass

    async def _forward_frames(
        self, ws: WebSocketConnection, session: Session, frames: list[dict[str, Any]]
    ) -> None:
        """Send ``frames`` one at a time, requeueing the unsent tail if the
        send fails or is cancelled mid-flush (drain-timeout accounting)."""
        try:
            while frames:
                if self.faults is not None:
                    delay = self.faults.outbound_delay(session.agent)
                    if delay:
                        await asyncio.sleep(delay)
                await ws.send_text(encode_frame(frames[0]))
                frames.pop(0)
        except BaseException:
            session.requeue(frames)
            raise

    # ------------------------------------------------------------------
    # HTTP fallback path
    # ------------------------------------------------------------------
    async def _serve_http(self, writer: asyncio.StreamWriter, request: HttpRequest) -> None:
        handler = {
            ("POST", "/v1/connect"): self._http_connect,
            ("POST", "/v1/send"): self._http_send,
            ("GET", "/v1/poll"): self._http_poll,
            ("GET", "/v1/text"): self._http_text,
            ("GET", "/v1/stats"): self._http_stats,
            ("GET", "/healthz"): self._http_health,
        }.get((request.method, request.path))
        if handler is None:
            response = http_response(
                404, json.dumps(error_frame("not-found", f"no route {request.method} {request.path}"))
            )
        else:
            response = await handler(request)
        writer.write(response)
        await writer.drain()

    async def _http_health(self, request: HttpRequest) -> bytes:
        return http_response(200, json.dumps({"ok": True, "docs": len(self.rooms)}))

    async def _http_connect(self, request: HttpRequest) -> bytes:
        try:
            frame = decode_frame(request.body)
            if frame["type"] != "hello":
                raise ProtocolError("hello-required", "connect body must be a hello frame")
        except ProtocolError as exc:
            return http_response(400, json.dumps(error_frame(exc.code, exc.reason)))
        room = self.room(frame["doc"])
        session = room.connect(frame["agent"], "poll", frame["version"])
        self._sessions[session.id] = (room, session)
        return http_response(200, json.dumps({"frames": session.drain()}, default=list))

    def _poll_session(
        self, request: HttpRequest, *, allow_closed: bool = False
    ) -> tuple[DocumentRoom, Session] | None:
        entry = self._sessions.get(request.query.get("session", ""))
        if entry is None or (entry[1].closed and not allow_closed):
            return None
        return entry

    async def _http_send(self, request: HttpRequest) -> bytes:
        entry = self._poll_session(request)
        if entry is None:
            return http_response(404, json.dumps(error_frame("unknown-session", "no such session")))
        room, session = entry
        try:
            body = request.json()
            frames = body.get("frames") if isinstance(body, dict) else None
            if not isinstance(frames, list):
                raise ProtocolError("bad-frame", "send body must be {'frames': [...]}")
            decoded = [decode_frame(json.dumps(f)) for f in frames]
        except (ValueError, ProtocolError) as exc:
            code = exc.code if isinstance(exc, ProtocolError) else "bad-json"
            return http_response(400, json.dumps(error_frame(code, str(exc))))
        if self.faults is not None and decoded:
            fate = self.faults.inbound_fate()
            if fate.cut:
                # Poll transport's connection cut: kill the session so the
                # client's reconnect path takes over (its events replay).
                room.disconnect(session)
                self._sessions.pop(session.id, None)
                return http_response(
                    503,
                    json.dumps(
                        error_frame("injected-cut", "fault injection cut this session")
                    ),
                )
            if fate.delay:
                await asyncio.sleep(fate.delay)
            if fate.copies > 1:
                decoded = decoded * fate.copies
            if fate.hold:
                # Reorder within the batch; the causal buffers absorb it.
                decoded = decoded[::-1]
        accepted = 0
        for frame in decoded:
            if frame["type"] == "delta":
                room.receive_delta(session, frame["events"])
                accepted += 1
            elif frame["type"] == "presence":
                # Cursor traffic is disabled on the fallback transport; the
                # update is acknowledged but not recorded or fanned out.
                continue
            elif frame["type"] == "bye":
                room.disconnect(session)
                self._sessions.pop(session.id, None)
            else:
                return http_response(
                    400,
                    json.dumps(
                        error_frame("unexpected-type", f"cannot upload {frame['type']!r} frames")
                    ),
                )
        return http_response(200, json.dumps(ack_frame(accepted)))

    async def _http_poll(self, request: HttpRequest) -> bytes:
        entry = self._poll_session(request, allow_closed=True)
        if entry is None:
            return http_response(404, json.dumps(error_frame("unknown-session", "no such session")))
        room, session = entry
        if session.closed:
            # A shed (or otherwise closed) session answers exactly one more
            # poll with its parting frames — the structured resumable bye —
            # and is then forgotten.
            frames = session.drain()
            room.disconnect(session)
            self._sessions.pop(session.id, None)
            return http_response(200, json.dumps({"frames": frames}, default=list))
        try:
            wait = min(float(request.query.get("wait", "25")), MAX_POLL_WAIT)
        except ValueError:
            wait = 0.0
        frames = await session.wait_for_frames(timeout=max(wait, 0.0))
        return http_response(200, json.dumps({"frames": frames}, default=list))

    async def _http_text(self, request: HttpRequest) -> bytes:
        doc = request.query.get("doc", "")
        room = self.rooms.get(doc)
        if room is None:
            return http_response(404, json.dumps(error_frame("unknown-doc", f"no document {doc!r}")))
        return http_response(
            200,
            json.dumps(
                {
                    "doc": doc,
                    "text": room.text,
                    "version": [[a, s] for a, s in room.version().as_tuples()],
                }
            ),
        )

    async def _http_stats(self, request: HttpRequest) -> bytes:
        doc = request.query.get("doc")
        if doc:
            room = self.rooms.get(doc)
            if room is None:
                return http_response(
                    404, json.dumps(error_frame("unknown-doc", f"no document {doc!r}"))
                )
            return http_response(200, json.dumps(room.summary()))
        return http_response(
            200, json.dumps({"docs": [room.summary() for room in self.rooms.values()]})
        )
