"""The collaboration server: WebSockets on the fast path, long-polling as
fallback.

:class:`CollabServer` listens on one TCP port and routes by request shape:

* ``GET /v1/ws`` with an ``Upgrade: websocket`` header — the fast path.  The
  first frame must be ``hello``; after that the connection is full duplex:
  uploaded ``delta``/``presence`` frames feed the room, and a pump task
  drains the session queue to the socket as frames arrive.
* ``POST /v1/connect`` / ``POST /v1/send`` / ``GET /v1/poll`` — the HTTP
  long-polling fallback.  The same session machinery, but frames accumulate
  on the session queue until the next poll; presence is disabled (the
  fallback trades cursor liveness for transport simplicity, as production
  systems do).
* ``GET /v1/text`` and ``GET /v1/stats`` — read-only introspection used by
  the load generator's convergence oracle and the leak checks.

A malformed frame is answered with a structured ``error`` frame and the
connection (or poll exchange) stays usable — a buggy client cannot take down
its own session, let alone the server.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from .protocol import (
    ProtocolError,
    ack_frame,
    bye_frame,
    decode_frame,
    encode_frame,
    error_frame,
)
from .session import DocumentRoom, Session
from .wire import (
    HttpRequest,
    WebSocketConnection,
    http_response,
    read_http_request,
    server_websocket_handshake,
)

__all__ = ["CollabServer"]

#: Cap on how long one ``/v1/poll`` request may hang (seconds).
MAX_POLL_WAIT = 30.0


class CollabServer:
    """An asyncio collaboration server hosting any number of documents.

    Rooms are created on first use: connecting to document ``"notes"``
    creates a server replica for it.  ``port=0`` (the default) picks an
    ephemeral port; read :attr:`port` after :meth:`start`.

    Usage::

        server = CollabServer()
        await server.start()
        ...  # connect clients to ("127.0.0.1", server.port)
        await server.stop()

    Also usable as an async context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        document_options: dict | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.document_options = dict(document_options or {})
        self.rooms: dict[str, DocumentRoom] = {}
        #: Session id -> (room, session), for poll routing.
        self._sessions: dict[str, tuple[DocumentRoom, Session]] = {}
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "CollabServer":
        if self._server is not None:
            raise RuntimeError("server already started")
        server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        if self._server is not None:
            # A concurrent start() won the race while we were suspended in
            # start_server(); keep the winner, release our socket.
            server.close()
            await server.wait_closed()
            raise RuntimeError("server already started")
        self._server = server
        # Resolving port=0 to the ephemerally bound port: the write is derived
        # from this call's own socket, and re-entry is guarded above.
        self.port = server.sockets[0].getsockname()[1]  # lint: disable=await-state-race
        return self

    async def stop(self) -> None:
        # Detach before the first await: a stop() that suspended holding the
        # server reference used to null self._server on resume, clobbering
        # (and leaking) a server started concurrently in the meantime.
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        for room in self.rooms.values():
            for session in list(room.sessions.values()):
                room.disconnect(session)

    async def __aenter__(self) -> "CollabServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def room(self, name: str) -> DocumentRoom:
        room = self.rooms.get(name)
        if room is None:
            room = self.rooms[name] = DocumentRoom(name, self.document_options)
        return room

    # ------------------------------------------------------------------
    # Connection dispatch
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            request = await read_http_request(reader)
            if request is None:
                return
            if request.wants_websocket:
                await self._serve_websocket(reader, writer, request)
            else:
                await self._serve_http(writer, request)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    # ------------------------------------------------------------------
    # WebSocket path
    # ------------------------------------------------------------------
    async def _serve_websocket(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request: HttpRequest,
    ) -> None:
        if not await server_websocket_handshake(writer, request):
            return
        ws = WebSocketConnection(reader, writer, mask_outgoing=False)
        hello = await self._expect_hello(ws)
        if hello is None:
            return
        room = self.room(hello["doc"])
        session = room.connect(hello["agent"], "ws", hello["version"])
        self._sessions[session.id] = (room, session)
        pump = asyncio.create_task(self._pump_session(ws, session))
        try:
            while True:
                text = await ws.recv_text()
                if text is None:
                    break
                try:
                    frame = decode_frame(text)
                except ProtocolError as exc:
                    # Structured rejection; the connection stays up.
                    session.queue_frame(error_frame(exc.code, exc.reason))
                    continue
                if frame["type"] == "delta":
                    room.receive_delta(session, frame["events"])
                elif frame["type"] == "presence":
                    room.receive_presence(session, frame["cursor"])
                elif frame["type"] == "bye":
                    session.queue_frame(bye_frame())
                    break
                else:
                    session.queue_frame(
                        error_frame(
                            "unexpected-type",
                            f"{frame['type']!r} frames are server-to-client",
                        )
                    )
        finally:
            room.disconnect(session)
            self._sessions.pop(session.id, None)
            try:
                # The session is closed, so the pump exits after one final
                # flush (bye / trailing errors); don't cut that flush short.
                await asyncio.wait_for(pump, timeout=1.0)
            except (asyncio.TimeoutError, ConnectionError):
                pump.cancel()
                try:
                    await pump
                except (asyncio.CancelledError, ConnectionError):
                    pass
            await ws.close()

    async def _expect_hello(self, ws: WebSocketConnection) -> dict[str, Any] | None:
        text = await ws.recv_text()
        if text is None:
            return None
        try:
            frame = decode_frame(text)
            if frame["type"] != "hello":
                raise ProtocolError("hello-required", "first frame must be hello")
        except ProtocolError as exc:
            try:
                await ws.send_text(encode_frame(error_frame(exc.code, exc.reason)))
            except ConnectionError:
                pass
            await ws.close()
            return None
        return frame

    async def _pump_session(self, ws: WebSocketConnection, session: Session) -> None:
        """Drain the session queue to the socket as frames arrive."""
        try:
            while not session.closed:
                frames = await session.wait_for_frames(timeout=30.0)
                for frame in frames:
                    await ws.send_text(encode_frame(frame))
            for frame in session.drain():  # final flush (bye / errors)
                await ws.send_text(encode_frame(frame))
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception:  # pragma: no cover - defensive; pump must not spin
            pass

    # ------------------------------------------------------------------
    # HTTP fallback path
    # ------------------------------------------------------------------
    async def _serve_http(self, writer: asyncio.StreamWriter, request: HttpRequest) -> None:
        handler = {
            ("POST", "/v1/connect"): self._http_connect,
            ("POST", "/v1/send"): self._http_send,
            ("GET", "/v1/poll"): self._http_poll,
            ("GET", "/v1/text"): self._http_text,
            ("GET", "/v1/stats"): self._http_stats,
            ("GET", "/healthz"): self._http_health,
        }.get((request.method, request.path))
        if handler is None:
            response = http_response(
                404, json.dumps(error_frame("not-found", f"no route {request.method} {request.path}"))
            )
        else:
            response = await handler(request)
        writer.write(response)
        await writer.drain()

    async def _http_health(self, request: HttpRequest) -> bytes:
        return http_response(200, json.dumps({"ok": True, "docs": len(self.rooms)}))

    async def _http_connect(self, request: HttpRequest) -> bytes:
        try:
            frame = decode_frame(request.body)
            if frame["type"] != "hello":
                raise ProtocolError("hello-required", "connect body must be a hello frame")
        except ProtocolError as exc:
            return http_response(400, json.dumps(error_frame(exc.code, exc.reason)))
        room = self.room(frame["doc"])
        session = room.connect(frame["agent"], "poll", frame["version"])
        self._sessions[session.id] = (room, session)
        return http_response(200, json.dumps({"frames": session.drain()}, default=list))

    def _poll_session(self, request: HttpRequest) -> tuple[DocumentRoom, Session] | None:
        entry = self._sessions.get(request.query.get("session", ""))
        if entry is None or entry[1].closed:
            return None
        return entry

    async def _http_send(self, request: HttpRequest) -> bytes:
        entry = self._poll_session(request)
        if entry is None:
            return http_response(404, json.dumps(error_frame("unknown-session", "no such session")))
        room, session = entry
        try:
            body = request.json()
            frames = body.get("frames") if isinstance(body, dict) else None
            if not isinstance(frames, list):
                raise ProtocolError("bad-frame", "send body must be {'frames': [...]}")
            decoded = [decode_frame(json.dumps(f)) for f in frames]
        except (ValueError, ProtocolError) as exc:
            code = exc.code if isinstance(exc, ProtocolError) else "bad-json"
            return http_response(400, json.dumps(error_frame(code, str(exc))))
        accepted = 0
        for frame in decoded:
            if frame["type"] == "delta":
                room.receive_delta(session, frame["events"])
                accepted += 1
            elif frame["type"] == "presence":
                # Cursor traffic is disabled on the fallback transport; the
                # update is acknowledged but not recorded or fanned out.
                continue
            elif frame["type"] == "bye":
                room.disconnect(session)
                self._sessions.pop(session.id, None)
            else:
                return http_response(
                    400,
                    json.dumps(
                        error_frame("unexpected-type", f"cannot upload {frame['type']!r} frames")
                    ),
                )
        return http_response(200, json.dumps(ack_frame(accepted)))

    async def _http_poll(self, request: HttpRequest) -> bytes:
        entry = self._poll_session(request)
        if entry is None:
            return http_response(404, json.dumps(error_frame("unknown-session", "no such session")))
        _, session = entry
        try:
            wait = min(float(request.query.get("wait", "25")), MAX_POLL_WAIT)
        except ValueError:
            wait = 0.0
        frames = await session.wait_for_frames(timeout=max(wait, 0.0))
        return http_response(200, json.dumps({"frames": frames}, default=list))

    async def _http_text(self, request: HttpRequest) -> bytes:
        doc = request.query.get("doc", "")
        room = self.rooms.get(doc)
        if room is None:
            return http_response(404, json.dumps(error_frame("unknown-doc", f"no document {doc!r}")))
        return http_response(
            200,
            json.dumps(
                {
                    "doc": doc,
                    "text": room.text,
                    "version": [[a, s] for a, s in room.version().as_tuples()],
                }
            ),
        )

    async def _http_stats(self, request: HttpRequest) -> bytes:
        doc = request.query.get("doc")
        if doc:
            room = self.rooms.get(doc)
            if room is None:
                return http_response(
                    404, json.dumps(error_frame("unknown-doc", f"no document {doc!r}"))
                )
            return http_response(200, json.dumps(room.summary()))
        return http_response(
            200, json.dumps({"docs": [room.summary() for room in self.rooms.values()]})
        )
