"""Uniform adapters around every algorithm the evaluation compares.

Each adapter exposes the same three operations the paper measures (§4.2):

* ``merge(trace)`` — integrate an entire editing trace received from a remote
  replica into an empty local document (the CPU-time benchmark of Figure 8 and
  the memory benchmark of Figure 10);
* ``save(...)`` / ``load(...)`` — the persistent document representation (the
  file sizes of Figures 11–12) and the CPU time to reload it for editing (the
  "load" series of Figure 8);
* ``steady_state(...)`` — what has to stay in memory after the merge.

Five algorithms are wrapped: Eg-walker (this paper), our reference OT, our
reference CRDT, and the Automerge-like / Yjs-like CRDT stand-ins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.walker import EgWalker, WalkerStats
from ..history.version import Version
from ..crdt.automerge_like import AutomergeLikeDocument
from ..crdt.ref_crdt import RefCRDTDocument
from ..crdt.yjs_like import YjsLikeDocument
from ..ot.ot_replica import OTDocument
from ..storage.container import ContainerOptions, decode_file, encode_event_graph_v3
from ..storage.encoder import EncodeOptions, encode_event_graph
from ..storage.snapshot import Snapshot, decode_snapshot, encode_snapshot
from ..traces.trace import Trace

__all__ = [
    "MergeOutcome",
    "AlgorithmAdapter",
    "EgWalkerAdapter",
    "OTAdapter",
    "RefCRDTAdapter",
    "AutomergeLikeAdapter",
    "YjsLikeAdapter",
    "ALL_ADAPTERS",
    "adapter_by_name",
]


@dataclass(slots=True)
class MergeOutcome:
    """What a merge produced: the text plus whatever the algorithm retains."""

    text: str
    retained: object


class AlgorithmAdapter:
    """Base class; subclasses implement the per-algorithm behaviour."""

    name: str = "abstract"
    is_crdt: bool = False

    # -- merging -----------------------------------------------------------
    def merge(self, trace: Trace) -> MergeOutcome:
        raise NotImplementedError

    # -- persistence ---------------------------------------------------------
    def save(self, trace: Trace, outcome: MergeOutcome) -> bytes:
        raise NotImplementedError

    def load(self, data: bytes) -> str:
        """Load a saved document so it can be displayed and edited; returns its text."""
        raise NotImplementedError


class EgWalkerAdapter(AlgorithmAdapter):
    """Eg-walker: replay the event graph; persist the graph plus a text snapshot."""

    name = "eg-walker"

    def __init__(
        self,
        *,
        backend: str = "tree",
        enable_clearing: bool = True,
        sort_strategy: str = "branch_aware",
        cache_final_doc: bool = True,
        format_version: int = 2,
    ) -> None:
        self.backend = backend
        self.enable_clearing = enable_clearing
        self.sort_strategy = sort_strategy
        self.cache_final_doc = cache_final_doc
        if format_version not in (2, 3):
            raise ValueError(f"unknown storage format version {format_version}")
        #: 2 = legacy interleaved columns, 3 = random-access columnar
        #: container with per-column compression (repro.storage.container).
        self.format_version = format_version
        #: Stats of the most recent merge (run/char event counts, peak span
        #: records) — lets the benchmarks report the RLE win per trace.
        self.last_stats: WalkerStats | None = None

    def merge(self, trace: Trace) -> MergeOutcome:
        walker = EgWalker(
            trace.graph,
            backend=self.backend,
            enable_clearing=self.enable_clearing,
            sort_strategy=self.sort_strategy,
        )
        text = walker.replay_text()
        self.last_stats = walker.last_stats
        # The walker's internal state is transient; only the text is retained.
        return MergeOutcome(text=text, retained=text)

    def save(self, trace: Trace, outcome: MergeOutcome) -> bytes:
        if self.format_version == 3:
            return encode_event_graph_v3(
                trace.graph,
                ContainerOptions(
                    include_snapshot=self.cache_final_doc,
                    final_text=outcome.text if self.cache_final_doc else None,
                ),
            )
        return encode_event_graph(
            trace.graph,
            EncodeOptions(
                include_snapshot=self.cache_final_doc,
                final_text=outcome.text if self.cache_final_doc else None,
            ),
        )

    def save_pruned(self, trace: Trace, outcome: MergeOutcome) -> bytes:
        """The Figure 12 variant: drop deleted characters' content."""
        if self.format_version == 3:
            return encode_event_graph_v3(
                trace.graph, ContainerOptions(prune_deleted_content=True)
            )
        return encode_event_graph(
            trace.graph, EncodeOptions(prune_deleted_content=True)
        )

    def load(self, data: bytes) -> str:
        decoded = decode_file(data)
        if decoded.snapshot is not None:
            # Fast path: the cached document text is all that is needed to
            # display and edit the document (§4.3).
            return decoded.snapshot
        walker = EgWalker(decoded.graph, backend=self.backend)
        return walker.replay_text()

    def save_snapshot_only(self, outcome: MergeOutcome, trace: Trace) -> bytes:
        """Just the cached text (what the steady-state load actually reads)."""
        version = Version.frontier(trace.graph)
        return encode_snapshot(Snapshot(text=outcome.text, version=version))

    def load_snapshot(self, data: bytes) -> str:
        return decode_snapshot(data).text


class OTAdapter(AlgorithmAdapter):
    """The reference OT implementation (TTF-style merge)."""

    name = "ot"

    def merge(self, trace: Trace) -> MergeOutcome:
        document = OTDocument()
        text = document.merge_event_graph(trace.graph)
        return MergeOutcome(text=text, retained=text)

    def save(self, trace: Trace, outcome: MergeOutcome) -> bytes:
        # OT persists the same artefacts as Eg-walker: the operation history
        # plus the current text.
        return encode_event_graph(
            trace.graph,
            EncodeOptions(include_snapshot=True, final_text=outcome.text),
        )

    def load(self, data: bytes) -> str:
        decoded = decode_file(data)
        if decoded.snapshot is not None:
            return decoded.snapshot
        document = OTDocument()
        return document.merge_event_graph(decoded.graph)


class RefCRDTAdapter(AlgorithmAdapter):
    """Our reference CRDT: full per-character state, persisted and reloaded."""

    name = "ref-crdt"
    is_crdt = True
    document_class: type[RefCRDTDocument] = RefCRDTDocument

    def merge(self, trace: Trace) -> MergeOutcome:
        document = self.document_class()
        text = document.merge_event_graph(trace.graph)
        return MergeOutcome(text=text, retained=document)

    def save(self, trace: Trace, outcome: MergeOutcome) -> bytes:
        document = outcome.retained
        assert isinstance(document, RefCRDTDocument)
        return document.save()

    def load(self, data: bytes) -> str:
        return self.document_class.load(data).text


class AutomergeLikeAdapter(RefCRDTAdapter):
    """Automerge-like baseline: stores (and replays) the full operation history."""

    name = "automerge-like"
    document_class = AutomergeLikeDocument


class YjsLikeAdapter(RefCRDTAdapter):
    """Yjs-like baseline: stores tombstoned items without history or deleted text."""

    name = "yjs-like"
    document_class = YjsLikeDocument


def ALL_ADAPTERS() -> list[AlgorithmAdapter]:
    """Fresh instances of every adapter, in the order the figures list them."""
    return [
        EgWalkerAdapter(),
        OTAdapter(),
        RefCRDTAdapter(),
        AutomergeLikeAdapter(),
        YjsLikeAdapter(),
    ]


def adapter_by_name(name: str) -> AlgorithmAdapter:
    for adapter in ALL_ADAPTERS():
        if adapter.name == name:
            return adapter
    raise KeyError(f"unknown algorithm {name!r}")
