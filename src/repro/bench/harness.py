"""Experiment runners: one function per table / figure of the paper.

Each function takes the traces to run on and returns a list of row
dictionaries; :mod:`repro.bench.report` renders them as aligned text tables
next to the paper's own numbers.  ``python -m repro.bench`` runs everything
and writes a results summary (this is the equivalent of the artifact's
``step1-prepare.sh`` / ``step2*-*.sh`` + ``collect.js`` pipeline).

Experiment index (see DESIGN.md §3):

* :func:`run_table1`      — trace statistics (Table 1)
* :func:`run_merge_time`  — merge + load CPU time per algorithm (Figure 8)
* :func:`run_clearing_ablation` — Eg-walker with/without §3.5 optimisations (Figure 9)
* :func:`run_memory`      — peak / steady-state RAM per algorithm (Figure 10)
* :func:`run_file_size_full`   — full-history file sizes (Figure 11)
* :func:`run_file_size_pruned` — pruned file sizes (Figure 12)
* :func:`run_sort_order_ablation` — merge time vs traversal order (§4.3 remark)
* :func:`run_scaling`     — two-branch merge cost vs branch length (§3.7 complexity)
* :func:`run_merge_latency` — per-merge cost vs history length in a live
  session: the incremental merge engine vs the legacy rebuild path
  (``BENCH_merge_latency.json`` / the perf-smoke CI gate)
* :func:`run_replay_throughput` — end-to-end replay events/sec when a fresh
  replica consumes a whole trace in batches, incremental engine on vs off
  (``BENCH_replay_throughput.json`` / the replay perf-smoke CI gate)
* :func:`run_cold_load` — cold-load-to-first-text from a storage-v3 container:
  bytes touched and events materialised for a selective text read vs a full
  graph hydration (``BENCH_cold_load.json`` / the storage-format CI gate)
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from ..core.document import Document
from ..core.ids import EventId, insert_op
from ..core.oplog import RemoteEvent
from ..core.walker import EgWalker
from ..crdt.ref_crdt import RefCRDTDocument
from ..ot.ot_replica import OTDocument
from ..traces.datasets import PAPER_TABLE1, TRACE_NAMES, load_all_traces
from ..traces.generator import generate_async
from ..traces.stats import compute_stats
from ..traces.trace import Trace
from .adapters import ALL_ADAPTERS, AlgorithmAdapter, EgWalkerAdapter
from .memory import measure_memory

__all__ = [
    "run_table1",
    "run_merge_time",
    "run_clearing_ablation",
    "run_memory",
    "run_file_size_full",
    "run_file_size_pruned",
    "run_sort_order_ablation",
    "run_scaling",
    "run_merge_latency",
    "run_replay_throughput",
    "run_cold_load",
    "run_all",
]


def _timed(action) -> tuple[object, float]:
    start = time.perf_counter()
    result = action()
    return result, time.perf_counter() - start


def _traces(traces: dict[str, Trace] | None) -> dict[str, Trace]:
    return traces if traces is not None else load_all_traces()


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def run_table1(traces: dict[str, Trace] | None = None) -> list[dict[str, object]]:
    rows = []
    for name, trace in _traces(traces).items():
        stats = compute_stats(trace).as_row()
        paper = PAPER_TABLE1.get(name, {})
        row = {"trace": name}
        row.update({f"measured_{k}": v for k, v in stats.items() if k != "name"})
        row.update({f"paper_{k}": v for k, v in paper.items()})
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 8: merge time and load time
# ----------------------------------------------------------------------
def run_merge_time(
    traces: dict[str, Trace] | None = None,
    adapters: Sequence[AlgorithmAdapter] | None = None,
) -> list[dict[str, object]]:
    adapters = list(adapters) if adapters is not None else ALL_ADAPTERS()
    rows = []
    for name, trace in _traces(traces).items():
        for adapter in adapters:
            outcome, merge_seconds = _timed(lambda: adapter.merge(trace))
            saved = adapter.save(trace, outcome)
            _, load_seconds = _timed(lambda: adapter.load(saved))
            rows.append(
                {
                    "trace": name,
                    "algorithm": adapter.name,
                    "merge_ms": round(merge_seconds * 1000, 2),
                    "load_ms": round(load_seconds * 1000, 3),
                    "final_chars": len(outcome.text),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 9: the state-clearing / fast-path optimisation
# ----------------------------------------------------------------------
def run_clearing_ablation(traces: dict[str, Trace] | None = None) -> list[dict[str, object]]:
    rows = []
    for name, trace in _traces(traces).items():
        for enabled in (True, False):
            walker = EgWalker(trace.graph, enable_clearing=enabled)
            _, seconds = _timed(walker.replay_text)
            stats = walker.last_stats
            rows.append(
                {
                    "trace": name,
                    "optimisation": "enabled" if enabled else "disabled",
                    "merge_ms": round(seconds * 1000, 2),
                    "fast_path_events": stats.events_fast_path if stats else 0,
                    "state_clears": stats.state_clears if stats else 0,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 10: memory
# ----------------------------------------------------------------------
def run_memory(
    traces: dict[str, Trace] | None = None,
    adapters: Sequence[AlgorithmAdapter] | None = None,
) -> list[dict[str, object]]:
    adapters = list(adapters) if adapters is not None else ALL_ADAPTERS()
    rows = []
    for name, trace in _traces(traces).items():
        for adapter in adapters:
            outcome, measurement = measure_memory(lambda: adapter.merge(trace))
            # Steady state: what must stay alive for the user to keep editing.
            # For Eg-walker and OT that is the text; for the CRDTs it is the
            # whole document object (the `retained` field keeps it alive while
            # tracemalloc takes the final reading above).
            row = {
                "trace": name,
                "algorithm": adapter.name,
                "peak_kib": round(measurement.peak_bytes / 1024, 1),
                "steady_kib": round(measurement.retained_bytes / 1024, 1),
                "text_kib": round(len(outcome.text.encode("utf-8")) / 1024, 1),
                "char_events": trace.graph.num_chars,
                "run_events": len(trace.graph),
            }
            stats = getattr(adapter, "last_stats", None)
            if stats is not None:
                row["peak_span_records"] = stats.peak_records
                row["peak_span_record_chars"] = stats.peak_record_chars
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figures 11 and 12: file sizes
# ----------------------------------------------------------------------
def run_file_size_full(traces: dict[str, Trace] | None = None) -> list[dict[str, object]]:
    """Full-history formats: Eg-walker encoding (± cached doc) vs Automerge-like."""
    from .adapters import AutomergeLikeAdapter

    rows = []
    automerge = AutomergeLikeAdapter()
    for name, trace in _traces(traces).items():
        outcome = EgWalkerAdapter().merge(trace)
        inserted_chars = sum(e.op.length for e in trace.graph.events() if e.op.is_insert)
        eg_plain = EgWalkerAdapter(cache_final_doc=False).save(trace, outcome)
        eg_cached = EgWalkerAdapter(cache_final_doc=True).save(trace, outcome)
        eg_v3 = EgWalkerAdapter(cache_final_doc=False, format_version=3).save(
            trace, outcome
        )
        eg_v3_cached = EgWalkerAdapter(cache_final_doc=True, format_version=3).save(
            trace, outcome
        )
        am_outcome = automerge.merge(trace)
        am_bytes = automerge.save(trace, am_outcome)
        rows.append(
            {
                "trace": name,
                "inserted_text_bytes": inserted_chars,
                "egwalker_bytes": len(eg_plain),
                "egwalker_cached_doc_bytes": len(eg_cached),
                "egwalker_v3_bytes": len(eg_v3),
                "egwalker_v3_cached_doc_bytes": len(eg_v3_cached),
                "automerge_like_bytes": len(am_bytes),
            }
        )
    return rows


def run_file_size_pruned(traces: dict[str, Trace] | None = None) -> list[dict[str, object]]:
    """Deleted-content-free formats: pruned Eg-walker encoding vs Yjs-like."""
    from .adapters import YjsLikeAdapter

    rows = []
    yjs = YjsLikeAdapter()
    for name, trace in _traces(traces).items():
        eg = EgWalkerAdapter()
        outcome = eg.merge(trace)
        pruned = eg.save_pruned(trace, outcome)
        pruned_v3 = EgWalkerAdapter(format_version=3).save_pruned(trace, outcome)
        yjs_outcome = yjs.merge(trace)
        yjs_bytes = yjs.save(trace, yjs_outcome)
        rows.append(
            {
                "trace": name,
                "final_doc_bytes": len(outcome.text.encode("utf-8")),
                "egwalker_pruned_bytes": len(pruned),
                "egwalker_v3_pruned_bytes": len(pruned_v3),
                "yjs_like_bytes": len(yjs_bytes),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Cold load: selective v3 reads vs full hydration (ROADMAP item 2 payoff)
# ----------------------------------------------------------------------
def run_cold_load(traces: dict[str, Trace] | None = None) -> list[dict[str, object]]:
    """Cold-load-to-first-text from a pruned, snapshot-bearing v3 container.

    For each trace the document is persisted the way the hosting layer will
    evict it (pruned content + snapshot column), then loaded cold three ways:

    * **selective text** — :class:`~repro.storage.LazyDecodedFile` reading
      just the snapshot column: the structural claim is *zero* events
      materialised and only a fraction of the file's bytes touched;
    * **lazy history** — the same file after a first ``history`` access:
      exactly one hydration pays for the remaining columns;
    * **full decode** — the v2-style load that materialises everything
      up front, as the baseline for the bytes/events columns.

    Also records whether a *snapshot-free* v3 file can still serve its text
    selectively (linear histories replay ops over content span-wise).
    """
    from ..storage.container import (
        ContainerOptions,
        LazyDecodedFile,
        StorageError,
        encode_event_graph_v3,
    )

    rows = []
    for name, trace in _traces(traces).items():
        outcome = EgWalkerAdapter().merge(trace)
        data = encode_event_graph_v3(
            trace.graph,
            ContainerOptions(
                prune_deleted_content=True,
                include_snapshot=True,
                final_text=outcome.text,
            ),
        )

        cold = LazyDecodedFile(data)
        (text, cold_seconds) = _timed(lambda: cold.text)
        cold_bytes = cold.stats.bytes_read
        cold_events = cold.stats.events_materialised

        lazy = LazyDecodedFile(data)
        _ = lazy.text
        (_, history_seconds) = _timed(lambda: lazy.history)
        _ = lazy.history  # second access: cached, no second hydration

        full = LazyDecodedFile(data)
        (_, full_seconds) = _timed(lambda: full.graph)

        plain = encode_event_graph_v3(trace.graph)
        try:
            selective_no_snapshot = LazyDecodedFile(plain).selective_text() == outcome.text
        except StorageError:
            selective_no_snapshot = False

        rows.append(
            {
                "trace": name,
                "file_bytes": len(data),
                "cold_text_ok": text == outcome.text,
                "cold_text_ms": round(cold_seconds * 1000, 3),
                "cold_text_bytes_read": cold_bytes,
                "cold_text_events_materialised": cold_events,
                "cold_text_read_fraction": round(cold_bytes / len(data), 4),
                "history_hydrations": lazy.stats.hydrations,
                "history_ms": round(history_seconds * 1000, 3),
                "full_load_ms": round(full_seconds * 1000, 3),
                "full_load_events": full.stats.events_materialised,
                "full_load_bytes_read": full.stats.bytes_read,
                "selective_text_without_snapshot": selective_no_snapshot,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Ablation X1: traversal order sensitivity (§4.3)
# ----------------------------------------------------------------------
def run_sort_order_ablation(
    traces: dict[str, Trace] | None = None, trace_names: Iterable[str] = ("C1", "A2")
) -> list[dict[str, object]]:
    all_traces = _traces(traces)
    rows = []
    for name in trace_names:
        if name not in all_traces:
            continue
        trace = all_traces[name]
        for strategy in ("branch_aware", "local", "interleaved"):
            walker = EgWalker(trace.graph, sort_strategy=strategy)
            _, seconds = _timed(walker.replay_text)
            stats = walker.last_stats
            rows.append(
                {
                    "trace": name,
                    "sort_order": strategy,
                    "merge_ms": round(seconds * 1000, 2),
                    "retreats": stats.retreats if stats else 0,
                    "advances": stats.advances if stats else 0,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Ablation X2: two-branch merge scaling (§3.7)
# ----------------------------------------------------------------------
def run_scaling(branch_sizes: Sequence[int] = (250, 500, 1000, 2000)) -> list[dict[str, object]]:
    """Merge cost of two offline branches of k events each, per algorithm.

    Eg-walker should scale near-linearly (O(k log k)); OT quadratically; the
    reference CRDT in between.  This regenerates the complexity claim of §3.7.
    """
    rows = []
    for size in branch_sizes:
        trace = generate_async(
            f"scale-{size}",
            target_events=2 * size,
            seed=size,
            concurrent_branches=2,
            events_per_branch=size,
            authors=2,
            keep_unmerged=False,
        )
        eg_walker = EgWalker(trace.graph)
        _, eg_seconds = _timed(eg_walker.replay_text)
        ot = OTDocument()
        _, ot_seconds = _timed(lambda: ot.merge_event_graph(trace.graph))
        ref = RefCRDTDocument()
        _, ref_seconds = _timed(lambda: ref.merge_event_graph(trace.graph))
        rows.append(
            {
                "branch_events": size,
                "total_events": len(trace.graph),
                "egwalker_ms": round(eg_seconds * 1000, 2),
                "ot_ms": round(ot_seconds * 1000, 2),
                "ref_crdt_ms": round(ref_seconds * 1000, 2),
                "ot_work_units": ot.work_units,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Live merge latency: per-merge cost vs. history length (merge engine)
# ----------------------------------------------------------------------
def _ship_keystroke(editor: Document, watcher: Document, mark: int) -> tuple[float, int]:
    """One keystroke on the editor, delivered to the watcher as a delta.

    Returns the watcher's merge latency in seconds and the new export mark.
    With sender-side run coalescing the keystroke usually *extends* an event
    in place, so only the one-character suffix travels — the live-wire shape.
    """
    editor.insert(len(editor.text), "x")
    delta = editor.oplog.export_since_seq(editor.agent, mark)
    mark = editor.oplog.graph.next_seq_for(editor.agent)
    start = time.perf_counter()
    watcher.apply_remote_events(delta)
    return time.perf_counter() - start, mark


def run_merge_latency(
    max_events: int = 1600, checkpoints: Sequence[int] | None = None
) -> list[dict[str, object]]:
    """Per-merge latency and engine work vs. history length, both engine modes.

    A watcher replica receives a live stream of single events while its
    history grows to ``max_events``.  At each checkpoint the cost of one
    sequential delivery (the fast path) and one concurrent delivery (the
    walker path against the resident state) is recorded, together with the
    engine's ``last_merge_events_touched`` counter.  The incremental engine
    must be flat in the history length; the legacy rebuild path
    (``incremental=False``) grows linearly — the acceptance curve of the
    merge-engine work.
    """
    if checkpoints is None:
        checkpoints = [max_events // 8, max_events // 4, max_events // 2, max_events]
    rows: list[dict[str, object]] = []
    for incremental in (True, False):
        editor = Document("editor")
        watcher = Document("watcher", incremental=incremental)
        mark = 0
        intruder_seq = 0
        for checkpoint in checkpoints:
            while len(watcher.oplog.graph) < checkpoint - 1:
                _, mark = _ship_keystroke(editor, watcher, mark)

            history = len(watcher.oplog.graph)
            seq_seconds, mark = _ship_keystroke(editor, watcher, mark)
            rows.append(
                {
                    "incremental": incremental,
                    "delivery": "sequential",
                    "history_events": history,
                    "merge_ms": round(seq_seconds * 1000, 4),
                    "merge_work_events": watcher.merge_stats.last_merge_events_touched,
                }
            )

            # A concurrent delivery: an event forking from two events back
            # exercises the walker path at this history length.  The window
            # the engine replays stays O(1); the rebuild path scans all.
            graph = watcher.oplog.graph
            intruder = RemoteEvent(
                id=EventId("intruder", intruder_seq),
                parents=(graph.dependency_id(len(graph) - 2),),
                op=insert_op(0, "Z"),
            )
            intruder_seq += 1
            history = len(graph)
            start = time.perf_counter()
            watcher.apply_remote_events([intruder])
            conc_seconds = time.perf_counter() - start
            rows.append(
                {
                    "incremental": incremental,
                    "delivery": "concurrent",
                    "history_events": history,
                    "merge_ms": round(conc_seconds * 1000, 4),
                    "merge_work_events": watcher.merge_stats.last_merge_events_touched,
                }
            )

            # Re-quiesce: the editor pulls everything (intruder included)
            # and types once — that event dominates all heads, forming a
            # fresh critical version, so the next checkpoint starts in the
            # steady state.
            editor.merge(watcher)
            editor.insert(len(editor.text), ". ")
            delta = editor.oplog.export_since_seq(editor.agent, mark)
            mark = editor.oplog.graph.next_seq_for(editor.agent)
            watcher.apply_remote_events(delta)

        stats = watcher.merge_stats
        rows.append(
            {
                "incremental": incremental,
                "delivery": "summary",
                "history_events": len(watcher.oplog.graph),
                "merges": stats.merges,
                "fast_path_merges": stats.fast_path_merges,
                "resumed_merges": stats.resumed_merges,
                "fresh_replays": stats.fresh_replays,
                "walkers_rebuilt": stats.walkers_rebuilt,
                "cut_scan_events": stats.cut_scan_events,
                "order_events_materialised": stats.order_events_materialised,
            }
        )
        assert watcher.text == editor.text
    return rows


# ----------------------------------------------------------------------
# Replay throughput: end-to-end events/sec consuming a whole trace
# ----------------------------------------------------------------------
def run_replay_throughput(
    traces: dict[str, Trace] | None = None,
    trace_names: Iterable[str] = ("S3", "C2"),
    batch_size: int = 8,
) -> list[dict[str, object]]:
    """End-to-end replay throughput: a fresh replica consumes a whole trace.

    For each trace the portable event stream is delivered to a brand-new
    :class:`Document` in batches of ``batch_size`` (the live-session shape:
    many small merges against a growing history, not one bulk load), once
    with the incremental merge engine and once with the legacy rebuild path.
    The headline number is **run events per second**; the engine's own
    counters (resumed merges, window events replayed, checkpoint lifecycle)
    are recorded next to it so a throughput regression can be attributed:
    dropped checkpoints show up directly as redundant
    ``replayed_window_events``.

    The receiver's final text is checked against a one-shot walker replay of
    the same graph, so the numbers can never come from a broken merge.
    """
    all_traces = _traces(traces)
    rows: list[dict[str, object]] = []
    for name in trace_names:
        if name not in all_traces:
            continue
        trace = all_traces[name]
        graph = trace.graph
        events = [
            RemoteEvent(
                id=event.id,
                parents=tuple(graph.dependency_id(p) for p in event.parents),
                op=event.op,
            )
            for event in graph.events()
        ]
        expected_text = EgWalker(graph).replay_text()
        for incremental in (True, False):
            receiver = Document("receiver", incremental=incremental)

            def deliver() -> None:
                for start in range(0, len(events), batch_size):
                    receiver.apply_remote_events(events[start : start + batch_size])

            _, seconds = _timed(deliver)
            assert receiver.text == expected_text
            stats = receiver.merge_stats
            run_events = len(receiver.oplog.graph)
            rows.append(
                {
                    "trace": name,
                    "incremental": incremental,
                    "batch_size": batch_size,
                    "run_events": run_events,
                    "char_events": receiver.oplog.graph.num_chars,
                    "seconds": round(seconds, 4),
                    "events_per_sec": round(run_events / seconds, 1),
                    "chars_per_sec": round(
                        receiver.oplog.graph.num_chars / seconds, 1
                    ),
                    "fast_path_events": stats.fast_path_events,
                    "resumed_merges": stats.resumed_merges,
                    "fresh_replays": stats.fresh_replays,
                    "replayed_window_events": stats.replayed_window_events,
                    "replayed_new_events": stats.replayed_new_events,
                    "checkpoints_kept": stats.checkpoints_kept,
                    "checkpoints_dropped": stats.checkpoints_dropped,
                    "checkpoints_patched": stats.checkpoints_patched,
                }
            )
    return rows


# ----------------------------------------------------------------------
def run_all(traces: dict[str, Trace] | None = None) -> dict[str, list[dict[str, object]]]:
    """Run every experiment and return all result rows, keyed by experiment id."""
    traces = _traces(traces)
    return {
        "table1_trace_stats": run_table1(traces),
        "fig8_merge_and_load_time": run_merge_time(traces),
        "fig9_clearing_optimisation": run_clearing_ablation(traces),
        "fig10_memory": run_memory(traces),
        "fig11_file_size_full": run_file_size_full(traces),
        "fig12_file_size_pruned": run_file_size_pruned(traces),
        "x1_sort_order": run_sort_order_ablation(traces),
        "x2_scaling": run_scaling(),
        "x3_merge_latency": run_merge_latency(),
        "x4_replay_throughput": run_replay_throughput(traces),
        "x5_cold_load": run_cold_load(traces),
    }
