"""Memory measurement helpers (Figure 10 substrate).

The paper reports the retained heap of each algorithm while merging a trace:
both the *peak* (while the merge is running) and the *steady state* (what must
stay in memory for the user to keep editing afterwards).  This module measures
both with :mod:`tracemalloc`, which tracks every allocation made by the Python
interpreter — the pure-Python analogue of the paper's heap profiling.

Absolute numbers are not comparable with the paper's Rust/JS measurements
(Python objects carry interpreter overhead), but the *ratios* between
algorithms on the same trace are, and those ratios are what Figure 10 is
about: CRDTs retain per-character metadata forever, Eg-walker and OT retain
only the text.
"""

from __future__ import annotations

import gc
import tracemalloc
from dataclasses import dataclass
from typing import Callable, TypeVar

__all__ = ["MemoryMeasurement", "measure_memory", "measure_retained"]

T = TypeVar("T")


@dataclass(slots=True)
class MemoryMeasurement:
    """Bytes allocated while running a function and still held afterwards."""

    peak_bytes: int
    retained_bytes: int

    @property
    def peak_mib(self) -> float:
        return self.peak_bytes / (1024 * 1024)

    @property
    def retained_mib(self) -> float:
        return self.retained_bytes / (1024 * 1024)


def measure_memory(action: Callable[[], T]) -> tuple[T, MemoryMeasurement]:
    """Run ``action`` and measure its peak and retained allocations.

    ``retained_bytes`` counts allocations made by ``action`` that are still
    reachable when it returns — for a merge function that returns only the
    document text this is the steady-state footprint, whereas a CRDT that
    returns its whole document object retains its metadata too.
    """
    gc.collect()
    tracemalloc.start()
    try:
        result = action()
        gc.collect()
        current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, MemoryMeasurement(peak_bytes=peak, retained_bytes=current)


def measure_retained(build: Callable[[], T]) -> tuple[T, int]:
    """Measure only the retained size of whatever ``build`` constructs."""
    result, measurement = measure_memory(build)
    return result, measurement.retained_bytes
