"""Plain-text rendering of benchmark results.

The artifact renders SVG charts; here the same data is printed as aligned
text tables (one per table/figure) so the reproduction can run anywhere and
its output can be diffed, archived in EXPERIMENTS.md, and eyeballed next to
the paper's reported numbers.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_results", "results_to_json"]


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return f"{title}\n  (no data)\n" if title else "  (no data)\n"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {col: len(col) for col in columns}
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered = [_render_cell(row.get(col, "")) for col in columns]
        rendered_rows.append(rendered)
        for col, cell in zip(columns, rendered):
            widths[col] = max(widths[col], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[col] for col in columns))
    for rendered in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[col]) for col, cell in zip(columns, rendered)))
    return "\n".join(lines) + "\n"


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_results(results: Mapping[str, Sequence[Mapping[str, object]]]) -> str:
    """Render the full result dictionary produced by ``run_all``."""
    titles = {
        "table1_trace_stats": "Table 1 — editing trace statistics (measured vs paper)",
        "fig8_merge_and_load_time": "Figure 8 — time to merge a remote trace / reload from disk",
        "fig9_clearing_optimisation": "Figure 9 — Eg-walker with and without the §3.5 optimisations",
        "fig10_memory": "Figure 10 — RAM while merging (peak) and afterwards (steady state)",
        "fig11_file_size_full": "Figure 11 — file size, full editing history retained",
        "fig12_file_size_pruned": "Figure 12 — file size, deleted content omitted",
        "x1_sort_order": "Ablation X1 — sensitivity to the topological-sort order (§4.3)",
        "x2_scaling": "Ablation X2 — two-branch merge scaling (§3.7 complexity claim)",
        "x5_cold_load": "X5 — cold load from a v3 container: selective text vs full hydration",
    }
    sections = []
    for key, rows in results.items():
        title = titles.get(key, key)
        sections.append(format_table(rows, title=f"== {title} =="))
    return "\n".join(sections)


def results_to_json(results: Mapping[str, Sequence[Mapping[str, object]]]) -> str:
    """JSON dump of the results (the analogue of the artifact's results/*.json)."""
    return json.dumps(results, indent=2, sort_keys=True)
