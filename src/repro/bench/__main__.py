"""Run the full evaluation and print every table / figure.

Usage::

    python -m repro.bench                  # run everything at the default scale
    REPRO_TRACE_SCALE=0.2 python -m repro.bench   # quicker, smaller traces
    python -m repro.bench --json results.json     # also dump machine-readable results
    python -m repro.bench --experiments fig8,fig10

This is the reproduction's equivalent of the artifact's benchmark scripts plus
``collect.js``: it regenerates the data behind Table 1 and Figures 8–12, the
sort-order remark of §4.3 and the complexity claim of §3.7.
"""

from __future__ import annotations

import argparse
import sys

from ..traces.datasets import default_scale, load_all_traces
from .harness import (
    run_clearing_ablation,
    run_cold_load,
    run_file_size_full,
    run_file_size_pruned,
    run_memory,
    run_merge_latency,
    run_merge_time,
    run_scaling,
    run_sort_order_ablation,
    run_table1,
)
from .report import format_results, results_to_json

_EXPERIMENTS = {
    "table1": ("table1_trace_stats", lambda traces: run_table1(traces)),
    "fig8": ("fig8_merge_and_load_time", lambda traces: run_merge_time(traces)),
    "fig9": ("fig9_clearing_optimisation", lambda traces: run_clearing_ablation(traces)),
    "fig10": ("fig10_memory", lambda traces: run_memory(traces)),
    "fig11": ("fig11_file_size_full", lambda traces: run_file_size_full(traces)),
    "fig12": ("fig12_file_size_pruned", lambda traces: run_file_size_pruned(traces)),
    "x1": ("x1_sort_order", lambda traces: run_sort_order_ablation(traces)),
    "x2": ("x2_scaling", lambda traces: run_scaling()),
    "x3": ("x3_merge_latency", lambda traces: run_merge_latency()),
    "x5": ("x5_cold_load", lambda traces: run_cold_load(traces)),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench", description=__doc__)
    parser.add_argument(
        "--experiments",
        default="all",
        help="comma-separated subset of: " + ", ".join(_EXPERIMENTS) + " (default: all)",
    )
    parser.add_argument("--json", metavar="PATH", help="also write results as JSON")
    args = parser.parse_args(argv)

    if args.experiments == "all":
        selected = list(_EXPERIMENTS)
    else:
        selected = [name.strip() for name in args.experiments.split(",") if name.strip()]
        unknown = [name for name in selected if name not in _EXPERIMENTS]
        if unknown:
            parser.error(f"unknown experiments: {', '.join(unknown)}")

    print(f"Generating benchmark traces (scale factor {default_scale()}) ...", flush=True)
    traces = load_all_traces()
    for trace in traces.values():
        print("  " + trace.summary_line(), flush=True)

    results = {}
    for name in selected:
        key, runner = _EXPERIMENTS[name]
        print(f"Running {name} ...", flush=True)
        results[key] = runner(traces)

    print()
    print(format_results(results))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(results_to_json(results))
        print(f"JSON results written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
