"""Benchmark harness: adapters, timing/memory measurement, experiment runners."""

from .adapters import (
    ALL_ADAPTERS,
    AlgorithmAdapter,
    AutomergeLikeAdapter,
    EgWalkerAdapter,
    MergeOutcome,
    OTAdapter,
    RefCRDTAdapter,
    YjsLikeAdapter,
    adapter_by_name,
)
from .harness import (
    run_all,
    run_clearing_ablation,
    run_file_size_full,
    run_file_size_pruned,
    run_memory,
    run_merge_time,
    run_scaling,
    run_sort_order_ablation,
    run_table1,
)
from .memory import MemoryMeasurement, measure_memory, measure_retained
from .report import format_results, format_table, results_to_json

__all__ = [
    "ALL_ADAPTERS",
    "AlgorithmAdapter",
    "AutomergeLikeAdapter",
    "EgWalkerAdapter",
    "MemoryMeasurement",
    "MergeOutcome",
    "OTAdapter",
    "RefCRDTAdapter",
    "YjsLikeAdapter",
    "adapter_by_name",
    "format_results",
    "format_table",
    "measure_memory",
    "measure_retained",
    "results_to_json",
    "run_all",
    "run_clearing_ablation",
    "run_file_size_full",
    "run_file_size_pruned",
    "run_memory",
    "run_merge_time",
    "run_scaling",
    "run_sort_order_ablation",
    "run_table1",
]
