"""The OT baseline: TTF-style event-graph replay (paper §4.2).

The paper's reference OT implementation uses the TTF approach (Oster et al.
2006): during a merge the document keeps *tombstones* for deleted characters,
and every operation is interpreted against the set of characters that existed
— and were still visible — in the operation's own generation context.  This
sidesteps the notorious TP2 correctness problems of index-shifting
transformation functions while keeping OT's defining cost profile:

* events that are not concurrent with anything are applied directly (OT is
  extremely fast on sequential histories — the S rows of Figure 8);
* every event that *is* concurrent with already-processed events must be
  re-interpreted against the whole tombstone document and the ancestor set of
  its generation context, so merging two branches of ``k`` and ``m`` events
  costs O(k·m) work — the quadratic blow-up that takes the paper's OT an hour
  on trace A2;
* once the merge finishes the tombstones are discarded: like Eg-walker, OT
  retains only the document text in the steady state (Figure 10).

The index-based inclusion-transformation functions of
:mod:`repro.ot.transform` are also provided (and property-tested); they are
the classic formulation, used here for the real-time two-party examples, while
this module is the merge engine the benchmarks exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.causal_graph import CausalGraph
from ..core.event_graph import EventGraph, Version, expand_to_chars
from ..core.ids import Operation
from ..core.topo_sort import sort_branch_aware

__all__ = ["OtReplayResult", "OTDocument", "replay_ot"]


@dataclass(slots=True)
class OtReplayResult:
    """Outcome of an OT replay."""

    text: str
    work_units: int
    concurrent_events: int


@dataclass(slots=True, eq=False)
class _Cell:
    """One character of the merge-time tombstone document."""

    char: str
    inserted_by: int
    agent: str
    deleters: list[int] = field(default_factory=list)

    @property
    def visible(self) -> bool:
        return not self.deleters


class OTDocument:
    """A replica that merges editing histories using operational transformation.

    The public surface mirrors the other baselines: ``merge_event_graph``
    replays a full remote history into an empty document.  Like Eg-walker (and
    unlike the CRDTs) the steady state after a merge is just the text; the
    tombstone document and ancestor sets only exist while merging.
    """

    def __init__(self) -> None:
        self.text = ""
        self.work_units = 0
        self.concurrent_events = 0

    def merge_event_graph(self, graph: EventGraph) -> str:
        result = replay_ot(graph)
        self.text = result.text
        self.work_units = result.work_units
        self.concurrent_events = result.concurrent_events
        return self.text

    def steady_state_objects(self) -> int:
        """Objects retained after the merge (the text only)."""
        return 1


def replay_ot(graph: EventGraph) -> OtReplayResult:
    """Replay ``graph`` with the TTF-style OT merge described above.

    TTF interprets every single-character operation against its own tombstone
    cell, so a run-event graph is first expanded to the per-character oracle
    form — per-character work is precisely the OT cost profile the benchmarks
    measure this baseline for.
    """
    if any(event.op.length > 1 for event in graph.events()):
        graph = expand_to_chars(graph)
    causal = CausalGraph(graph)
    order = sort_branch_aware(graph, range(len(graph)))

    cells: list[_Cell] = []
    processed_version: Version = ()
    work_units = 0
    concurrent_events = 0

    # Cursor hint for the fast (no-concurrency) path: raw index into ``cells``
    # and the number of visible cells strictly before it.  Sequential typing
    # moves the cursor a few characters at a time, so the amortised cost of
    # the fast path is tiny.
    hint_raw = 0
    hint_visible = 0

    def locate_fast(target_visible: int, *, leftmost: bool) -> int:
        """Raw index of the gap with ``target_visible`` visible cells before it."""
        nonlocal hint_raw, hint_visible, work_units
        raw, vis = hint_raw, hint_visible
        raw = min(raw, len(cells))
        while vis > target_visible or (leftmost and raw > 0 and vis == target_visible and not cells[raw - 1].visible):
            raw -= 1
            if cells[raw].visible:
                vis -= 1
            work_units += 1
        while vis < target_visible:
            if raw >= len(cells):
                raise IndexError(f"position {target_visible} beyond visible length {vis}")
            if cells[raw].visible:
                vis += 1
            raw += 1
            work_units += 1
        if leftmost:
            # Back up over invisible cells so the gap sits immediately after
            # the last visible cell (matches the walker's anchoring rule).
            while raw > 0 and not cells[raw - 1].visible and vis == target_visible:
                raw -= 1
                work_units += 1
        hint_raw, hint_visible = raw, vis
        return raw

    for idx in order:
        event = graph[idx]
        op = event.op
        parents = event.parents

        if parents == processed_version:
            # Fast path: the event happened after everything processed so far,
            # so its indexes are valid against the current visible document.
            if op.is_insert:
                raw = locate_fast(op.pos, leftmost=True)
                cells.insert(raw, _Cell(op.content, idx, event.id.agent))
                hint_raw, hint_visible = raw + 1, op.pos + 1
            else:
                raw = locate_fast(op.pos, leftmost=False)
                while not cells[raw].visible:
                    raw += 1
                    work_units += 1
                cells[raw].deleters.append(idx)
                hint_raw, hint_visible = raw, op.pos
        else:
            # Slow path: the event is concurrent with some processed events.
            # Re-interpret its index against its own generation context: the
            # characters inserted by its ancestors and not deleted by them.
            concurrent_events += 1
            ancestors = causal.ancestors(parents)
            work_units += len(ancestors)
            if op.is_insert:
                raw = _locate_in_context(cells, op.pos, ancestors, for_insert=True)
                raw, work = _skip_concurrent_siblings(cells, raw, ancestors, event.id.agent)
                work_units += work + len(cells)
                cells.insert(raw, _Cell(op.content, idx, event.id.agent))
            else:
                raw = _locate_in_context(cells, op.pos, ancestors, for_insert=False)
                work_units += len(cells)
                cells[raw].deleters.append(idx)
            # The raw/visible hint is stale after a slow-path edit.
            hint_raw, hint_visible = 0, 0
        processed_version = causal.advance_version(processed_version, idx)

    text = "".join(cell.char for cell in cells if cell.visible)
    return OtReplayResult(text=text, work_units=work_units, concurrent_events=concurrent_events)


def _locate_in_context(
    cells: list[_Cell], pos: int, ancestors: set[int], *, for_insert: bool
) -> int:
    """Raw index for an operation interpreted in its generation context.

    A cell is *context-visible* iff it was inserted by an ancestor of the
    event and not deleted by any ancestor.  For inserts the result is the
    leftmost gap with ``pos`` context-visible cells before it; for deletes it
    is the raw index of the ``pos``-th context-visible cell.

    Positions slightly beyond the context-visible length are clamped to the
    end rather than rejected: when two concurrent deletions resolve to the
    same character under one interleaving rule but to different characters
    under another, a trace recorded against the other rule can address an
    index one past what this interpretation considers visible.  Clamping (the
    behaviour of production OT systems) preserves the user's "at the end"
    intent.
    """
    seen = 0
    last_visible_raw = -1
    for raw, cell in enumerate(cells):
        context_visible = cell.inserted_by in ancestors and not any(
            d in ancestors for d in cell.deleters
        )
        if for_insert and seen == pos:
            return raw
        if context_visible:
            if not for_insert and seen == pos:
                return raw
            seen += 1
            last_visible_raw = raw
    if for_insert:
        return len(cells)
    if last_visible_raw >= 0:
        return last_visible_raw
    raise IndexError(
        f"operation position {pos} beyond context-visible length {seen}; "
        "the event graph has no visible characters to delete"
    )


def _skip_concurrent_siblings(
    cells: list[_Cell], raw: int, ancestors: set[int], agent: str
) -> tuple[int, int]:
    """Order concurrent insertions at the same gap deterministically.

    Cells at the insertion gap that were inserted by events *not* in the
    current event's context are concurrent siblings; the new character is
    placed after those from agents that sort lower, mirroring the
    tie-breaking of index-based IT functions.
    """
    work = 0
    while raw < len(cells) and cells[raw].inserted_by not in ancestors:
        work += 1
        if cells[raw].agent < agent:
            raw += 1
        else:
            break
    return raw, work
