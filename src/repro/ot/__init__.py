"""Operational transformation baseline (TTF-style IT functions + replay)."""

from .ot_replica import OTDocument, OtReplayResult, replay_ot
from .transform import OtOp, transform, transform_against_many

__all__ = [
    "OTDocument",
    "OtOp",
    "OtReplayResult",
    "replay_ot",
    "transform",
    "transform_against_many",
]
