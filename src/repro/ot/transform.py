"""Operational-transformation functions for character operations.

These are the classic inclusion-transformation (IT) functions for index-based
insert/delete operations (Ellis & Gibbs 1989 lineage, as used by Jupiter and
the TTF control algorithms the paper benchmarks against).  ``transform(a, b)``
rewrites operation ``a`` — defined against some document state — so that it
applies to the document *after* ``b`` (defined against the same state) has
been applied.

Ties between two insertions at the same index are broken by the originating
agent id, so that transforming in either order yields the same final document
(the TP1 property, verified by the property-based tests).  Like all classic
index-based IT function sets, these functions do not satisfy TP2; the control
algorithm in :mod:`repro.ot.ot_replica` therefore fixes a deterministic global
transformation order, which is sufficient for convergence in the replay
setting used here (and is what production OT systems do as well).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.ids import Operation, OpKind, delete_op, insert_op

__all__ = ["OtOp", "transform", "transform_against_many"]


@dataclass(frozen=True, slots=True)
class OtOp:
    """An OT operation: an index-based op plus the agent that generated it.

    ``op`` may be ``None`` when a deletion has been cancelled out by a
    concurrent deletion of the same character (it became a no-op).
    """

    op: Operation | None
    agent: str

    @property
    def is_noop(self) -> bool:
        return self.op is None


def transform(a: OtOp, b: OtOp) -> OtOp:
    """Transform ``a`` to include the effect of concurrent operation ``b``."""
    if a.is_noop or b.is_noop:
        return a
    op_a, op_b = a.op, b.op
    assert op_a is not None and op_b is not None
    if op_a.kind is OpKind.INSERT and op_b.kind is OpKind.INSERT:
        if op_a.pos < op_b.pos:
            return a
        if op_a.pos > op_b.pos:
            return OtOp(insert_op(op_a.pos + op_b.length, op_a.content), a.agent)
        # Tie: deterministic order by agent id keeps transformation symmetric.
        if a.agent < b.agent:
            return a
        return OtOp(insert_op(op_a.pos + op_b.length, op_a.content), a.agent)
    if op_a.kind is OpKind.INSERT and op_b.kind is OpKind.DELETE:
        if op_a.pos <= op_b.pos:
            return a
        return OtOp(insert_op(op_a.pos - op_b.length, op_a.content), a.agent)
    if op_a.kind is OpKind.DELETE and op_b.kind is OpKind.INSERT:
        if op_a.pos < op_b.pos:
            return a
        return OtOp(delete_op(op_a.pos + op_b.length), a.agent)
    # delete / delete
    if op_a.pos < op_b.pos:
        return a
    if op_a.pos > op_b.pos:
        return OtOp(delete_op(op_a.pos - op_b.length), a.agent)
    # Both deleted the same character: a becomes a no-op.
    return OtOp(None, a.agent)


def transform_against_many(a: OtOp, others: list[OtOp]) -> OtOp:
    """Transform ``a`` against a sequence of operations, in order."""
    for other in others:
        a = transform(a, other)
        if a.is_noop:
            # A no-op stays a no-op regardless of further transformations.
            break
    return a
