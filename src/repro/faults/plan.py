"""Deterministic fault injection for the collaboration stack.

A :class:`FaultPlan` is a frozen, seeded description of everything that can
go wrong: message drops, duplicates, reorderings and delays at the transport
or simulator layer, scheduled network partitions, injected server crashes at
precise points around WAL ingest, and slow-reader throttling that drives the
server's backpressure shedding.  ``plan.injector()`` materialises it into a
:class:`FaultInjector` — a stateful, ``random.Random(seed)``-driven oracle
the hooks in :mod:`repro.server` and :mod:`repro.network.simulator` consult.
Two runs with the same plan observe the same faults in the same order, which
is what makes the chaos suite a *test* rather than a dice roll.

This package deliberately imports nothing from ``repro.server`` or
``repro.network`` — the hooks call in, never the other way around — so the
harness can wrap any layer without cycles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = [
    "InjectedCrash",
    "PartitionWindow",
    "FaultPlan",
    "FaultStats",
    "TransportFate",
    "MessageFate",
    "FaultInjector",
    "CRASH_POINTS",
]

#: Where an injected server crash fires relative to one ingest's WAL append.
#: ``before-wal`` loses the batch entirely, ``torn-wal`` leaves a truncated
#: record on disk (crash mid-``write``), ``after-wal`` crashes with the batch
#: durable but unacknowledged.
CRASH_POINTS = ("before-wal", "torn-wal", "after-wal")


class InjectedCrash(ConnectionError):
    """Raised by injection hooks to simulate an abrupt failure.

    Subclasses :class:`ConnectionError` so transport loops treat it exactly
    like a real peer vanishing mid-frame.
    """


@dataclass(frozen=True, slots=True)
class PartitionWindow:
    """Sever links between agents ``a`` and ``b`` for ``[start, end)``.

    Times are in the consuming clock's units — virtual seconds for the
    :class:`~repro.network.simulator.NetworkSimulator`, wall seconds for
    live transports.
    """

    a: str
    b: str
    start: float
    end: float

    def severs(self, src: str, dst: str, now: float) -> bool:
        return (
            self.start <= now < self.end
            and {src, dst} == {self.a, self.b}
        )


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seeded schedule of faults.  Probabilities are per message/frame.

    Attributes:
        seed: drives every probabilistic decision; same seed, same faults.
        drop: probability a simulator message is dropped (transports model
            drop as a connection ``cut`` — TCP loses connections, not
            individual frames).
        duplicate: probability a message/frame is delivered twice.
        reorder: probability a frame is held back and delivered after its
            successor (simulator: delivered with extra delay).
        delay / max_delay: probability and bound of added latency, seconds.
        cut: probability an inbound frame kills the connection instead of
            being processed (client must reconnect and replay).
        partitions: scheduled :class:`PartitionWindow`\\ s.
        crash_after_ingests: after this many ingested batches the server
            crashes at ``crash_point`` (0 disables).
        crash_point: one of :data:`CRASH_POINTS`.
        slow_reader_agents: sessions whose outbound pump is throttled by
            ``slow_reader_delay`` seconds per frame, to force queue growth
            and shedding.
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    max_delay: float = 0.05
    cut: float = 0.0
    partitions: tuple[PartitionWindow, ...] = ()
    crash_after_ingests: int = 0
    crash_point: str = "after-wal"
    slow_reader_agents: tuple[str, ...] = ()
    slow_reader_delay: float = 0.05

    def __post_init__(self) -> None:
        if self.crash_point not in CRASH_POINTS:
            raise ValueError(
                f"crash_point must be one of {CRASH_POINTS}, "
                f"got {self.crash_point!r}"
            )

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)


@dataclass(slots=True)
class FaultStats:
    """What an injector actually did — asserted on by the chaos suite."""

    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    delayed: int = 0
    cuts: int = 0
    partitioned: int = 0
    crashes: int = 0
    slow_waits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "delayed": self.delayed,
            "cuts": self.cuts,
            "partitioned": self.partitioned,
            "crashes": self.crashes,
            "slow_waits": self.slow_waits,
        }


@dataclass(frozen=True, slots=True)
class TransportFate:
    """One inbound frame's fate at a live transport.

    ``cut`` aborts the connection (raise :class:`InjectedCrash`); otherwise
    the frame is processed ``copies`` times after ``delay`` seconds, and
    ``hold`` asks the handler to park it until the next frame arrives
    (adjacent-swap reordering).
    """

    copies: int = 1
    delay: float = 0.0
    hold: bool = False
    cut: bool = False


@dataclass(frozen=True, slots=True)
class MessageFate:
    """One simulator message's fate: dropped, or delivered ``copies`` times
    with ``extra_delay`` virtual seconds added."""

    dropped: bool = False
    copies: int = 1
    extra_delay: float = 0.0


class FaultInjector:
    """Stateful oracle for one run of a :class:`FaultPlan`.

    All randomness flows through one ``random.Random(plan.seed)`` consumed
    in hook-call order, so a fixed workload observes a fixed fault schedule.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._rng = random.Random(plan.seed)
        self._ingests = 0
        self._crash_fired = False

    # -- simulator hook -------------------------------------------------
    def message_fate(self, src: str, dst: str, now: float) -> MessageFate:
        """Decide a simulator message's fate (partitions, drop, dup, delay,
        reorder-as-delay) at virtual time ``now``."""
        plan, rng = self.plan, self._rng
        for window in plan.partitions:
            if window.severs(src, dst, now):
                self.stats.partitioned += 1
                return MessageFate(dropped=True)
        if plan.drop and rng.random() < plan.drop:
            self.stats.dropped += 1
            return MessageFate(dropped=True)
        copies = 1
        if plan.duplicate and rng.random() < plan.duplicate:
            self.stats.duplicated += 1
            copies = 2
        extra = 0.0
        if plan.reorder and rng.random() < plan.reorder:
            self.stats.reordered += 1
            extra += rng.uniform(0.0, plan.max_delay) + 1e-6
        if plan.delay and rng.random() < plan.delay:
            self.stats.delayed += 1
            extra += rng.uniform(0.0, plan.max_delay)
        return MessageFate(copies=copies, extra_delay=extra)

    # -- live transport hook --------------------------------------------
    def inbound_fate(self) -> TransportFate:
        """Decide one inbound frame's fate at a live transport.

        Frame *drops* are expressed as connection cuts: TCP delivers frames
        in order or not at all, and the reconnect/replay path is what heals
        the loss.
        """
        plan, rng = self.plan, self._rng
        if (plan.cut or plan.drop) and rng.random() < max(plan.cut, plan.drop):
            self.stats.cuts += 1
            return TransportFate(cut=True)
        copies = 1
        if plan.duplicate and rng.random() < plan.duplicate:
            self.stats.duplicated += 1
            copies = 2
        hold = False
        if plan.reorder and rng.random() < plan.reorder:
            self.stats.reordered += 1
            hold = True
        delay = 0.0
        if plan.delay and rng.random() < plan.delay:
            self.stats.delayed += 1
            delay = rng.uniform(0.0, plan.max_delay)
        return TransportFate(copies=copies, delay=delay, hold=hold)

    # -- slow readers ----------------------------------------------------
    def outbound_delay(self, agent: str) -> float:
        """Per-frame throttle for ``agent``'s outbound pump (0 = none)."""
        if agent in self.plan.slow_reader_agents:
            self.stats.slow_waits += 1
            return self.plan.slow_reader_delay
        return 0.0

    # -- crash points ----------------------------------------------------
    def crash_due(self) -> str | None:
        """Count one ingested batch; return the crash point when the plan's
        quota is reached (once per injector), else ``None``."""
        self._ingests += 1
        if (
            self.plan.crash_after_ingests
            and not self._crash_fired
            and self._ingests >= self.plan.crash_after_ingests
        ):
            self._crash_fired = True
            self.stats.crashes += 1
            return self.plan.crash_point
        return None
