"""Deterministic fault-injection harness (seeded plans, injectors, crash
points) for the collaboration stack.  See :mod:`repro.faults.plan`."""

from .plan import (
    CRASH_POINTS,
    FaultInjector,
    FaultPlan,
    FaultStats,
    InjectedCrash,
    MessageFate,
    PartitionWindow,
    TransportFate,
)

__all__ = [
    "CRASH_POINTS",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "InjectedCrash",
    "MessageFate",
    "PartitionWindow",
    "TransportFate",
]
