"""Columnar event-graph file format (paper §3.8).

The event graph is stored in column-oriented form, exploiting how people type:
the graph itself is run-length encoded (one event per run of consecutive
insertions or deletions, see :mod:`repro.core.event_graph`), so the file
stores **one row per run** — O(runs), not O(chars) — parents are implicit for
the (overwhelmingly common) case of a linear history, and event ids compress
to runs of ``(agent, first_seq, char_count)`` spanning consecutive events.

Columns (each length-prefixed in the file, after a small header):

``ops``
    One ``(kind, start_position, length)`` row per run event.
``content``
    The UTF-8 concatenation of all inserted characters, in event order
    (optionally LZ-compressed, and optionally restricted to characters that
    were never deleted — the "pruned" mode of Figure 12).
``parents``
    Exceptions to the default "parent = previous event" rule, as
    ``(event_index, parent_count, parent_back_references...)``.
``agents`` / ``ids``
    The agent name table and runs of character ids; one id run can span many
    consecutive events by the same agent (the decoder slices it back into
    per-event start ids using the ops column's lengths).
``snapshot`` (optional)
    A cached copy of the final document text so documents can be loaded
    without replaying the graph (§3.8, "Replicas can optionally also store a
    copy of the final document state").

The decoder reconstructs an :class:`~repro.core.event_graph.EventGraph` (full
mode) or the graph structure with deleted characters blanked out (pruned
mode), and the cached snapshot when present.

Run boundaries are a local encoding detail (split-on-ingest interop), and the
format is carving-neutral by construction: a run split in two costs one extra
``ops`` row but nothing elsewhere — the right half sits directly after the
left half, so it hits the default "parent = previous event" rule and its ids
re-coalesce with the left half's in the ids column.  Decoding reproduces the
writer's carving exactly; merging the decoded graph into a replica that
carved the same history differently is handled by
:meth:`~repro.core.event_graph.EventGraph.merge_from` (pruned files excluded
— their blanked characters no longer content-verify against a full copy).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.event_graph import EventGraph
from ..core.ids import EventId, OpKind, delete_op, insert_op
from . import compression
from .varint import ByteReader, ByteWriter

__all__ = ["EncodeOptions", "DecodedFile", "encode_event_graph", "decode_event_graph"]

_MAGIC = b"EGWK"
#: Version 2: run-length encoded rows (one per run event).  Version 1 stored
#: one row per character and is no longer produced or accepted.
_FORMAT_VERSION = 2

_FLAG_COMPRESS_CONTENT = 1
_FLAG_PRUNED = 2
_FLAG_SNAPSHOT = 4

#: Character substituted for deleted characters when decoding a pruned file.
PRUNED_CHAR = "\x00"


@dataclass(frozen=True, slots=True)
class EncodeOptions:
    """Options controlling the on-disk representation.

    Attributes:
        compress_content: LZ-compress the inserted-text column (the paper's
            LZ4 option; disabled by default to mirror the like-for-like file
            size comparison of §4.5).
        prune_deleted_content: omit the text of characters that were deleted
            (what Yjs does); the graph structure is kept, so merging still
            works, but old versions can no longer be reconstructed verbatim.
        include_snapshot: store the final document text so loading does not
            require a replay.
        final_text: the final document text (required when
            ``include_snapshot`` is set, and used to decide which characters
            survive in pruned mode when provided).
    """

    compress_content: bool = False
    prune_deleted_content: bool = False
    include_snapshot: bool = False
    final_text: str | None = None


@dataclass(slots=True)
class DecodedFile:
    """Result of :func:`decode_event_graph`."""

    graph: EventGraph
    snapshot: str | None
    pruned: bool


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_event_graph(graph: EventGraph, options: EncodeOptions | None = None) -> bytes:
    """Serialise ``graph`` into the columnar format described above."""
    options = options or EncodeOptions()
    if options.include_snapshot and options.final_text is None:
        raise ValueError("include_snapshot requires final_text")

    ops_col = _encode_ops_column(graph)
    content_col = _encode_content_column(graph, options)
    parents_col = _encode_parents_column(graph)
    ids_col = _encode_ids_column(graph)
    snapshot_col = b""
    if options.include_snapshot:
        snapshot_col = (options.final_text or "").encode("utf-8")

    flags = 0
    if options.compress_content:
        flags |= _FLAG_COMPRESS_CONTENT
    if options.prune_deleted_content:
        flags |= _FLAG_PRUNED
    if options.include_snapshot:
        flags |= _FLAG_SNAPSHOT

    writer = ByteWriter()
    writer.write_bytes(_MAGIC)
    writer.write_uvarint(_FORMAT_VERSION)
    writer.write_uvarint(flags)
    writer.write_uvarint(len(graph))
    for column in (ops_col, content_col, parents_col, ids_col, snapshot_col):
        writer.write_length_prefixed(column)
    return writer.getvalue()


def _encode_ops_column(graph: EventGraph) -> bytes:
    """One (kind, start_pos, length) row per run event — O(runs) rows."""
    writer = ByteWriter()
    for event in graph.events():
        op = event.op
        writer.write_uvarint(int(op.kind))
        writer.write_svarint(op.pos)
        writer.write_uvarint(op.length)
    return writer.getvalue()


def _encode_content_column(graph: EventGraph, options: EncodeOptions) -> bytes:
    survived: dict[int, list[bool]] | None = None
    if options.prune_deleted_content:
        survived = _surviving_insertions(graph)
    parts: list[str] = []
    for event in graph.events():
        if not event.op.is_insert:
            continue
        if survived is None:
            parts.append(event.op.content)
            continue
        mask = survived.get(event.index)
        if mask is None:
            continue
        parts.append("".join(c for c, keep in zip(event.op.content, mask) if keep))
    raw = "".join(parts).encode("utf-8")
    if options.compress_content:
        raw = compression.compress(raw)
    return raw


def _surviving_insertions(graph: EventGraph) -> dict[int, list[bool]]:
    """Per-character survival masks for every insertion event.

    ``mask[k]`` is True iff the ``k``-th character of the run was never
    deleted.  Deleted characters are found by replaying the graph once with
    the walker's conversion machinery (cheap relative to encoding, and exact).
    """
    from ..crdt.converter import event_graph_to_crdt_ops
    from ..crdt.list_crdt import CrdtDeleteOp

    deleted_ids: set[EventId] = set()
    for op in event_graph_to_crdt_ops(graph):
        if isinstance(op, CrdtDeleteOp):
            deleted_ids.add(op.target)
    survived: dict[int, list[bool]] = {}
    for event in graph.events():
        if event.op.is_insert:
            survived[event.index] = [
                event.id_at(k) not in deleted_ids for k in range(event.op.length)
            ]
    return survived


def _encode_parents_column(graph: EventGraph) -> bytes:
    writer = ByteWriter()
    exceptions: list[tuple[int, tuple[int, ...]]] = []
    for event in graph.events():
        # Split right-halves (parents = the left half directly before them)
        # land on this default, so ingest-time splits cost no parent bytes.
        default = (event.index - 1,) if event.index > 0 else ()
        if event.parents != default:
            exceptions.append((event.index, event.parents))
    writer.write_uvarint(len(exceptions))
    prev_index = 0
    for index, parents in exceptions:
        writer.write_uvarint(index - prev_index)
        prev_index = index
        writer.write_uvarint(len(parents))
        for parent in parents:
            # Parents are encoded as back-references (always smaller than the
            # event's own index), which keeps the numbers tiny for short-lived
            # branches.
            writer.write_uvarint(index - parent)
    return writer.getvalue()


def _encode_ids_column(graph: EventGraph) -> bytes:
    """Runs of (agent, first_seq, char_count), possibly spanning many events."""
    writer = ByteWriter()
    runs: list[tuple[str, int, int]] = []
    for event in graph.events():
        agent, seq = event.id
        length = event.op.length
        if runs and runs[-1][0] == agent and runs[-1][1] + runs[-1][2] == seq:
            runs[-1] = (agent, runs[-1][1], runs[-1][2] + length)
        else:
            runs.append((agent, seq, length))
    agents: list[str] = []
    agent_index: dict[str, int] = {}
    for agent, _, _ in runs:
        if agent not in agent_index:
            agent_index[agent] = len(agents)
            agents.append(agent)
    writer.write_uvarint(len(agents))
    for agent in agents:
        writer.write_string(agent)
    writer.write_uvarint(len(runs))
    for agent, start_seq, count in runs:
        writer.write_uvarint(agent_index[agent])
        writer.write_uvarint(start_seq)
        writer.write_uvarint(count)
    return writer.getvalue()


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def decode_event_graph(data: bytes) -> DecodedFile:
    """Parse a file produced by :func:`encode_event_graph`."""
    reader = ByteReader(data)
    if reader.read_bytes(4) != _MAGIC:
        raise ValueError("not an Eg-walker event graph file")
    version = reader.read_uvarint()
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported format version {version}")
    flags = reader.read_uvarint()
    num_events = reader.read_uvarint()
    ops_col = reader.read_length_prefixed()
    content_col = reader.read_length_prefixed()
    parents_col = reader.read_length_prefixed()
    ids_col = reader.read_length_prefixed()
    snapshot_col = reader.read_length_prefixed()

    pruned = bool(flags & _FLAG_PRUNED)
    if flags & _FLAG_COMPRESS_CONTENT:
        content_col = compression.decompress(content_col)
    content = content_col.decode("utf-8")

    ops = _decode_ops_column(ops_col, num_events)
    parents = _decode_parents_column(parents_col, num_events)
    lengths = [length for _, _, length in ops]
    ids = _decode_ids_column(ids_col, lengths)

    graph = EventGraph()
    content_pos = 0
    for index in range(num_events):
        kind, pos, length = ops[index]
        if kind is OpKind.INSERT:
            if pruned:
                # In pruned mode we cannot know which characters were deleted
                # without replaying, so deleted characters decode as the
                # sentinel and surviving ones are filled in afterwards.
                text = PRUNED_CHAR * length
            else:
                text = content[content_pos : content_pos + length]
                content_pos += length
            op = insert_op(pos, text)
        else:
            op = delete_op(pos, length)
        graph.add_event(ids[index], parents[index], op, parents_are_indices=True)

    if pruned:
        _fill_pruned_content(graph, content)

    snapshot = snapshot_col.decode("utf-8") if flags & _FLAG_SNAPSHOT else None
    return DecodedFile(graph=graph, snapshot=snapshot, pruned=pruned)


def _fill_pruned_content(graph: EventGraph, surviving_content: str) -> None:
    """Assign surviving characters to the insertions that were never deleted."""
    survived = _surviving_insertions(graph)
    content_iter = iter(surviving_content)
    for event in graph.events():
        if not event.op.is_insert:
            continue
        mask = survived.get(event.index, [])
        chars = [
            next(content_iter, PRUNED_CHAR) if keep else PRUNED_CHAR for keep in mask
        ]
        object.__setattr__(event.op, "content", "".join(chars))


def _decode_ops_column(data: bytes, num_events: int) -> list[tuple[OpKind, int, int]]:
    reader = ByteReader(data)
    ops: list[tuple[OpKind, int, int]] = []
    for _ in range(num_events):
        kind = OpKind(reader.read_uvarint())
        pos = reader.read_svarint()
        length = reader.read_uvarint()
        ops.append((kind, pos, length))
    return ops


def _decode_parents_column(data: bytes, num_events: int) -> list[tuple[int, ...]]:
    reader = ByteReader(data)
    parents: list[tuple[int, ...]] = [
        (index - 1,) if index > 0 else () for index in range(num_events)
    ]
    exception_count = reader.read_uvarint()
    index = 0
    for _ in range(exception_count):
        index += reader.read_uvarint()
        count = reader.read_uvarint()
        refs = tuple(sorted(index - reader.read_uvarint() for __ in range(count)))
        parents[index] = refs
    return parents


def _decode_ids_column(data: bytes, lengths: list[int]) -> list[EventId]:
    """Slice the id runs back into per-event start ids using event lengths."""
    reader = ByteReader(data)
    agent_count = reader.read_uvarint()
    agents = [reader.read_string() for _ in range(agent_count)]
    run_count = reader.read_uvarint()
    ids: list[EventId] = []
    event = 0
    for _ in range(run_count):
        agent = agents[reader.read_uvarint()]
        seq = reader.read_uvarint()
        remaining = reader.read_uvarint()
        while remaining > 0:
            if event >= len(lengths):
                raise ValueError("ids column does not match event count")
            length = lengths[event]
            if length > remaining:
                raise ValueError("id run does not align with event boundaries")
            ids.append(EventId(agent, seq))
            seq += length
            remaining -= length
            event += 1
    if event != len(lengths):
        raise ValueError("ids column does not match event count")
    return ids
