"""Columnar event-graph file format (paper §3.8).

The event graph is stored in column-oriented form, exploiting how people type:
runs of consecutive insertions or deletions compress to a few bytes, parents
are implicit for the (overwhelmingly common) case of a linear history, and
event ids compress to runs of ``(agent, first_seq, count)``.

Columns (each length-prefixed in the file, after a small header):

``ops``
    Runs of ``(kind, start_position, run_length)``.  A run covers consecutive
    events by the same pattern: insertions at consecutive indexes
    (``pos, pos+1, ...``), forward deletions at a constant index, or backspace
    deletions at decreasing indexes.
``content``
    The UTF-8 concatenation of all inserted characters, in event order
    (optionally LZ-compressed, and optionally restricted to characters that
    were never deleted — the "pruned" mode of Figure 12).
``parents``
    Exceptions to the default "parent = previous event" rule, as
    ``(event_index, parent_count, parent_back_references...)``.
``agents`` / ``ids``
    The agent name table and runs of event ids.
``snapshot`` (optional)
    A cached copy of the final document text so documents can be loaded
    without replaying the graph (§3.8, "Replicas can optionally also store a
    copy of the final document state").

The decoder reconstructs an :class:`~repro.core.event_graph.EventGraph` (full
mode) or the graph structure with deleted characters blanked out (pruned
mode), and the cached snapshot when present.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.event_graph import EventGraph
from ..core.ids import EventId, OpKind, delete_op, insert_op
from . import compression
from .varint import ByteReader, ByteWriter

__all__ = ["EncodeOptions", "DecodedFile", "encode_event_graph", "decode_event_graph"]

_MAGIC = b"EGWK"
_FORMAT_VERSION = 1

_FLAG_COMPRESS_CONTENT = 1
_FLAG_PRUNED = 2
_FLAG_SNAPSHOT = 4

#: Character substituted for deleted characters when decoding a pruned file.
PRUNED_CHAR = "\x00"


@dataclass(frozen=True, slots=True)
class EncodeOptions:
    """Options controlling the on-disk representation.

    Attributes:
        compress_content: LZ-compress the inserted-text column (the paper's
            LZ4 option; disabled by default to mirror the like-for-like file
            size comparison of §4.5).
        prune_deleted_content: omit the text of characters that were deleted
            (what Yjs does); the graph structure is kept, so merging still
            works, but old versions can no longer be reconstructed verbatim.
        include_snapshot: store the final document text so loading does not
            require a replay.
        final_text: the final document text (required when
            ``include_snapshot`` is set, and used to decide which characters
            survive in pruned mode when provided).
    """

    compress_content: bool = False
    prune_deleted_content: bool = False
    include_snapshot: bool = False
    final_text: str | None = None


@dataclass(slots=True)
class DecodedFile:
    """Result of :func:`decode_event_graph`."""

    graph: EventGraph
    snapshot: str | None
    pruned: bool


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_event_graph(graph: EventGraph, options: EncodeOptions | None = None) -> bytes:
    """Serialise ``graph`` into the columnar format described above."""
    options = options or EncodeOptions()
    if options.include_snapshot and options.final_text is None:
        raise ValueError("include_snapshot requires final_text")

    ops_col = _encode_ops_column(graph)
    content_col = _encode_content_column(graph, options)
    parents_col = _encode_parents_column(graph)
    ids_col = _encode_ids_column(graph)
    snapshot_col = b""
    if options.include_snapshot:
        snapshot_col = (options.final_text or "").encode("utf-8")

    flags = 0
    if options.compress_content:
        flags |= _FLAG_COMPRESS_CONTENT
    if options.prune_deleted_content:
        flags |= _FLAG_PRUNED
    if options.include_snapshot:
        flags |= _FLAG_SNAPSHOT

    writer = ByteWriter()
    writer.write_bytes(_MAGIC)
    writer.write_uvarint(_FORMAT_VERSION)
    writer.write_uvarint(flags)
    writer.write_uvarint(len(graph))
    for column in (ops_col, content_col, parents_col, ids_col, snapshot_col):
        writer.write_length_prefixed(column)
    return writer.getvalue()


def _encode_ops_column(graph: EventGraph) -> bytes:
    writer = ByteWriter()
    events = graph.events()
    i = 0
    n = len(events)
    while i < n:
        first = events[i].op
        kind = first.kind
        start_pos = first.pos
        run_len = 1
        direction = 0  # 0: constant (delete-forward), +1: ascending, -1: descending
        j = i + 1
        while j < n:
            op = events[j].op
            if op.kind != kind:
                break
            expected_parent = (events[j].parents == (j - 1,))
            if not expected_parent:
                break
            prev = events[j - 1].op
            if kind is OpKind.INSERT:
                if op.pos != prev.pos + 1:
                    break
                step = 1
            else:
                if op.pos == prev.pos:
                    step = 0
                elif op.pos == prev.pos - 1:
                    step = -1
                else:
                    break
                if run_len == 1:
                    direction = step
                elif step != direction:
                    break
            run_len += 1
            j += 1
        header = int(kind) | ((direction & 0x3) << 1)
        writer.write_uvarint(header)
        writer.write_svarint(start_pos)
        writer.write_uvarint(run_len)
        i = j
    return writer.getvalue()


def _encode_content_column(graph: EventGraph, options: EncodeOptions) -> bytes:
    survived: set[int] | None = None
    if options.prune_deleted_content:
        survived = _surviving_insertions(graph)
    parts: list[str] = []
    for event in graph.events():
        if not event.op.is_insert:
            continue
        if survived is not None and event.index not in survived:
            continue
        parts.append(event.op.content)
    raw = "".join(parts).encode("utf-8")
    if options.compress_content:
        raw = compression.compress(raw)
    return raw


def _surviving_insertions(graph: EventGraph) -> set[int]:
    """Indices of insertion events whose character is never deleted.

    A character inserted by event ``i`` is deleted if any delete event
    targets it; we find targets by replaying the graph once with the walker's
    conversion machinery (cheap relative to encoding, and exact).
    """
    from ..crdt.converter import event_graph_to_crdt_ops
    from ..crdt.list_crdt import CrdtDeleteOp

    deleted_ids = set()
    for op in event_graph_to_crdt_ops(graph):
        if isinstance(op, CrdtDeleteOp):
            deleted_ids.add(op.target)
    survived = set()
    for event in graph.events():
        if event.op.is_insert and event.id not in deleted_ids:
            survived.add(event.index)
    return survived


def _encode_parents_column(graph: EventGraph) -> bytes:
    writer = ByteWriter()
    exceptions: list[tuple[int, tuple[int, ...]]] = []
    for event in graph.events():
        default = (event.index - 1,) if event.index > 0 else ()
        if event.parents != default:
            exceptions.append((event.index, event.parents))
    writer.write_uvarint(len(exceptions))
    prev_index = 0
    for index, parents in exceptions:
        writer.write_uvarint(index - prev_index)
        prev_index = index
        writer.write_uvarint(len(parents))
        for parent in parents:
            # Parents are encoded as back-references (always smaller than the
            # event's own index), which keeps the numbers tiny for short-lived
            # branches.
            writer.write_uvarint(index - parent)
    return writer.getvalue()


def _encode_ids_column(graph: EventGraph) -> bytes:
    writer = ByteWriter()
    runs: list[tuple[str, int, int]] = []
    for event in graph.events():
        agent, seq = event.id
        if runs and runs[-1][0] == agent and runs[-1][1] + runs[-1][2] == seq:
            runs[-1] = (agent, runs[-1][1], runs[-1][2] + 1)
        else:
            runs.append((agent, seq, 1))
    agents: list[str] = []
    agent_index: dict[str, int] = {}
    for agent, _, _ in runs:
        if agent not in agent_index:
            agent_index[agent] = len(agents)
            agents.append(agent)
    writer.write_uvarint(len(agents))
    for agent in agents:
        writer.write_string(agent)
    writer.write_uvarint(len(runs))
    for agent, start_seq, count in runs:
        writer.write_uvarint(agent_index[agent])
        writer.write_uvarint(start_seq)
        writer.write_uvarint(count)
    return writer.getvalue()


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def decode_event_graph(data: bytes) -> DecodedFile:
    """Parse a file produced by :func:`encode_event_graph`."""
    reader = ByteReader(data)
    if reader.read_bytes(4) != _MAGIC:
        raise ValueError("not an Eg-walker event graph file")
    version = reader.read_uvarint()
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported format version {version}")
    flags = reader.read_uvarint()
    num_events = reader.read_uvarint()
    ops_col = reader.read_length_prefixed()
    content_col = reader.read_length_prefixed()
    parents_col = reader.read_length_prefixed()
    ids_col = reader.read_length_prefixed()
    snapshot_col = reader.read_length_prefixed()

    pruned = bool(flags & _FLAG_PRUNED)
    if flags & _FLAG_COMPRESS_CONTENT:
        content_col = compression.decompress(content_col)
    content = content_col.decode("utf-8")

    ops = _decode_ops_column(ops_col, num_events)
    parents = _decode_parents_column(parents_col, num_events)
    ids = _decode_ids_column(ids_col, num_events)

    graph = EventGraph()
    content_iter = iter(content)
    survived_check_needed = pruned
    for index in range(num_events):
        kind, pos = ops[index]
        if kind is OpKind.INSERT:
            if survived_check_needed:
                # In pruned mode we cannot know which characters were deleted
                # without replaying, so deleted characters decode as the
                # sentinel and surviving ones are filled in afterwards.
                char = PRUNED_CHAR
            else:
                char = next(content_iter)
            op = insert_op(pos, char)
        else:
            op = delete_op(pos)
        graph.add_event(ids[index], parents[index], op, parents_are_indices=True)

    if pruned:
        _fill_pruned_content(graph, content)

    snapshot = snapshot_col.decode("utf-8") if flags & _FLAG_SNAPSHOT else None
    return DecodedFile(graph=graph, snapshot=snapshot, pruned=pruned)


def _fill_pruned_content(graph: EventGraph, surviving_content: str) -> None:
    """Assign surviving characters to the insertions that were never deleted."""
    survived = _surviving_insertions(graph)
    content_iter = iter(surviving_content)
    for event in graph.events():
        if event.op.is_insert and event.index in survived:
            char = next(content_iter, PRUNED_CHAR)
            object.__setattr__(event.op, "content", char)


def _decode_ops_column(data: bytes, num_events: int) -> list[tuple[OpKind, int]]:
    reader = ByteReader(data)
    ops: list[tuple[OpKind, int]] = []
    while len(ops) < num_events:
        header = reader.read_uvarint()
        kind = OpKind(header & 0x1)
        direction_bits = (header >> 1) & 0x3
        direction = -1 if direction_bits == 0x3 else direction_bits
        start_pos = reader.read_svarint()
        run_len = reader.read_uvarint()
        pos = start_pos
        for k in range(run_len):
            ops.append((kind, pos))
            if kind is OpKind.INSERT:
                pos += 1
            else:
                pos += direction
    if len(ops) != num_events:
        raise ValueError("ops column does not match event count")
    return ops


def _decode_parents_column(data: bytes, num_events: int) -> list[tuple[int, ...]]:
    reader = ByteReader(data)
    parents: list[tuple[int, ...]] = [
        (index - 1,) if index > 0 else () for index in range(num_events)
    ]
    exception_count = reader.read_uvarint()
    index = 0
    for _ in range(exception_count):
        index += reader.read_uvarint()
        count = reader.read_uvarint()
        refs = tuple(sorted(index - reader.read_uvarint() for __ in range(count)))
        parents[index] = refs
    return parents


def _decode_ids_column(data: bytes, num_events: int) -> list[EventId]:
    reader = ByteReader(data)
    agent_count = reader.read_uvarint()
    agents = [reader.read_string() for _ in range(agent_count)]
    run_count = reader.read_uvarint()
    ids: list[EventId] = []
    for _ in range(run_count):
        agent = agents[reader.read_uvarint()]
        start_seq = reader.read_uvarint()
        count = reader.read_uvarint()
        for offset in range(count):
            ids.append(EventId(agent, start_seq + offset))
    if len(ids) != num_events:
        raise ValueError("ids column does not match event count")
    return ids
