"""A small self-contained LZ-style byte compressor.

The paper's storage format LZ4-compresses the concatenated inserted text
(§3.8).  LZ4 is not available offline, so this module implements a compact
LZ77 variant with the same flavour: a token stream of literal runs and
back-references (offset, length) found with a rolling hash table.  It is not
meant to compete with LZ4 on speed, only to provide a realistic "compression
enabled" mode; the file-size benchmarks disable compression by default,
mirroring the paper (which disables LZ4/gzip for the like-for-like
comparison in §4.5).
"""

from __future__ import annotations

from .varint import ByteReader, ByteWriter

__all__ = ["compress", "decompress"]

_MIN_MATCH = 4
_MAX_MATCH = 255 + _MIN_MATCH
_WINDOW = 1 << 16


def compress(data: bytes) -> bytes:
    """Compress ``data``; the result always round-trips through :func:`decompress`."""
    writer = ByteWriter()
    writer.write_uvarint(len(data))
    table: dict[bytes, int] = {}
    i = 0
    literal_start = 0
    n = len(data)
    while i < n:
        match_len = 0
        match_offset = 0
        if i + _MIN_MATCH <= n:
            key = data[i : i + _MIN_MATCH]
            candidate = table.get(key)
            if candidate is not None and i - candidate <= _WINDOW:
                length = _MIN_MATCH
                max_len = min(_MAX_MATCH, n - i)
                while length < max_len and data[candidate + length] == data[i + length]:
                    length += 1
                match_len = length
                match_offset = i - candidate
            table[key] = i
        if match_len >= _MIN_MATCH:
            literal = data[literal_start:i]
            _emit(writer, literal, match_offset, match_len)
            # Index a few positions inside the match so later data can refer
            # back into it (coarse, but keeps compression reasonable).
            end = i + match_len
            step = max(1, match_len // 8)
            for j in range(i + 1, min(end, n - _MIN_MATCH), step):
                table[data[j : j + _MIN_MATCH]] = j
            i = end
            literal_start = i
        else:
            i += 1
    if literal_start < n or n == 0:
        _emit(writer, data[literal_start:], 0, 0)
    return writer.getvalue()


def _emit(writer: ByteWriter, literal: bytes, offset: int, length: int) -> None:
    writer.write_uvarint(len(literal))
    writer.write_bytes(literal)
    writer.write_uvarint(offset)
    if offset:
        writer.write_uvarint(length - _MIN_MATCH)


def decompress(data: bytes) -> bytes:
    """Inverse of :func:`compress`."""
    reader = ByteReader(data)
    expected = reader.read_uvarint()
    out = bytearray()
    while len(out) < expected or (expected == 0 and not reader.at_end()):
        literal_len = reader.read_uvarint()
        out.extend(reader.read_bytes(literal_len))
        offset = reader.read_uvarint()
        if offset:
            length = reader.read_uvarint() + _MIN_MATCH
            start = len(out) - offset
            if start < 0:
                raise ValueError("corrupt compressed stream: bad offset")
            for k in range(length):
                out.append(out[start + k])
        if expected == 0:
            break
    if len(out) != expected:
        raise ValueError("corrupt compressed stream: length mismatch")
    return bytes(out)
