"""Storage format v3: a columnar container with selective column reads.

Version 2 (:mod:`repro.storage.encoder`) already stores the event graph in
column-oriented form, but the columns are length-prefixed and *interleaved* in
one stream: a reader must walk past every earlier column to reach a later one,
so a cold load pays for the whole file before the first byte of text renders.

Version 3 re-layouts the same columns as a **random-access container**::

    +------+---------+-------+------------+-------------+
    | EGW3 | version | flags | num_events | num_columns |
    +------+---------+-------+------------+-------------+
    | column table: one entry per column                |
    |   (id, col_flags, offset, stored_len, raw_len,    |
    |    crc32 of the stored bytes)                     |
    +---------------------------------------------------+
    | header crc32 (over everything above)              |
    +---------------------------------------------------+
    | column blocks, contiguous, in table order         |
    +---------------------------------------------------+

Each column block is independently compressed (the repo's LZ77, stored raw
when compression does not help) and CRC-framed, so a reader can

* **selectively read** just the columns it needs — :func:`decode_text`
  reconstructs the current document text from the snapshot column (or, for
  linear histories, from the ops+content columns via span replay) without
  materialising a single :class:`~repro.core.event_graph.EventGraph` event;
* **lazily hydrate** the rest — :class:`LazyDecodedFile` parses the header up
  front and decodes the history columns (parents, agents, ids) only on first
  :attr:`~LazyDecodedFile.graph` / :attr:`~LazyDecodedFile.history` access,
  with byte-read accounting (:class:`ReadStats`) so tests can assert exactly
  which blocks were touched;
* **fail loudly** — every malformed input raises :class:`StorageError` with a
  stable :attr:`~StorageError.code`; a flipped bit is caught by the header or
  column CRC, never silently decoded into a wrong graph.

Unknown column ids are skipped (the header CRC still covers their table
entries), which keeps the format extensible: a future writer can add, say, a
formatting-spans column without breaking old readers.

Version 2 files remain readable through :func:`decode_file`, which sniffs the
magic and dispatches; v2 is now a read-only legacy format.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..core.event_graph import EventGraph
from ..core.ids import EventId, OpKind, delete_op, insert_op
from . import compression
from .encoder import (
    DecodedFile,
    EncodeOptions,
    _decode_ops_column,
    _decode_parents_column,
    _encode_content_column,
    _encode_ops_column,
    _encode_parents_column,
    _fill_pruned_content,
    decode_event_graph,
)
from .varint import ByteReader, ByteWriter

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..core.document import Document
    from ..core.oplog import RemoteEvent
    from ..history.history import History

__all__ = [
    "MAGIC_V2",
    "MAGIC_V3",
    "COLUMN_NAMES",
    "ContainerOptions",
    "ColumnInfo",
    "ContainerHeader",
    "LazyDecodedFile",
    "ReadStats",
    "StorageError",
    "decode_event_graph_v3",
    "decode_file",
    "decode_text",
    "encode_event_graph_v3",
    "parse_header",
]

MAGIC_V2 = b"EGWK"
MAGIC_V3 = b"EGW3"
_FORMAT_VERSION = 3

#: File-level flags (column-level concerns like compression live per column).
_FLAG_PRUNED = 1

#: Column ids.  v3 splits v2's combined agents+ids column in two so a reader
#: resolving only *who edited* never pays for the id runs (and vice versa).
COL_OPS = 1
COL_CONTENT = 2
COL_PARENTS = 3
COL_AGENTS = 4
COL_IDS = 5
COL_SNAPSHOT = 6

COLUMN_NAMES: Mapping[int, str] = {
    COL_OPS: "ops",
    COL_CONTENT: "content",
    COL_PARENTS: "parents",
    COL_AGENTS: "agents",
    COL_IDS: "ids",
    COL_SNAPSHOT: "snapshot",
}

#: Column-level flags.
_COL_FLAG_COMPRESSED = 1

#: Columns every v3 file must carry (snapshot is optional).
_REQUIRED_COLUMNS = (COL_OPS, COL_CONTENT, COL_PARENTS, COL_AGENTS, COL_IDS)

#: Columns :func:`decode_text` may touch on the no-snapshot path.  ``parents``
#: is included only to *check* linearity (for a linear history the column is a
#: single zero byte); the history columns proper (agents, ids) are never read.
TEXT_COLUMNS = (COL_SNAPSHOT, COL_OPS, COL_CONTENT, COL_PARENTS)


class StorageError(ValueError):
    """A malformed storage file, with a stable machine-readable ``code``.

    Codes:

    ``bad-magic``             not an event-graph file at all
    ``unsupported-version``   a version this reader does not speak
    ``truncated-header``      header/column table cut short
    ``header-crc-mismatch``   header or column table corrupted
    ``duplicate-column``      the same column id appears twice
    ``stale-column-offset``   table offsets are not contiguous / out of range
    ``truncated-column``      column blocks cut short
    ``trailing-data``         bytes after the last column block
    ``column-crc-mismatch``   a column block corrupted
    ``column-decode``         a column's payload failed to parse
    ``missing-column``        a required column is absent
    ``text-requires-graph``   selective text read impossible for this file
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


@dataclass(frozen=True, slots=True)
class ContainerOptions:
    """Options controlling the v3 on-disk representation.

    Attributes:
        compress_columns: LZ-compress each column independently, storing the
            raw bytes whenever compression does not shrink them.  On by
            default — same-typed columns compress far better than v2's
            interleaved rows, which is where "v3 ≤ v2" comes from.
        prune_deleted_content: omit the text of deleted characters (Figure 12
            mode); the graph structure is kept, so merging still works.
        include_snapshot: store the final document text as its own column so
            text loads never replay anything.
        final_text: the final document text (required with
            ``include_snapshot``).
    """

    compress_columns: bool = True
    prune_deleted_content: bool = False
    include_snapshot: bool = False
    final_text: str | None = None


@dataclass(frozen=True, slots=True)
class ColumnInfo:
    """One column table entry."""

    column_id: int
    flags: int
    offset: int
    stored_length: int
    raw_length: int
    crc32: int

    @property
    def compressed(self) -> bool:
        return bool(self.flags & _COL_FLAG_COMPRESSED)

    @property
    def name(self) -> str:
        return COLUMN_NAMES.get(self.column_id, f"column-{self.column_id}")


@dataclass(frozen=True, slots=True)
class ContainerHeader:
    """The parsed, CRC-verified header of a v3 file."""

    flags: int
    num_events: int
    columns: tuple[ColumnInfo, ...]
    header_length: int

    @property
    def pruned(self) -> bool:
        return bool(self.flags & _FLAG_PRUNED)

    def find(self, column_id: int) -> ColumnInfo | None:
        for column in self.columns:
            if column.column_id == column_id:
                return column
        return None

    def require(self, column_id: int) -> ColumnInfo:
        column = self.find(column_id)
        if column is None:
            name = COLUMN_NAMES.get(column_id, str(column_id))
            raise StorageError("missing-column", f"required column {name!r} absent")
        return column


@dataclass(slots=True)
class ReadStats:
    """Byte-read accounting for a :class:`LazyDecodedFile`.

    ``column_reads`` counts *physical* block reads (cache hits do not count),
    so tests can assert a column was decoded exactly once.
    ``events_materialised`` counts events added to an in-memory
    :class:`EventGraph` — the cold-load benchmark gates on it staying zero.
    """

    header_bytes: int = 0
    column_bytes: dict[str, int] = field(default_factory=dict)
    column_reads: dict[str, int] = field(default_factory=dict)
    events_materialised: int = 0
    hydrations: int = 0

    @property
    def bytes_read(self) -> int:
        return self.header_bytes + sum(self.column_bytes.values())

    def record_column(self, name: str, stored_length: int) -> None:
        self.column_bytes[name] = self.column_bytes.get(name, 0) + stored_length
        self.column_reads[name] = self.column_reads.get(name, 0) + 1


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_event_graph_v3(
    graph: EventGraph, options: ContainerOptions | None = None
) -> bytes:
    """Serialise ``graph`` as a v3 columnar container.

    The output is deterministic for a given graph and options (agent table in
    first-appearance order, deterministic compressor), so re-encoding a
    decoded file reproduces it byte for byte.
    """
    options = options or ContainerOptions()
    if options.include_snapshot and options.final_text is None:
        raise ValueError("include_snapshot requires final_text")

    legacy = EncodeOptions(prune_deleted_content=options.prune_deleted_content)
    agents_col, ids_col = _encode_agent_and_id_columns(graph)
    payloads: list[tuple[int, bytes]] = [
        (COL_OPS, _encode_ops_column(graph)),
        (COL_CONTENT, _encode_content_column(graph, legacy)),
        (COL_PARENTS, _encode_parents_column(graph)),
        (COL_AGENTS, agents_col),
        (COL_IDS, ids_col),
    ]
    if options.include_snapshot:
        payloads.append((COL_SNAPSHOT, (options.final_text or "").encode("utf-8")))

    flags = _FLAG_PRUNED if options.prune_deleted_content else 0

    blocks: list[tuple[int, int, bytes, int]] = []
    for column_id, raw in payloads:
        stored = raw
        col_flags = 0
        if options.compress_columns:
            packed = compression.compress(raw)
            if len(packed) < len(raw):
                stored = packed
                col_flags = _COL_FLAG_COMPRESSED
        blocks.append((column_id, col_flags, stored, len(raw)))

    header = ByteWriter()
    header.write_bytes(MAGIC_V3)
    header.write_uvarint(_FORMAT_VERSION)
    header.write_uvarint(flags)
    header.write_uvarint(len(graph))
    header.write_uvarint(len(blocks))
    offset = 0
    for column_id, col_flags, stored, raw_length in blocks:
        header.write_uvarint(column_id)
        header.write_uvarint(col_flags)
        header.write_uvarint(offset)
        header.write_uvarint(len(stored))
        header.write_uvarint(raw_length)
        header.write_bytes(zlib.crc32(stored).to_bytes(4, "big"))
        offset += len(stored)
    header_bytes = header.getvalue()

    out = ByteWriter()
    out.write_bytes(header_bytes)
    out.write_bytes(zlib.crc32(header_bytes).to_bytes(4, "big"))
    for _, _, stored, _ in blocks:
        out.write_bytes(stored)
    return out.getvalue()


def _encode_agent_and_id_columns(graph: EventGraph) -> tuple[bytes, bytes]:
    """v2's combined ids column, split in two: the agent name table and the
    ``(agent_index, first_seq, char_count)`` runs (one run can span many
    consecutive events by the same agent)."""
    runs: list[tuple[str, int, int]] = []
    for event in graph.events():
        agent, seq = event.id
        length = event.op.length
        if runs and runs[-1][0] == agent and runs[-1][1] + runs[-1][2] == seq:
            runs[-1] = (agent, runs[-1][1], runs[-1][2] + length)
        else:
            runs.append((agent, seq, length))

    agents: list[str] = []
    agent_index: dict[str, int] = {}
    for agent, _, _ in runs:
        if agent not in agent_index:
            agent_index[agent] = len(agents)
            agents.append(agent)

    agents_writer = ByteWriter()
    agents_writer.write_uvarint(len(agents))
    for agent in agents:
        agents_writer.write_string(agent)

    ids_writer = ByteWriter()
    ids_writer.write_uvarint(len(runs))
    for agent, start_seq, count in runs:
        ids_writer.write_uvarint(agent_index[agent])
        ids_writer.write_uvarint(start_seq)
        ids_writer.write_uvarint(count)
    return agents_writer.getvalue(), ids_writer.getvalue()


# ----------------------------------------------------------------------
# Header parsing
# ----------------------------------------------------------------------
def parse_header(data: bytes) -> ContainerHeader:
    """Parse and fully validate a v3 header + column table.

    Raises :class:`StorageError` on any malformation; after this returns, all
    column table entries are in range and contiguous, so block slicing cannot
    fail (block *contents* are still CRC-checked on read).
    """
    if len(data) < 4:
        raise StorageError("truncated-header", "file shorter than the magic")
    if data[:4] != MAGIC_V3:
        raise StorageError("bad-magic", "not a v3 event graph container")
    reader = ByteReader(data)
    try:
        reader.read_bytes(4)
        version = reader.read_uvarint()
        if version != _FORMAT_VERSION:
            raise StorageError("unsupported-version", f"format version {version}")
        flags = reader.read_uvarint()
        num_events = reader.read_uvarint()
        num_columns = reader.read_uvarint()
        entries: list[ColumnInfo] = []
        for _ in range(num_columns):
            column_id = reader.read_uvarint()
            col_flags = reader.read_uvarint()
            offset = reader.read_uvarint()
            stored_length = reader.read_uvarint()
            raw_length = reader.read_uvarint()
            crc = int.from_bytes(reader.read_bytes(4), "big")
            entries.append(
                ColumnInfo(column_id, col_flags, offset, stored_length, raw_length, crc)
            )
        table_end = len(data) - reader.remaining()
        header_crc = int.from_bytes(reader.read_bytes(4), "big")
    except StorageError:
        raise
    except ValueError as exc:
        raise StorageError("truncated-header", str(exc)) from exc

    if zlib.crc32(data[:table_end]) != header_crc:
        raise StorageError("header-crc-mismatch", "header or column table corrupted")

    seen: set[int] = set()
    expected_offset = 0
    for entry in entries:
        if entry.column_id in seen:
            raise StorageError(
                "duplicate-column", f"column {entry.name!r} appears twice"
            )
        seen.add(entry.column_id)
        if entry.offset != expected_offset:
            raise StorageError(
                "stale-column-offset",
                f"column {entry.name!r} at offset {entry.offset}, "
                f"expected {expected_offset}",
            )
        expected_offset += entry.stored_length

    header_length = table_end + 4
    blocks_length = len(data) - header_length
    if blocks_length < expected_offset:
        raise StorageError(
            "truncated-column",
            f"column blocks cut short ({blocks_length} of {expected_offset} bytes)",
        )
    if blocks_length > expected_offset:
        raise StorageError(
            "trailing-data",
            f"{blocks_length - expected_offset} bytes after the last column block",
        )
    return ContainerHeader(
        flags=flags,
        num_events=num_events,
        columns=tuple(entries),
        header_length=header_length,
    )


def _read_column(data: bytes, header: ContainerHeader, column: ColumnInfo) -> bytes:
    """Slice, CRC-check, and (if needed) decompress one column block."""
    start = header.header_length + column.offset
    stored = data[start : start + column.stored_length]
    if zlib.crc32(stored) != column.crc32:
        raise StorageError(
            "column-crc-mismatch", f"column {column.name!r} block corrupted"
        )
    if not column.compressed:
        payload = stored
    else:
        try:
            payload = compression.decompress(stored)
        except ValueError as exc:
            raise StorageError(
                "column-decode", f"column {column.name!r} failed to decompress"
            ) from exc
    if len(payload) != column.raw_length:
        raise StorageError(
            "column-decode",
            f"column {column.name!r} decoded to {len(payload)} bytes, "
            f"expected {column.raw_length}",
        )
    return payload


# ----------------------------------------------------------------------
# Full decode
# ----------------------------------------------------------------------
def decode_event_graph_v3(data: bytes) -> DecodedFile:
    """Parse a v3 file into a fully materialised :class:`DecodedFile`."""
    lazy = LazyDecodedFile(data)
    graph = lazy.graph
    return DecodedFile(graph=graph, snapshot=lazy.snapshot, pruned=lazy.pruned)


def decode_file(data: bytes) -> DecodedFile:
    """Decode an event-graph file of either format, sniffing the magic.

    v3 files decode through the container machinery; v2 files go through the
    legacy decoder (:func:`repro.storage.encoder.decode_event_graph`), which
    is retained read-only.
    """
    if len(data) >= 4 and data[:4] == MAGIC_V2:
        try:
            return decode_event_graph(data)
        except StorageError:
            raise
        except ValueError as exc:
            raise StorageError("column-decode", f"legacy v2 file: {exc}") from exc
    if len(data) >= 4 and data[:4] == MAGIC_V3:
        return decode_event_graph_v3(data)
    if len(data) < 4:
        raise StorageError("truncated-header", "file shorter than the magic")
    raise StorageError("bad-magic", "not an event graph file")


# ----------------------------------------------------------------------
# Selective reads
# ----------------------------------------------------------------------
def decode_text(data: bytes) -> str:
    """Reconstruct the current document text from a v3 file without
    materialising the causal graph.

    Fast path: the snapshot column.  Fallback: for linear histories (the
    parents column records zero exceptions), replay the ops column over the
    content column span-by-span.  Anything else raises
    ``StorageError("text-requires-graph")`` — use :class:`LazyDecodedFile`
    (whose :attr:`~LazyDecodedFile.text` hydrates as a last resort) or
    :func:`decode_file` for those.
    """
    return LazyDecodedFile(data).selective_text()


def _replay_linear_text(
    ops: list[tuple[OpKind, int, int]], content: bytes, pruned: bool
) -> str:
    """Replay a linear history's ops over its content column, span-wise.

    The document is held as a list of ``[event_index, offset, length]`` spans
    into the insertion events; every edit splices whole spans (splitting at
    most two at the boundaries), so the cost is O(spans), never O(chars).
    """
    spans: list[list[int]] = []

    for index, (kind, pos, length) in enumerate(ops):
        if kind is OpKind.INSERT:
            _splice_spans(spans, pos, 0, [index, 0, length])
        else:
            _splice_spans(spans, pos, length, None)

    text = content.decode("utf-8")
    if not pruned:
        # Full content: event i's text starts at the running total of all
        # earlier insertions' lengths.
        starts: dict[int, int] = {}
        total = 0
        for index, (kind, _, length) in enumerate(ops):
            if kind is OpKind.INSERT:
                starts[index] = total
                total += length
        return "".join(
            text[starts[event] + offset : starts[event] + offset + length]
            for event, offset, length in spans
        )

    # Pruned content is the *surviving* characters concatenated in event
    # order — exactly the final document's spans sorted by (event, offset),
    # so assigning the pruned text to that ordering reconstructs each chunk.
    order = sorted(range(len(spans)), key=lambda i: (spans[i][0], spans[i][1]))
    chunks: list[str] = [""] * len(spans)
    cursor = 0
    for span_index in order:
        length = spans[span_index][2]
        chunks[span_index] = text[cursor : cursor + length]
        cursor += length
    if cursor != len(text):
        raise StorageError(
            "column-decode",
            f"pruned content has {len(text)} chars, final document needs {cursor}",
        )
    return "".join(chunks)


def _splice_spans(
    spans: list[list[int]], pos: int, delete_length: int, insert: list[int] | None
) -> None:
    """Splice the span list at document position ``pos``: remove
    ``delete_length`` characters, then insert ``insert`` (if any)."""
    i = 0
    covered = 0
    while i < len(spans) and covered + spans[i][2] <= pos:
        covered += spans[i][2]
        i += 1
    if covered < pos:
        if i >= len(spans):
            raise StorageError("column-decode", "ops column edits past document end")
        # Split the span containing ``pos``.
        event, offset, length = spans[i]
        left = pos - covered
        spans[i : i + 1] = [[event, offset, left], [event, offset + left, length - left]]
        i += 1
        covered = pos

    remaining = delete_length
    while remaining > 0:
        if i >= len(spans):
            raise StorageError("column-decode", "ops column deletes past document end")
        event, offset, length = spans[i]
        if length <= remaining:
            del spans[i]
            remaining -= length
        else:
            spans[i] = [event, offset + remaining, length - remaining]
            remaining = 0

    if insert is not None:
        spans.insert(i, list(insert))


# ----------------------------------------------------------------------
# Lazy decoding
# ----------------------------------------------------------------------
class LazyDecodedFile:
    """A v3 file decoded on demand, column by column.

    Construction parses (and CRC-verifies) only the header; each column block
    is sliced, CRC-checked, and decompressed at most once, on first use.
    :attr:`text` resolves through the cheap columns when it can; the history
    columns (parents, agents, ids) are decoded only when :attr:`graph`,
    :attr:`history`, or :meth:`document` force full hydration — exactly once,
    however many of them are touched.  :attr:`stats` records what was read.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self.stats = ReadStats()
        self.header = parse_header(data)
        self.stats.header_bytes = self.header.header_length
        self._columns: dict[int, bytes] = {}
        self._graph: EventGraph | None = None
        self._history: "History" | None = None
        self._text: str | None = None

    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        return self.header.num_events

    @property
    def pruned(self) -> bool:
        return self.header.pruned

    @property
    def has_snapshot(self) -> bool:
        return self.header.find(COL_SNAPSHOT) is not None

    @property
    def file_size(self) -> int:
        return len(self._data)

    # ------------------------------------------------------------------
    def column_payload(self, column_id: int) -> bytes:
        """The decoded payload of a column, read (and accounted) at most once."""
        cached = self._columns.get(column_id)
        if cached is not None:
            return cached
        column = self.header.require(column_id)
        payload = _read_column(self._data, self.header, column)
        self.stats.record_column(column.name, column.stored_length)
        self._columns[column_id] = payload
        return payload

    @property
    def snapshot(self) -> str | None:
        if not self.has_snapshot:
            return None
        return self.column_payload(COL_SNAPSHOT).decode("utf-8")

    # ------------------------------------------------------------------
    def selective_text(self) -> str:
        """Current text from the cheap columns only; raises
        ``StorageError("text-requires-graph")`` when they do not suffice."""
        if self.has_snapshot:
            return self.column_payload(COL_SNAPSHOT).decode("utf-8")
        parents_payload = self.column_payload(COL_PARENTS)
        exception_count = _parents_exception_count(parents_payload)
        if exception_count != 0:
            raise StorageError(
                "text-requires-graph",
                "no snapshot column and the history is not linear; "
                "decode the graph to compute the text",
            )
        ops = self._decode_ops()
        content = self.column_payload(COL_CONTENT)
        return _replay_linear_text(ops, content, self.pruned)

    @property
    def text(self) -> str:
        """Current document text: selectively when possible, hydrating the
        graph as a last resort (concurrent history without a snapshot)."""
        if self._text is not None:
            return self._text
        try:
            self._text = self.selective_text()
        except StorageError as exc:
            if exc.code != "text-requires-graph":
                raise
            from ..core.document import Document

            document = Document("storage-reader")
            document.apply_remote_events(_graph_to_remote_events(self.graph))
            self._text = document.text
        return self._text

    # ------------------------------------------------------------------
    def _decode_ops(self) -> list[tuple[OpKind, int, int]]:
        try:
            return _decode_ops_column(self.column_payload(COL_OPS), self.num_events)
        except StorageError:
            raise
        except ValueError as exc:
            raise StorageError("column-decode", f"ops column: {exc}") from exc

    @property
    def graph(self) -> EventGraph:
        """The full event graph; hydrates the history columns on first access."""
        if self._graph is None:
            self._graph = self._hydrate()
        return self._graph

    @property
    def history(self) -> "History":
        """A read-only :class:`~repro.history.history.History` over the graph."""
        if self._history is None:
            from ..history.history import History

            self._history = History.over_graph(self.graph)
        return self._history

    def document(self, agent: str) -> "Document":
        """An editable :class:`~repro.core.document.Document` loaded from the
        file (hydrates the graph)."""
        from ..core.document import Document

        document = Document(agent)
        document.apply_remote_events(_graph_to_remote_events(self.graph))
        return document

    def _hydrate(self) -> EventGraph:
        self.stats.hydrations += 1
        num_events = self.num_events
        ops = self._decode_ops()
        try:
            parents = _decode_parents_column(
                self.column_payload(COL_PARENTS), num_events
            )
            lengths = [length for _, _, length in ops]
            ids = _decode_id_columns(
                self.column_payload(COL_AGENTS),
                self.column_payload(COL_IDS),
                lengths,
            )
        except StorageError:
            raise
        except ValueError as exc:
            raise StorageError("column-decode", str(exc)) from exc

        content = self.column_payload(COL_CONTENT).decode("utf-8")
        from .encoder import PRUNED_CHAR

        graph = EventGraph()
        content_pos = 0
        for index in range(num_events):
            kind, pos, length = ops[index]
            if kind is OpKind.INSERT:
                if self.pruned:
                    graph_text = PRUNED_CHAR * length
                else:
                    graph_text = content[content_pos : content_pos + length]
                    content_pos += length
                op = insert_op(pos, graph_text)
            else:
                op = delete_op(pos, length)
            try:
                graph.add_event(ids[index], parents[index], op, parents_are_indices=True)
            except ValueError as exc:
                raise StorageError("column-decode", str(exc)) from exc
            self.stats.events_materialised += 1
        if not self.pruned and content_pos != len(content):
            raise StorageError(
                "column-decode",
                f"content column has {len(content)} chars, events consume {content_pos}",
            )
        if self.pruned:
            _fill_pruned_content(graph, content)
        return graph


def _parents_exception_count(payload: bytes) -> int:
    """The parents column's leading exception count (0 ⇔ linear history)."""
    try:
        return ByteReader(payload).read_uvarint()
    except ValueError as exc:
        raise StorageError("column-decode", f"parents column: {exc}") from exc


def _decode_id_columns(
    agents_payload: bytes, ids_payload: bytes, lengths: list[int]
) -> list[EventId]:
    """Slice the id runs back into per-event start ids using event lengths."""
    agents_reader = ByteReader(agents_payload)
    agent_count = agents_reader.read_uvarint()
    agents = [agents_reader.read_string() for _ in range(agent_count)]
    if not agents_reader.at_end():
        raise ValueError("agents column has trailing bytes")

    reader = ByteReader(ids_payload)
    run_count = reader.read_uvarint()
    ids: list[EventId] = []
    event = 0
    for _ in range(run_count):
        agent_idx = reader.read_uvarint()
        if agent_idx >= len(agents):
            raise ValueError("ids column references an unknown agent")
        agent = agents[agent_idx]
        seq = reader.read_uvarint()
        remaining = reader.read_uvarint()
        while remaining > 0:
            if event >= len(lengths):
                raise ValueError("ids column does not match event count")
            length = lengths[event]
            if length > remaining:
                raise ValueError("id run does not align with event boundaries")
            ids.append(EventId(agent, seq))
            seq += length
            remaining -= length
            event += 1
    if event != len(lengths):
        raise ValueError("ids column does not match event count")
    return ids


def _graph_to_remote_events(graph: EventGraph) -> "list[RemoteEvent]":
    from ..core.oplog import RemoteEvent

    return [
        RemoteEvent(
            id=event.id,
            parents=tuple(
                graph.dependency_id(parent) for parent in event.parents
            ),
            op=event.op,
        )
        for event in graph.events()
    ]
