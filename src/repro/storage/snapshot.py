"""Cached document snapshots (the fast-load path of §4.3).

Eg-walker and OT can load a document orders of magnitude faster than CRDTs
because the steady state they need is just the plain text (plus the version it
corresponds to); the event graph stays on disk until a concurrent merge needs
it.  A snapshot file is therefore essentially a text file with a tiny header
recording the frontier, which is exactly what this module writes and reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.ids import EventId
from .varint import ByteReader, ByteWriter

__all__ = ["Snapshot", "encode_snapshot", "decode_snapshot"]

_MAGIC = b"EGSN"


@dataclass(frozen=True, slots=True)
class Snapshot:
    """The cached document state: its text and the version it reflects."""

    text: str
    version: tuple[EventId, ...]


def encode_snapshot(snapshot: Snapshot) -> bytes:
    writer = ByteWriter()
    writer.write_bytes(_MAGIC)
    writer.write_uvarint(len(snapshot.version))
    for agent, seq in snapshot.version:
        writer.write_string(agent)
        writer.write_uvarint(seq)
    writer.write_string(snapshot.text)
    return writer.getvalue()


def decode_snapshot(data: bytes) -> Snapshot:
    reader = ByteReader(data)
    if reader.read_bytes(4) != _MAGIC:
        raise ValueError("not a snapshot file")
    count = reader.read_uvarint()
    version = tuple(EventId(reader.read_string(), reader.read_uvarint()) for _ in range(count))
    text = reader.read_string()
    return Snapshot(text=text, version=version)
