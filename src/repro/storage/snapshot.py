"""Cached document snapshots and persisted version handles (§4.3).

Eg-walker and OT can load a document orders of magnitude faster than CRDTs
because the steady state they need is just the plain text (plus the version it
corresponds to); the event graph stays on disk until a concurrent merge needs
it.  A snapshot file is therefore essentially a text file with a tiny header
recording the frontier, which is exactly what this module writes and reads.

Versions are stored **id-based** (:class:`repro.history.Version`): each id
names the last character covered on its branch, so a decoded snapshot's
version resolves correctly against any replica's graph no matter how that
replica carved the same history into runs, and no matter how much was edited
since.  :func:`encode_version` / :func:`decode_version` expose the same
compact wire form for saved version handles on their own (bookmarks, review
anchors, named checkpoints).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.ids import EventId
from ..history.version import Version
from .varint import ByteReader, ByteWriter

__all__ = [
    "Snapshot",
    "encode_snapshot",
    "decode_snapshot",
    "encode_version",
    "decode_version",
]

_MAGIC = b"EGSN"
_VERSION_MAGIC = b"EGVR"


@dataclass(frozen=True, slots=True)
class Snapshot:
    """The cached document state: its text and the version it reflects."""

    text: str
    version: Version


def _write_version(writer: ByteWriter, version: Version) -> None:
    writer.write_uvarint(len(version.ids))
    for agent, seq in version.ids:
        writer.write_string(agent)
        writer.write_uvarint(seq)


def _read_version(reader: ByteReader) -> Version:
    count = reader.read_uvarint()
    return Version(
        EventId(reader.read_string(), reader.read_uvarint()) for _ in range(count)
    )


def encode_version(version: Version) -> bytes:
    """Serialise a saved :class:`~repro.history.Version` handle.

    O(frontier heads).  The encoding carries only ``(agent, seq)`` character
    ids — no local indices — so a decoded handle resolves on any replica of
    the same document, across re-carved syncs and in-place run extensions.
    """
    writer = ByteWriter()
    writer.write_bytes(_VERSION_MAGIC)
    _write_version(writer, version)
    return writer.getvalue()


def decode_version(data: bytes) -> Version:
    """Inverse of :func:`encode_version`.

    Raises:
        ValueError: if ``data`` is not an encoded version handle.
    """
    reader = ByteReader(data)
    if reader.read_bytes(4) != _VERSION_MAGIC:
        raise ValueError("not an encoded version handle")
    return _read_version(reader)


def encode_snapshot(snapshot: Snapshot) -> bytes:
    writer = ByteWriter()
    writer.write_bytes(_MAGIC)
    _write_version(writer, snapshot.version)
    writer.write_string(snapshot.text)
    return writer.getvalue()


def decode_snapshot(data: bytes) -> Snapshot:
    reader = ByteReader(data)
    if reader.read_bytes(4) != _MAGIC:
        raise ValueError("not a snapshot file")
    version = _read_version(reader)
    text = reader.read_string()
    return Snapshot(text=text, version=version)
