"""Variable-length integer encoding used throughout the storage formats.

The event-graph file format (paper §3.8) encodes almost everything as small
integers: run lengths, position deltas, parent back-references, sequence
numbers.  A LEB128-style varint keeps small numbers in one byte and grows as
needed, exactly like the "variable-length binary encoding of integers"
described in the paper.

Signed values use zig-zag encoding so that small negative deltas (common for
position jumps when the user moves the cursor backwards) also stay short.
"""

from __future__ import annotations

__all__ = [
    "encode_uvarint",
    "decode_uvarint",
    "encode_svarint",
    "decode_svarint",
    "zigzag_encode",
    "zigzag_decode",
    "ByteReader",
    "ByteWriter",
]


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise ValueError("uvarint cannot encode negative values")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` at ``offset``; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def zigzag_encode(value: int) -> int:
    """Map signed integers onto unsigned ones (0, -1, 1, -2, 2 -> 0, 1, 2, 3, 4)."""
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def zigzag_decode(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def encode_svarint(value: int) -> bytes:
    """Encode a signed integer with zig-zag + varint."""
    return encode_uvarint(zigzag_encode(value))


def decode_svarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    raw, pos = decode_uvarint(data, offset)
    return zigzag_decode(raw), pos


class ByteWriter:
    """Accumulates a byte column."""

    def __init__(self) -> None:
        self._parts = bytearray()

    def write_uvarint(self, value: int) -> None:
        self._parts.extend(encode_uvarint(value))

    def write_svarint(self, value: int) -> None:
        self._parts.extend(encode_svarint(value))

    def write_bytes(self, data: bytes) -> None:
        self._parts.extend(data)

    def write_length_prefixed(self, data: bytes) -> None:
        self.write_uvarint(len(data))
        self.write_bytes(data)

    def write_string(self, text: str) -> None:
        self.write_length_prefixed(text.encode("utf-8"))

    def getvalue(self) -> bytes:
        return bytes(self._parts)

    def __len__(self) -> int:
        return len(self._parts)


class ByteReader:
    """Sequential reader over a byte column."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read_uvarint(self) -> int:
        value, self._pos = decode_uvarint(self._data, self._pos)
        return value

    def read_svarint(self) -> int:
        value, self._pos = decode_svarint(self._data, self._pos)
        return value

    def read_bytes(self, length: int) -> bytes:
        if self._pos + length > len(self._data):
            raise ValueError("truncated data")
        out = self._data[self._pos : self._pos + length]
        self._pos += length
        return out

    def read_length_prefixed(self) -> bytes:
        length = self.read_uvarint()
        return self.read_bytes(length)

    def read_string(self) -> str:
        return self.read_length_prefixed().decode("utf-8")

    def at_end(self) -> bool:
        return self._pos >= len(self._data)

    def remaining(self) -> int:
        return len(self._data) - self._pos
