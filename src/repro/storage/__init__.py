"""Persistent storage: columnar event-graph files, snapshots, compression.

Two file formats live here: the legacy v2 interleaved-column encoder
(:mod:`repro.storage.encoder`, read-only) and the v3 random-access columnar
container (:mod:`repro.storage.container`) with per-column compression/CRCs,
selective reads (:func:`decode_text`) and lazy hydration
(:class:`LazyDecodedFile`).  :func:`decode_file` sniffs the magic and reads
either.
"""

from .compression import compress, decompress
from .container import (
    ContainerOptions,
    LazyDecodedFile,
    ReadStats,
    StorageError,
    decode_event_graph_v3,
    decode_file,
    decode_text,
    encode_event_graph_v3,
    parse_header,
)
from .encoder import DecodedFile, EncodeOptions, decode_event_graph, encode_event_graph
from .snapshot import (
    Snapshot,
    decode_snapshot,
    decode_version,
    encode_snapshot,
    encode_version,
)
from .varint import (
    ByteReader,
    ByteWriter,
    decode_svarint,
    decode_uvarint,
    encode_svarint,
    encode_uvarint,
)

__all__ = [
    "ByteReader",
    "ByteWriter",
    "ContainerOptions",
    "DecodedFile",
    "EncodeOptions",
    "LazyDecodedFile",
    "ReadStats",
    "Snapshot",
    "StorageError",
    "compress",
    "decompress",
    "decode_event_graph",
    "decode_event_graph_v3",
    "decode_file",
    "decode_snapshot",
    "decode_svarint",
    "decode_text",
    "decode_uvarint",
    "decode_version",
    "encode_event_graph",
    "encode_event_graph_v3",
    "encode_snapshot",
    "encode_svarint",
    "encode_uvarint",
    "encode_version",
    "parse_header",
]
