"""Persistent storage: columnar event-graph files, snapshots, compression."""

from .compression import compress, decompress
from .encoder import DecodedFile, EncodeOptions, decode_event_graph, encode_event_graph
from .snapshot import (
    Snapshot,
    decode_snapshot,
    decode_version,
    encode_snapshot,
    encode_version,
)
from .varint import (
    ByteReader,
    ByteWriter,
    decode_svarint,
    decode_uvarint,
    encode_svarint,
    encode_uvarint,
)

__all__ = [
    "ByteReader",
    "ByteWriter",
    "DecodedFile",
    "EncodeOptions",
    "Snapshot",
    "compress",
    "decompress",
    "decode_event_graph",
    "decode_snapshot",
    "decode_svarint",
    "decode_uvarint",
    "decode_version",
    "encode_event_graph",
    "encode_snapshot",
    "encode_svarint",
    "encode_uvarint",
    "encode_version",
]
