"""Internal-state record types for Eg-walker (paper §3.3, §3.6).

The walker's internal state is a linear sequence of *items*.  Each item is
either:

* a :class:`CrdtRecord` — a **run** of inserted characters, carrying the id of
  the run's first character (character ``k`` has id ``id.advance(k)``), the
  CRDT origin references used to order concurrent insertions, the
  prepare-version state ``s_p`` and the effect-version state ``s_e`` (here a
  boolean ``ever_deleted``).  All characters of a record share the same state;
  whenever an event needs to change the state of only part of a record, the
  record is first *split* — exactly the Yjs/diamond-types item-splitting
  scheme the paper's reference implementation uses; or
* a :class:`PlaceholderPiece` — a run of characters that were inserted before
  the version the replay started from (§3.6).  Placeholders count as visible
  in both the prepare and the effect version, and are split whenever an event
  needs to address a character inside them.

The prepare state ``s_p`` follows the state machine of Figure 5 and is encoded
as an integer exactly like the pseudocode in Appendix B:

* ``0`` — ``NotInsertedYet`` (the insertion has been retreated),
* ``1`` — ``Ins`` (inserted, visible),
* ``n >= 2`` — ``Del (n-1)`` (deleted by ``n-1`` concurrent delete events).

Origin references are *id-based* (an :class:`~repro.core.ids.EventId` naming
one character, or a ``('ph', offset)`` tuple naming a character of the
original placeholder), so they stay valid when the record they point into is
split later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .ids import EventId

__all__ = [
    "NOT_YET_INSERTED",
    "INSERTED",
    "CrdtRecord",
    "PlaceholderPiece",
    "Item",
    "OriginRef",
    "START",
    "END",
    "placeholder_origin",
]

NOT_YET_INSERTED = 0
INSERTED = 1

#: Sentinels for origin references at the very start / end of the document.
START = None
END = None


@dataclass(slots=True, eq=False)
class CrdtRecord:
    """A run of characters of the internal state.

    Attributes:
        id: id of the *first* character of this run — either the insertion
            event that created it (possibly advanced, after splits), or a
            synthetic local id for runs carved out of a placeholder by a
            deletion (§3.6: "a placeholder ID that only needs to be unique
            within the local replica").
        length: number of characters this record covers (>= 1).
        origin_left: id-based reference to the character immediately to the
            left of this run in the prepare version at the time it was
            inserted (``None`` for the document start).  Used by the list CRDT
            to order concurrent insertions.
        origin_right: reference to the next character that existed in the
            prepare version at insertion time (``None`` for the document end).
        prepare_state: the ``s_p`` integer state, shared by every character of
            the run (see module docstring).
        ever_deleted: the ``s_e`` state — ``True`` iff a replayed event has
            deleted the run's characters.
        ph_base: for runs carved out of a placeholder, the offset of the run's
            first character within the *original* placeholder; ``None`` for
            ordinary insertions.  Kept so ``('ph', offset)`` origin references
            keep resolving after the carve (and after later splits).
        leaf: back-pointer maintained by the tree sequence backend so a record
            can be located in O(log n); unused by the list backend.
    """

    id: EventId
    length: int = 1
    origin_left: "OriginRef" = None
    origin_right: "OriginRef" = None
    prepare_state: int = INSERTED
    ever_deleted: bool = False
    ph_base: int | None = None
    leaf: object = None

    # ------------------------------------------------------------------
    @property
    def end_seq(self) -> int:
        """One past the seq of the run's last character."""
        return self.id.seq + self.length

    def id_at(self, offset: int) -> EventId:
        """Id of the ``offset``-th character of this run."""
        return EventId(self.id.agent, self.id.seq + offset)

    def contains_seq(self, seq: int) -> bool:
        return self.id.seq <= seq < self.end_seq

    def split(self, offset: int) -> "CrdtRecord":
        """Split this run before character ``offset``; return the right half.

        The left half (``self``) keeps characters ``0 .. offset-1``; the
        returned right half covers the rest.  Following the Yjs splitting
        rule, the right half's left origin is the last character of the left
        half, and both halves share every other piece of state.  The caller is
        responsible for inserting the right half into the sequence directly
        after ``self`` and for registering it with the id index.
        """
        if offset <= 0 or offset >= self.length:
            raise ValueError(f"cannot split a record of length {self.length} at {offset}")
        right = CrdtRecord(
            id=self.id.advance(offset),
            length=self.length - offset,
            origin_left=self.id_at(offset - 1),
            origin_right=self.origin_right,
            prepare_state=self.prepare_state,
            ever_deleted=self.ever_deleted,
            ph_base=None if self.ph_base is None else self.ph_base + offset,
        )
        self.length = offset
        return right

    def can_merge_with(self, right: "CrdtRecord") -> bool:
        """Can ``right`` (the next item in the sequence) coalesce into this run?

        The condition is the exact inverse of :meth:`split`: the two spans are
        id-contiguous, share every piece of state, and ``right``'s origins are
        precisely what a split at this boundary would reconstruct.  That makes
        re-merging lossless — if a later event addresses only part of the
        merged span, splitting it again restores byte-identical records, so
        origins, integration order and retreat/advance semantics are
        unaffected.  ``NotInsertedYet`` spans are excluded: they are the ones
        the YATA integration rule scans and compares origins of, and collapsing
        them could change which origins a concurrent sibling sees.
        """
        return (
            self.prepare_state != NOT_YET_INSERTED
            and right.prepare_state == self.prepare_state
            and right.ever_deleted == self.ever_deleted
            and right.id.agent == self.id.agent
            and right.id.seq == self.end_seq
            and right.origin_left == self.id_at(self.length - 1)
            and right.origin_right == self.origin_right
            and (right.ph_base is None) == (self.ph_base is None)
            and (self.ph_base is None or right.ph_base == self.ph_base + self.length)
        )

    # ------------------------------------------------------------------
    @property
    def prepare_visible(self) -> bool:
        """Visible (inserted and not deleted) in the prepare version."""
        return self.prepare_state == INSERTED

    @property
    def exists_in_prepare(self) -> bool:
        """Inserted (possibly deleted) in the prepare version (``s_p >= 1``)."""
        return self.prepare_state >= INSERTED

    @property
    def effect_visible(self) -> bool:
        """Visible in the effect version (never deleted by a replayed event)."""
        return not self.ever_deleted

    # Unit accounting -- a record represents ``length`` characters, all
    # sharing the same visibility state.
    @property
    def units(self) -> int:
        return self.length

    @property
    def prepare_units(self) -> int:
        return self.length if self.prepare_state == INSERTED else 0

    @property
    def effect_units(self) -> int:
        return 0 if self.ever_deleted else self.length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrdtRecord({self.id.agent}:{self.id.seq}+{self.length}, "
            f"sp={self.prepare_state}, del={self.ever_deleted})"
        )


@dataclass(slots=True, eq=False)
class PlaceholderPiece:
    """A run of characters inserted before the replay's base version (§3.6).

    Placeholder pieces stand in for document content whose events are not part
    of the current replay.  ``base`` is the offset of the first character of
    this piece within the *original* placeholder created when the internal
    state was last cleared; it never changes, so ``('ph', base + k)`` is a
    stable way to refer to the ``k``-th character of the piece even after the
    piece is split.
    """

    base: int
    length: int
    leaf: object = None

    @property
    def units(self) -> int:
        return self.length

    @property
    def prepare_units(self) -> int:
        return self.length

    @property
    def effect_units(self) -> int:
        return self.length

    @property
    def prepare_visible(self) -> bool:
        return True

    @property
    def exists_in_prepare(self) -> bool:
        return True

    @property
    def effect_visible(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlaceholderPiece(base={self.base}, len={self.length})"


Item = Union[CrdtRecord, PlaceholderPiece]

#: An origin reference is ``None`` (document start/end), an :class:`EventId`
#: naming one character of a record run, or a ``('ph', original_offset)``
#: tuple naming a character that is (or was) inside the placeholder.
OriginRef = Union[None, EventId, "tuple[str, int]"]


def placeholder_origin(original_offset: int) -> tuple[str, int]:
    """Build an origin reference to a character inside the placeholder."""
    return ("ph", original_offset)
