"""Internal-state record types for Eg-walker (paper §3.3, §3.6).

The walker's internal state is a linear sequence of *items*.  Each item is
either:

* a :class:`CrdtRecord` — one inserted character, carrying the id of the event
  that inserted it, the CRDT origin references used to order concurrent
  insertions, the prepare-version state ``s_p`` and the effect-version state
  ``s_e`` (here a boolean ``ever_deleted``); or
* a :class:`PlaceholderPiece` — a run of characters that were inserted before
  the version the replay started from (§3.6).  Placeholders count as visible
  in both the prepare and the effect version, and are split whenever an event
  needs to address a character inside them.

The prepare state ``s_p`` follows the state machine of Figure 5 and is encoded
as an integer exactly like the pseudocode in Appendix B:

* ``0`` — ``NotInsertedYet`` (the insertion has been retreated),
* ``1`` — ``Ins`` (inserted, visible),
* ``n >= 2`` — ``Del (n-1)`` (deleted by ``n-1`` concurrent delete events).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .ids import EventId

__all__ = [
    "NOT_YET_INSERTED",
    "INSERTED",
    "CrdtRecord",
    "PlaceholderPiece",
    "Item",
    "OriginRef",
    "START",
    "END",
    "placeholder_origin",
]

NOT_YET_INSERTED = 0
INSERTED = 1

#: Sentinels for origin references at the very start / end of the document.
START = None
END = None


@dataclass(slots=True, eq=False)
class CrdtRecord:
    """One character of the internal state.

    Attributes:
        id: id of the insertion event that created this character, or a
            synthetic local id for characters carved out of a placeholder by a
            deletion (§3.6: "a placeholder ID that only needs to be unique
            within the local replica").
        origin_left: reference to the item immediately to the left of this
            character in the prepare version at the time it was inserted
            (``None`` for the document start).  Used by the list CRDT to order
            concurrent insertions.
        origin_right: reference to the next item that existed in the prepare
            version at insertion time (``None`` for the document end).
        prepare_state: the ``s_p`` integer state (see module docstring).
        ever_deleted: the ``s_e`` state — ``True`` iff any replayed event has
            deleted this character.
        leaf: back-pointer maintained by the tree sequence backend so a record
            can be located in O(log n); unused by the list backend.
    """

    id: EventId
    origin_left: "OriginRef" = None
    origin_right: "OriginRef" = None
    prepare_state: int = INSERTED
    ever_deleted: bool = False
    leaf: object = None

    # ------------------------------------------------------------------
    @property
    def prepare_visible(self) -> bool:
        """Visible (inserted and not deleted) in the prepare version."""
        return self.prepare_state == INSERTED

    @property
    def exists_in_prepare(self) -> bool:
        """Inserted (possibly deleted) in the prepare version (``s_p >= 1``)."""
        return self.prepare_state >= INSERTED

    @property
    def effect_visible(self) -> bool:
        """Visible in the effect version (never deleted by a replayed event)."""
        return not self.ever_deleted

    # Unit accounting -- records always represent exactly one character.
    @property
    def units(self) -> int:
        return 1

    @property
    def prepare_units(self) -> int:
        return 1 if self.prepare_state == INSERTED else 0

    @property
    def effect_units(self) -> int:
        return 0 if self.ever_deleted else 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrdtRecord({self.id.agent}:{self.id.seq}, sp={self.prepare_state}, "
            f"del={self.ever_deleted})"
        )


@dataclass(slots=True, eq=False)
class PlaceholderPiece:
    """A run of characters inserted before the replay's base version (§3.6).

    Placeholder pieces stand in for document content whose events are not part
    of the current replay.  ``base`` is the offset of the first character of
    this piece within the *original* placeholder created when the internal
    state was last cleared; it never changes, so ``('ph', base + k)`` is a
    stable way to refer to the ``k``-th character of the piece even after the
    piece is split.
    """

    base: int
    length: int
    leaf: object = None

    @property
    def units(self) -> int:
        return self.length

    @property
    def prepare_units(self) -> int:
        return self.length

    @property
    def effect_units(self) -> int:
        return self.length

    @property
    def prepare_visible(self) -> bool:
        return True

    @property
    def exists_in_prepare(self) -> bool:
        return True

    @property
    def effect_visible(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlaceholderPiece(base={self.base}, len={self.length})"


Item = Union[CrdtRecord, PlaceholderPiece]

#: An origin reference is ``None`` (document start/end), a :class:`CrdtRecord`
#: or a ``('ph', original_offset)`` tuple naming a character that is (or was)
#: inside the placeholder.
OriginRef = Union[None, CrdtRecord, tuple]


def placeholder_origin(original_offset: int) -> tuple:
    """Build an origin reference to a character inside the placeholder."""
    return ("ph", original_offset)
