"""Core identifier and operation types for the event graph.

Every editing event is identified globally by an :class:`EventId` — a pair of
the replica (agent) that generated it and a per-agent sequence number.  Within
a single :class:`~repro.core.event_graph.EventGraph` events are also addressed
by a compact local integer index (their position in the append-only event
list), which is what most of the algorithms in this package operate on.

Operations are plain index-based insertions and deletions, exactly as a text
editor would emit them (paper §2).  Runs of consecutive characters are the
*native* unit of the whole pipeline (paper §4, "run-length encoding"): one
event carries one run, and the event's id names the run's **first** character
— character ``k`` of the run has id ``(agent, seq + k)``, addressable as
``(event_index, offset)`` locally.  The per-character representation is still
expressible (every algorithm accepts length-1 runs) and is kept around as a
correctness oracle, see :func:`repro.core.event_graph.expand_to_chars`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple

__all__ = [
    "EventId",
    "OpKind",
    "Operation",
    "insert_op",
    "delete_op",
    "ROOT_AGENT",
]

#: Agent name reserved for the implicit root of a document's history.
ROOT_AGENT = "__root__"


class EventId(NamedTuple):
    """Globally unique identifier of an event: ``(agent, seq)``.

    ``agent`` is an arbitrary string naming the replica that generated the
    event; ``seq`` is a monotonically increasing, densely allocated counter
    local to that agent.  Event ids are totally ordered lexicographically,
    which gives the deterministic tie-break used when ordering concurrent
    insertions (§3.3).
    """

    agent: str
    seq: int

    def next(self) -> "EventId":
        """Return the id immediately following this one for the same agent."""
        return EventId(self.agent, self.seq + 1)

    def advance(self, offset: int) -> "EventId":
        """The id ``offset`` characters into the run starting at this id."""
        if offset == 0:
            return self
        return EventId(self.agent, self.seq + offset)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.agent}:{self.seq}"


class OpKind(enum.IntEnum):
    """The two kinds of text operation the system supports."""

    INSERT = 0
    DELETE = 1


@dataclass(frozen=True, slots=True)
class Operation:
    """An index-based text operation.

    Attributes:
        kind: whether this is an insertion or a deletion.
        pos: zero-based character index at which the operation applies, in the
            document version defined by the parents of the event carrying it.
        content: for insertions, the inserted text (one or more characters).
            Empty for deletions.
        length: number of characters affected.  For insertions this always
            equals ``len(content)``; for deletions it is the number of
            consecutive characters removed starting at ``pos``.
    """

    kind: OpKind
    pos: int
    content: str = ""
    length: int = 1

    def __post_init__(self) -> None:
        if self.kind is OpKind.INSERT:
            if not self.content:
                raise ValueError("insert operations must carry content")
            if self.length != len(self.content):
                object.__setattr__(self, "length", len(self.content))
        else:
            if self.content:
                raise ValueError("delete operations must not carry content")
            if self.length < 1:
                raise ValueError("delete length must be >= 1")
        if self.pos < 0:
            raise ValueError("operation position must be >= 0")

    @property
    def is_insert(self) -> bool:
        return self.kind is OpKind.INSERT

    @property
    def is_delete(self) -> bool:
        return self.kind is OpKind.DELETE

    @property
    def end(self) -> int:
        """One past the last index touched (in the operation's own version)."""
        return self.pos + self.length

    def slice(self, offset: int, length: int) -> "Operation":
        """The sub-run covering characters ``offset .. offset + length``.

        This is the one place that knows how a run decomposes: an insert
        sub-run starts ``offset`` positions further right; every character of
        a delete run lands on the *same* index (each removes ``pos`` once its
        predecessors are gone), so a delete sub-run keeps the position.  Run
        splitting (graph, protocol and per-character expansion) is built on
        it.
        """
        if offset < 0 or length < 1 or offset + length > self.length:
            raise IndexError(f"slice {offset}+{length} out of range for {self}")
        if offset == 0 and length == self.length:
            return self  # immutable, so the whole-run slice needs no copy
        if self.kind is OpKind.INSERT:
            return Operation(
                OpKind.INSERT, self.pos + offset, self.content[offset : offset + length]
            )
        return Operation(OpKind.DELETE, self.pos, "", length)

    def char_at(self, offset: int) -> "Operation":
        """Return the single-character sub-operation at ``offset``.

        Used when expanding a run-length operation into per-character events.
        """
        return self.slice(offset, 1)

    def apply_to(self, text: str) -> str:
        """Apply this operation to ``text`` and return the new string.

        This is a convenience used by tests and simple replicas; the real
        document state uses :class:`repro.rope.Rope`.
        """
        if self.kind is OpKind.INSERT:
            if self.pos > len(text):
                raise IndexError(
                    f"insert at {self.pos} beyond end of document (len {len(text)})"
                )
            return text[: self.pos] + self.content + text[self.pos :]
        if self.end > len(text):
            raise IndexError(
                f"delete of {self.length} at {self.pos} beyond end of document "
                f"(len {len(text)})"
            )
        return text[: self.pos] + text[self.end :]


def insert_op(pos: int, content: str) -> Operation:
    """Build an insertion operation."""
    return Operation(OpKind.INSERT, pos, content)


def delete_op(pos: int, length: int = 1) -> Operation:
    """Build a deletion operation removing ``length`` chars starting at ``pos``."""
    return Operation(OpKind.DELETE, pos, "", length)
