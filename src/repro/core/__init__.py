"""Eg-walker core: event graphs, the replay walker, and the document API."""

from .causal_graph import CausalGraph, DiffResult
from .critical_versions import (
    CriticalCutTracker,
    critical_cut_positions,
    is_critical_version,
    latest_critical_cut_before,
)
from .document import Document
from .event_graph import Event, EventGraph, ROOT_VERSION, Version
from .ids import EventId, Operation, OpKind, delete_op, insert_op
from .internal_state import InternalState
from .merge_engine import MergeEngine, MergeEngineStats, WalkerCheckpoint
from .oplog import OpLog, RemoteEvent
from .order_statistic_tree import TreeSequence
from .records import CrdtRecord, PlaceholderPiece
from .sequence import ListSequence
from .topo_sort import (
    is_topological_order,
    sort_branch_aware,
    sort_interleaved,
    sort_local_order,
)
from .walker import EgWalker, ReplayResult, TransformedOp, WalkerStats

__all__ = [
    "CausalGraph",
    "CrdtRecord",
    "CriticalCutTracker",
    "DiffResult",
    "Document",
    "EgWalker",
    "Event",
    "EventGraph",
    "EventId",
    "InternalState",
    "ListSequence",
    "MergeEngine",
    "MergeEngineStats",
    "Operation",
    "OpKind",
    "OpLog",
    "PlaceholderPiece",
    "RemoteEvent",
    "ReplayResult",
    "ROOT_VERSION",
    "TransformedOp",
    "TreeSequence",
    "Version",
    "WalkerCheckpoint",
    "WalkerStats",
    "critical_cut_positions",
    "delete_op",
    "insert_op",
    "is_critical_version",
    "is_topological_order",
    "latest_critical_cut_before",
    "sort_branch_aware",
    "sort_interleaved",
    "sort_local_order",
]
