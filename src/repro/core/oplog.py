"""The operation log: a replica's durable editing history (paper §3, §2.1).

The :class:`OpLog` is the part of a replica's state that is persisted and
replicated: the event graph.  It offers the editor-facing operations (insert /
delete runs of text, stored as **one event per run** — the run-length encoding
the paper attributes most of its "Faster, Smaller" wins to), the
replication-facing operations (enumerate events missing from a remote
version, ingest remote events), and version bookkeeping.

It deliberately does *not* hold the document text — that lives in
:class:`repro.core.document.Document` — nor any CRDT metadata, which is the
whole point of Eg-walker: in the steady state only the plain text and the
(on-disk) event graph exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .causal_graph import CausalGraph
from .event_graph import Event, EventGraph, Version
from .ids import EventId, Operation, OpKind, delete_op, insert_op

__all__ = ["OpLog", "RemoteEvent"]


@dataclass(frozen=True, slots=True)
class RemoteEvent:
    """A portable, self-contained description of one event.

    This is what gets sent over the network (and what the storage encoder
    serialises): the event id, the ids of its parents, and the operation.
    Local indices are never exchanged between replicas.
    """

    id: EventId
    parents: tuple[EventId, ...]
    op: Operation


class OpLog:
    """A replica's event graph plus convenience editing / replication APIs."""

    def __init__(self, agent: str | None = None) -> None:
        self.graph = EventGraph()
        self.causal = CausalGraph(self.graph)
        self.agent = agent

    # ------------------------------------------------------------------
    # Local editing
    # ------------------------------------------------------------------
    def add_insert(self, pos: int, content: str, *, agent: str | None = None) -> Event:
        """Record a local insertion of ``content`` at index ``pos``.

        The whole run is stored as a single event whose id names its first
        character — O(1) events and id-map entries per run instead of
        O(chars).  The per-character view is recoverable with
        :func:`repro.core.event_graph.expand_to_chars`.
        """
        agent_name = self._agent(agent)
        return self.graph.add_local_event(agent_name, insert_op(pos, content))

    def add_delete(self, pos: int, length: int = 1, *, agent: str | None = None) -> Event:
        """Record a local deletion of ``length`` characters starting at ``pos``.

        Stored as a single run event: deleting ``length`` characters at
        ``pos`` removes ``pos .. pos+length-1`` of the version the event was
        generated against (each character lands on the same index once its
        predecessors are gone).
        """
        agent_name = self._agent(agent)
        return self.graph.add_local_event(agent_name, delete_op(pos, length))

    def _agent(self, agent: str | None) -> str:
        name = agent if agent is not None else self.agent
        if name is None:
            raise ValueError("no agent configured for this OpLog; pass agent= explicitly")
        return name

    # ------------------------------------------------------------------
    # Versions
    # ------------------------------------------------------------------
    @property
    def version(self) -> Version:
        """The current frontier of the event graph."""
        return self.graph.frontier

    def __len__(self) -> int:
        return len(self.graph)

    def remote_version(self) -> tuple[EventId, ...]:
        """The frontier expressed as event ids (safe to send to other replicas)."""
        return self.graph.ids_from_version(self.graph.frontier)

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def export_events(self, indices: Iterable[int] | None = None) -> list[RemoteEvent]:
        """Export events (all of them by default) in portable form."""
        if indices is None:
            indices = range(len(self.graph))
        out: list[RemoteEvent] = []
        for idx in indices:
            event = self.graph[idx]
            out.append(
                RemoteEvent(
                    id=event.id,
                    parents=self.graph.ids_from_version(event.parents),
                    op=event.op,
                )
            )
        return out

    def events_since(self, remote_version: Sequence[EventId]) -> list[RemoteEvent]:
        """Events the remote replica (at ``remote_version``) is missing.

        Event ids the local graph does not know are ignored: the remote is
        simply ahead of us on those branches and needs nothing for them.
        """
        known = [eid for eid in remote_version if self.graph.contains_id(eid)]
        local_version = self.graph.version_from_ids(known)
        _, missing = self.causal.diff(local_version, self.graph.frontier)
        return self.export_events(missing)

    def ingest_events(self, events: Iterable[RemoteEvent]) -> list[int]:
        """Add remote events to the graph (idempotently).

        Events must arrive with their parents either already known or earlier
        in the same batch (the causal-broadcast layer guarantees this).

        Returns:
            Local indices of the events that were actually new.
        """
        added: list[int] = []
        for remote in events:
            event = self.graph.add_remote_event(remote.id, remote.parents, remote.op)
            if event is not None:
                added.append(event.index)
        return added

    def merge_from(self, other: "OpLog") -> list[int]:
        """Union this log with another replica's log (paper §2.2)."""
        return self.graph.merge_from(other.graph)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, int]:
        return self.graph.summary()
