"""The operation log: a replica's durable editing history (paper §3, §2.1).

The :class:`OpLog` is the part of a replica's state that is persisted and
replicated: the event graph.  It offers the editor-facing operations (insert /
delete runs of text, stored as **one event per run** — the run-length encoding
the paper attributes most of its "Faster, Smaller" wins to), the
replication-facing operations (enumerate events missing from a remote
version, ingest remote events), and version bookkeeping.

It deliberately does *not* hold the document text — that lives in
:class:`repro.core.document.Document` — nor any CRDT metadata, which is the
whole point of Eg-walker: in the steady state only the plain text and the
(on-disk) event graph exist.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .causal_graph import CausalGraph
from .event_graph import Event, EventGraph, Version
from .ids import EventId, Operation, OpKind, delete_op, insert_op

__all__ = [
    "OpLog",
    "RemoteEvent",
    "split_remote_event",
    "merge_remote_events",
    "recarve_events",
]


@dataclass(frozen=True, slots=True)
class RemoteEvent:
    """A portable, self-contained description of one event.

    This is what gets sent over the network (and what the storage encoder
    serialises): the event id, the ids of its parents, and the operation.
    Local indices are never exchanged between replicas.

    Parent ids name the **last** character the event depends on (see
    :meth:`~repro.core.event_graph.EventGraph.dependency_id`): run boundaries
    are a local encoding detail, so a receiver whose graph carves the parent's
    history differently resolves the id to exactly the intended causal
    coverage, splitting its stored run at the boundary if necessary.
    """

    id: EventId
    parents: tuple[EventId, ...]
    op: Operation

    @property
    def last_char_id(self) -> EventId:
        """Id of the run's last character (what a child's parent ref names)."""
        return self.id.advance(self.op.length - 1)


def split_remote_event(event: RemoteEvent, offset: int) -> tuple[RemoteEvent, RemoteEvent]:
    """Re-carve one portable run event into two at ``offset``.

    The result is a legal re-encoding of the same history: the left half keeps
    the event's id and parents, the right half starts ``offset`` characters in
    and depends on the left half's last character.  Receivers treat either
    carving identically (split-on-ingest).
    """
    op = event.op
    if offset <= 0 or offset >= op.length:
        raise ValueError(f"cannot split a run of length {op.length} at {offset}")
    left = RemoteEvent(id=event.id, parents=event.parents, op=op.slice(0, offset))
    right = RemoteEvent(
        id=event.id.advance(offset),
        parents=(left.last_char_id,),
        op=op.slice(offset, op.length - offset),
    )
    return left, right


def merge_remote_events(left: RemoteEvent, right: RemoteEvent) -> RemoteEvent | None:
    """Coalesce two portable events into one run, if they form one.

    ``right`` must continue ``left`` exactly: contiguous ids, ``right``
    depending only on ``left``'s last character, and an operation that extends
    the run (an insert continuing at the end, or a delete at the same index).
    Returns ``None`` when the pair is not mergeable.  This is the sender-side
    inverse of split-on-ingest, used to emulate peers that batch runs
    differently (e.g. diamond-types' oplog coalescing).
    """
    if right.id != left.id.advance(left.op.length):
        return None
    if right.parents != (left.last_char_id,):
        return None
    lop, rop = left.op, right.op
    if lop.kind is not rop.kind:
        return None
    if lop.is_insert:
        if rop.pos != lop.pos + lop.length:
            return None
        merged = insert_op(lop.pos, lop.content + rop.content)
    else:
        if rop.pos != lop.pos:
            return None
        merged = delete_op(lop.pos, lop.length + rop.length)
    return RemoteEvent(id=left.id, parents=left.parents, op=merged)


def recarve_events(
    events: Iterable[RemoteEvent],
    *,
    splits: Callable[[RemoteEvent], Iterable[int]] | None = None,
    merge_adjacent: bool = False,
) -> list[RemoteEvent]:
    """Re-encode a causally ordered event list with different run boundaries.

    ``splits`` maps each event to the offsets at which to cut it; with
    ``merge_adjacent`` set, consecutive events that form one run are coalesced
    first (then split at the requested offsets).  The output carries exactly
    the same per-character history in the same causal order — feeding it to
    any replica converges to the same document as the original list, which is
    what the convergence fuzzer exercises.
    """
    merged: list[RemoteEvent] = []
    for event in events:
        if merge_adjacent and merged:
            combined = merge_remote_events(merged[-1], event)
            if combined is not None:
                merged[-1] = combined
                continue
        merged.append(event)
    if splits is None:
        return merged
    out: list[RemoteEvent] = []
    for event in merged:
        offsets = sorted(
            {o for o in splits(event) if 0 < o < event.op.length}, reverse=True
        )
        pieces = [event]
        for offset in offsets:
            left, right = split_remote_event(pieces[0], offset)
            pieces[0:1] = [left, right]
        out.extend(pieces)
    return out


class OpLog:
    """A replica's event graph plus convenience editing / replication APIs.

    Args:
        agent: default agent name for local edits.
        coalesce_local_runs: when a local edit *continues* the frontier run —
            same agent, an insert picking up exactly where the run ended or a
            delete at the run's index — extend that run event in place
            instead of appending a new event.  This is the sender-side
            counterpart of split-on-ingest (diamond-types' oplog coalescing):
            a keystroke-at-a-time session stores O(runs) events at the
            source, and the extension is a legal re-encoding of the same
            history (:func:`merge_remote_events` accepts exactly these
            pairs), so peers holding the shorter run are reconciled by the
            usual carving machinery.
    """

    def __init__(
        self, agent: str | None = None, *, coalesce_local_runs: bool = True
    ) -> None:
        self.graph = EventGraph()
        self.causal = CausalGraph(self.graph)
        self.agent = agent
        self.coalesce_local_runs = coalesce_local_runs

    # ------------------------------------------------------------------
    # Local editing
    # ------------------------------------------------------------------
    def add_insert(self, pos: int, content: str, *, agent: str | None = None) -> Event:
        """Record a local insertion of ``content`` at index ``pos``.

        The whole run is stored as a single event whose id names its first
        character — O(1) events and id-map entries per run instead of
        O(chars).  The per-character view is recoverable with
        :func:`repro.core.event_graph.expand_to_chars`.  With
        ``coalesce_local_runs`` the event may be the *extended* frontier run
        rather than a new event.
        """
        agent_name = self._agent(agent)
        op = insert_op(pos, content)
        extended = self._try_extend_frontier_run(agent_name, op)
        if extended is not None:
            return extended
        return self.graph.add_local_event(agent_name, op)

    def add_delete(self, pos: int, length: int = 1, *, agent: str | None = None) -> Event:
        """Record a local deletion of ``length`` characters starting at ``pos``.

        Stored as a single run event: deleting ``length`` characters at
        ``pos`` removes ``pos .. pos+length-1`` of the version the event was
        generated against (each character lands on the same index once its
        predecessors are gone).  With ``coalesce_local_runs`` a delete at the
        frontier delete run's index extends that run in place (holding the
        Delete key produces one event).
        """
        agent_name = self._agent(agent)
        op = delete_op(pos, length)
        extended = self._try_extend_frontier_run(agent_name, op)
        if extended is not None:
            return extended
        return self.graph.add_local_event(agent_name, op)

    def _try_extend_frontier_run(self, agent: str, op: Operation) -> Event | None:
        """Extend the frontier run in place if ``op`` continues it."""
        if not self.coalesce_local_runs:
            return None
        frontier = self.graph.frontier
        if len(frontier) != 1:
            return None
        event = self.graph[frontier[0]]
        if (
            event.id.agent != agent
            or self.graph.next_seq_for(agent) != event.end_seq
            or event.op.kind is not op.kind
        ):
            return None
        if op.is_insert and op.pos != event.op.pos + event.op.length:
            return None
        if op.is_delete and op.pos != event.op.pos:
            return None
        return self.graph.extend_event(event.index, op)

    def _agent(self, agent: str | None) -> str:
        name = agent if agent is not None else self.agent
        if name is None:
            raise ValueError("no agent configured for this OpLog; pass agent= explicitly")
        return name

    # ------------------------------------------------------------------
    # Versions
    # ------------------------------------------------------------------
    @property
    def local_version(self) -> Version:
        """The current frontier as *local event indices*.

        Internal representation: only meaningful inside this replica, and
        only until the graph mutates (in-place run extension makes an index
        cover more characters; interop splits shift indices).  Id-based
        handles (:meth:`remote_version`, or :meth:`Document.version
        <repro.core.document.Document.version>` one layer up) are the stable
        currency.  O(1).
        """
        return self.graph.frontier

    @property
    def version(self) -> Version:
        """Deprecated alias of :attr:`local_version` (index-based).

        Forwards to :attr:`local_version` so the two can never disagree.
        """
        warnings.warn(
            "OpLog.version is deprecated; use OpLog.local_version (local "
            "indices) or OpLog.remote_version() / Document.version() (stable "
            "id-based handles)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.local_version

    def __len__(self) -> int:
        return len(self.graph)

    def remote_version(self) -> tuple[EventId, ...]:
        """The frontier expressed as event ids (safe to send to other replicas).

        Each id names the last character of a frontier run
        (:meth:`EventGraph.dependency_id`), so the snapshot stays exact if
        the run is later extended in place.  O(frontier heads), plus any
        boundary splits the id resolution performs on the receiving side.
        """
        return self.graph.ids_from_version(self.graph.frontier)

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def export_events(self, indices: Iterable[int] | None = None) -> list[RemoteEvent]:
        """Export events (all of them by default) in portable form."""
        if indices is None:
            indices = range(len(self.graph))
        out: list[RemoteEvent] = []
        for idx in indices:
            event = self.graph[idx]
            out.append(
                RemoteEvent(
                    id=event.id,
                    parents=tuple(self.graph.dependency_id(p) for p in event.parents),
                    op=event.op,
                )
            )
        return out

    def export_since_seq(self, agent: str, seq: int) -> list[RemoteEvent]:
        """Portable events covering ``agent``'s own characters from ``seq`` on.

        The broadcast-after-edit helper for sender-side run coalescing: a
        local edit may have *extended* an existing event instead of creating
        one, in which case only the new suffix must travel.  A mid-run suffix
        is exported exactly like :func:`split_remote_event` would carve it —
        depending on the previous character of the run — which receivers
        already handle (run boundaries are a local encoding detail).
        """
        out: list[RemoteEvent] = []
        end = self.graph.next_seq_for(agent)
        while seq < end:
            index, offset = self.graph.locate(EventId(agent, seq))
            event = self.graph[index]
            if offset == 0:
                out.append(
                    RemoteEvent(
                        id=event.id,
                        parents=tuple(
                            self.graph.dependency_id(p) for p in event.parents
                        ),
                        op=event.op,
                    )
                )
            else:
                out.append(
                    RemoteEvent(
                        id=event.id.advance(offset),
                        parents=(event.id.advance(offset - 1),),
                        op=event.op.slice(offset, event.op.length - offset),
                    )
                )
            seq = event.end_seq
        return out

    def events_since(self, remote_version: Sequence[EventId]) -> list[RemoteEvent]:
        """Events the remote replica (at ``remote_version``) is missing.

        Accepts a raw id sequence (the wire representation) or a
        :class:`repro.history.Version` handle (anything with an ``ids``
        attribute).  Event ids the local graph does not know are ignored: the
        remote is simply ahead of us on those branches and needs nothing for
        them.  A version id that lands mid-run (the remote carved, or saw,
        only a prefix of one of our runs) splits the stored run at the
        boundary so the unseen suffix is exported and the seen prefix is not
        re-sent.  Cost: the causal diff between the two frontiers plus the
        export of the missing events.
        """
        ids = getattr(remote_version, "ids", remote_version)
        known = [eid for eid in ids if self.graph.contains_id(eid)]
        # Resolve to Event objects first: each dependency_index call may split
        # a stored run, shifting every later index (Event.index stays live).
        local_events = [self.graph[self.graph.dependency_index(eid)] for eid in known]
        local_version = tuple(sorted({e.index for e in local_events}))
        _, missing = self.causal.diff(local_version, self.graph.frontier)
        return self.export_events(missing)

    def ingest_events(self, events: Iterable[RemoteEvent]) -> list[int]:
        """Add remote events to the graph (idempotently).

        Events must arrive with their parents either already known or earlier
        in the same batch (the causal-broadcast layer guarantees this).  Runs
        may be carved differently than this replica's graph; partial overlaps
        are resolved by splitting on either side (see
        :meth:`EventGraph.ingest_run`).

        Returns:
            Local indices of the events now covering the spans that were
            actually new (resolved after the whole batch, since later events
            of the batch may split earlier ones).
        """
        added_spans: list[tuple[str, int, int]] = []
        for remote in events:
            for event in self.graph.add_remote_event(remote.id, remote.parents, remote.op):
                added_spans.append((event.id.agent, event.id.seq, event.op.length))
        return self.graph.indices_covering(added_spans)

    def merge_from(self, other: "OpLog") -> list[int]:
        """Union this log with another replica's log (paper §2.2)."""
        return self.graph.merge_from(other.graph)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, int]:
        return self.graph.summary()
