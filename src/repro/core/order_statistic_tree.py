"""A counted B+-tree over internal-state items (paper §3.4).

The paper stores the internal state's records in the leaves of a B-tree and
extends it into an *order statistic tree*: every node carries the number of
prepare-visible and effect-visible characters in its subtree, so that

* the record run holding the i-th character visible in the prepare version
  can be found in O(log n),
* the effect-version index of a record can be computed in O(log n) by summing
  the counters of subtrees to its left, and
* updating a record's state only requires fixing the counters on the path to
  the root.

:class:`TreeSequence` implements the :class:`~repro.core.sequence.SequenceBackend`
contract on top of such a tree.  Items (record runs and placeholder pieces)
live in the leaves; each item keeps a back-pointer to its leaf (the paper's
second B-tree maps event ids to records — here the shared id range index of
:class:`~repro.core.sequence.SequenceBackend` stores the record object and
uses the back-pointer, which is updated whenever leaves split, exactly as
described in §3.4).
"""

from __future__ import annotations

import bisect
from typing import Iterator

from .records import (
    CrdtRecord,
    Item,
    OriginRef,
    PlaceholderPiece,
    placeholder_origin,
)
from .sequence import Cursor, SequenceBackend, _ref_to_unit

__all__ = ["TreeSequence"]

#: Maximum number of items per leaf / children per internal node before a split.
MAX_NODE_SIZE = 32


class _Leaf:
    """A leaf node holding up to :data:`MAX_NODE_SIZE` items."""

    __slots__ = ("items", "parent", "next", "total", "prep", "eff")

    def __init__(self) -> None:
        self.items: list[Item] = []
        self.parent: _Internal | None = None
        self.next: _Leaf | None = None
        self.total = 0
        self.prep = 0
        self.eff = 0

    def recompute(self) -> None:
        self.total = sum(i.units for i in self.items)
        self.prep = sum(i.prepare_units for i in self.items)
        self.eff = sum(i.effect_units for i in self.items)

    @property
    def is_leaf(self) -> bool:
        return True


class _Internal:
    """An internal node holding child nodes and their aggregate counters."""

    __slots__ = ("children", "parent", "total", "prep", "eff")

    def __init__(self) -> None:
        self.children: list[_Leaf | _Internal] = []
        self.parent: _Internal | None = None
        self.total = 0
        self.prep = 0
        self.eff = 0

    def recompute(self) -> None:
        self.total = sum(c.total for c in self.children)
        self.prep = sum(c.prep for c in self.children)
        self.eff = sum(c.eff for c in self.children)

    @property
    def is_leaf(self) -> bool:
        return False


class TreeSequence(SequenceBackend):
    """Order-statistic B+-tree implementation of the internal-state sequence."""

    def __init__(self, placeholder_length: int = 0) -> None:
        super().__init__()
        self._root: _Leaf | _Internal = _Leaf()
        self._first_leaf: _Leaf = self._root  # type: ignore[assignment]
        self._piece_bases: list[int] = []
        self._pieces: dict[int, PlaceholderPiece] = {}
        self._item_count = 0
        self.clear(placeholder_length)

    # ------------------------------------------------------------------
    # Construction / reset
    # ------------------------------------------------------------------
    def clear(self, placeholder_length: int) -> None:
        leaf = _Leaf()
        self._root = leaf
        self._first_leaf = leaf
        self._reset_indices()
        self._piece_bases = []
        self._pieces = {}
        self._item_count = 0
        if placeholder_length > 0:
            piece = PlaceholderPiece(base=0, length=placeholder_length)
            piece.leaf = leaf
            leaf.items.append(piece)
            leaf.recompute()
            self._register_piece(piece)
            self._item_count = 1

    # ------------------------------------------------------------------
    # Piece registry (for resolving placeholder origin references)
    # ------------------------------------------------------------------
    def _register_piece(self, piece: PlaceholderPiece) -> None:
        idx = bisect.bisect_left(self._piece_bases, piece.base)
        if idx < len(self._piece_bases) and self._piece_bases[idx] == piece.base:
            self._pieces[piece.base] = piece
        else:
            self._piece_bases.insert(idx, piece.base)
            self._pieces[piece.base] = piece

    def resolve_placeholder(self, original_offset: int) -> tuple[PlaceholderPiece, int]:
        idx = bisect.bisect_right(self._piece_bases, original_offset) - 1
        if idx < 0:
            raise KeyError(f"placeholder offset {original_offset} not found")
        piece = self._pieces[self._piece_bases[idx]]
        if not (piece.base <= original_offset < piece.base + piece.length):
            raise KeyError(f"placeholder offset {original_offset} not found")
        return piece, original_offset - piece.base

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def find_visible_unit(self, prepare_pos: int) -> tuple[Item, int]:
        if prepare_pos < 0 or prepare_pos >= self._root.prep:
            raise IndexError(
                f"delete position {prepare_pos} beyond prepare-visible length "
                f"{self._root.prep}"
            )
        node = self._root
        remaining = prepare_pos
        while not node.is_leaf:
            for child in node.children:  # type: ignore[union-attr]
                if child.prep > remaining:
                    node = child
                    break
                remaining -= child.prep
            else:  # pragma: no cover - defensive (counts out of sync)
                raise RuntimeError("prepare counters out of sync")
        for item in node.items:  # type: ignore[union-attr]
            visible = item.prepare_units
            if visible > remaining:
                return item, remaining
            remaining -= visible
        raise RuntimeError("prepare counters out of sync")  # pragma: no cover

    def find_insert_cursor(self, prepare_pos: int) -> Cursor:
        if prepare_pos == 0:
            first_item = self._first_item()
            return Cursor(first_item, 0) if first_item is not None else Cursor(None)
        if prepare_pos > self._root.prep:
            raise IndexError(
                f"insert position {prepare_pos} beyond prepare-visible length "
                f"{self._root.prep}"
            )
        item, offset = self.find_visible_unit(prepare_pos - 1)
        if offset + 1 < item.units:
            # The gap sits strictly inside a multi-unit item (prepare-visible
            # items have unit offset == prepare offset).
            return Cursor(item, offset + 1)
        nxt = self._next_item(item)
        return Cursor(nxt, 0) if nxt is not None else Cursor(None)

    def origin_left_of_cursor(self, cursor: Cursor) -> OriginRef:
        if cursor.item is not None and cursor.offset > 0:
            return _ref_to_unit(cursor.item, cursor.offset - 1)
        prev = (
            self._last_item()
            if cursor.at_end
            else self._prev_item(cursor.item)  # type: ignore[arg-type]
        )
        if prev is None:
            return None
        return _ref_to_unit(prev, prev.units - 1)

    def next_existing_in_prepare(self, cursor: Cursor) -> OriginRef:
        if cursor.at_end:
            return None
        item: Item | None = cursor.item
        first = True
        while item is not None:
            offset = cursor.offset if first else 0
            if isinstance(item, PlaceholderPiece):
                return placeholder_origin(item.base + offset)
            if item.exists_in_prepare:
                return item.id_at(offset)
            item = self._next_item(item)
            first = False
        return None

    def unit_position_of_item(self, item: Item, offset: int = 0) -> int:
        return self._position_of_item(item, offset, effect=False, units=True)

    def effect_position_of_item(self, item: Item, offset: int = 0) -> int:
        return self._position_of_item(item, offset, effect=True, units=False)

    def iter_items_from_cursor(self, cursor: Cursor) -> Iterator[Item]:
        if cursor.at_end:
            return
        leaf = cursor.item.leaf
        idx = _index_in_leaf(leaf, cursor.item)
        while leaf is not None:
            for i in range(idx, len(leaf.items)):
                yield leaf.items[i]
            leaf = leaf.next
            idx = 0

    def iter_items(self) -> Iterator[Item]:
        leaf: _Leaf | None = self._first_leaf
        while leaf is not None:
            yield from leaf.items
            leaf = leaf.next

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert_record_at_cursor(self, cursor: Cursor, record: CrdtRecord) -> None:
        if cursor.at_end:
            self._append_record(record)
            return
        if cursor.offset > 0:
            target = cursor.item
            if isinstance(target, PlaceholderPiece):
                self._split_piece_and_insert(target, cursor.offset, record, consumed=0)
                self.register_record(record)
                return
            right = self.split_record(target, cursor.offset)
            self._insert_before(right, record)
            return
        self._insert_before(cursor.item, record)

    def insert_record_before_item(self, target: Item | None, record: CrdtRecord) -> None:
        if target is None:
            self._append_record(record)
            return
        self._insert_before(target, record)

    def convert_placeholder_run(
        self, piece: PlaceholderPiece, offset: int, record: CrdtRecord
    ) -> None:
        if offset + record.length > piece.length:
            raise ValueError("carved run exceeds the placeholder piece")
        if record.ph_base is None:
            record.ph_base = piece.base + offset
        self._split_piece_and_insert(piece, offset, record, consumed=record.length)
        self.register_record(record)

    def split_record(self, record: CrdtRecord, offset: int) -> CrdtRecord:
        leaf: _Leaf = record.leaf  # type: ignore[assignment]
        idx = _index_in_leaf(leaf, record)
        right = record.split(offset)
        right.leaf = leaf
        leaf.items.insert(idx + 1, right)
        self._item_count += 1
        # Aggregates are unchanged (the same characters are below the leaf);
        # only a structural split may be needed.
        self.register_record(right)
        self._maybe_split_leaf(leaf)
        return right

    def merge_into_left(self, left: CrdtRecord, right: CrdtRecord) -> None:
        # Remove the right half from its leaf first (its counters still
        # describe it), then grow the left half and credit its leaf.  The two
        # may live in different leaves; a leaf left empty stays in the tree
        # (iteration and the total>0 descent skip it) — merges are bounded by
        # prior splits, so empties stay rare.
        units, prep, eff = right.units, right.prepare_units, right.effect_units
        right_leaf: _Leaf = right.leaf  # type: ignore[assignment]
        del right_leaf.items[_index_in_leaf(right_leaf, right)]
        self._item_count -= 1
        self._bubble_add(right_leaf, -units, -prep, -eff)
        right.leaf = None
        self._absorb_record(left, right)
        self._bubble_add(left.leaf, units, prep, eff)  # type: ignore[arg-type]

    def next_item(self, item: Item) -> Item | None:
        return self._next_item(item)

    def prev_item(self, item: Item) -> Item | None:
        return self._prev_item(item)

    def update_item_counts(self, item: Item, d_prepare: int, d_effect: int) -> None:
        if d_prepare == 0 and d_effect == 0:
            return
        leaf: _Leaf = item.leaf  # type: ignore[assignment]
        leaf.prep += d_prepare
        leaf.eff += d_effect
        node = leaf.parent
        while node is not None:
            node.prep += d_prepare
            node.eff += d_effect
            node = node.parent

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def total_units(self) -> int:
        return self._root.total

    def prepare_length(self) -> int:
        return self._root.prep

    def effect_length(self) -> int:
        return self._root.eff

    def memory_items(self) -> int:
        return self._item_count

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _first_item(self) -> Item | None:
        leaf: _Leaf | None = self._first_leaf
        while leaf is not None:
            if leaf.items:
                return leaf.items[0]
            leaf = leaf.next
        return None

    def _last_item(self) -> Item | None:
        # Every item covers >= 1 unit, so a subtree holds items iff total > 0;
        # descending by that skips leaves emptied by span re-merging.
        node = self._root
        while not node.is_leaf:
            for child in reversed(node.children):  # type: ignore[union-attr]
                if child.total > 0:
                    node = child
                    break
            else:
                return None
        return node.items[-1] if node.items else None  # type: ignore[union-attr]

    def _next_item(self, item: Item) -> Item | None:
        leaf: _Leaf = item.leaf  # type: ignore[assignment]
        idx = _index_in_leaf(leaf, item)
        if idx + 1 < len(leaf.items):
            return leaf.items[idx + 1]
        nxt = leaf.next
        while nxt is not None:
            if nxt.items:
                return nxt.items[0]
            nxt = nxt.next
        return None

    def _prev_item(self, item: Item) -> Item | None:
        leaf: _Leaf = item.leaf  # type: ignore[assignment]
        idx = _index_in_leaf(leaf, item)
        if idx > 0:
            return leaf.items[idx - 1]
        # Walk up until a non-empty left sibling subtree exists (total > 0
        # skips leaves emptied by span re-merging), then descend rightmost.
        node: _Leaf | _Internal = leaf
        parent = node.parent
        while parent is not None:
            pos = parent.children.index(node)
            for sib in reversed(parent.children[:pos]):
                if sib.total > 0:
                    while not sib.is_leaf:
                        for child in reversed(sib.children):  # type: ignore[union-attr]
                            if child.total > 0:
                                sib = child
                                break
                    return sib.items[-1]  # type: ignore[union-attr]
            node = parent
            parent = node.parent
        return None

    def _position_of_item(self, item: Item, offset: int, *, effect: bool, units: bool) -> int:
        leaf: _Leaf = item.leaf  # type: ignore[assignment]
        idx = _index_in_leaf(leaf, item)
        if units:
            pos = offset + sum(i.units for i in leaf.items[:idx])
        elif effect:
            pos = offset + sum(i.effect_units for i in leaf.items[:idx])
        else:
            pos = offset + sum(i.prepare_units for i in leaf.items[:idx])
        node: _Leaf | _Internal = leaf
        parent = node.parent
        while parent is not None:
            child_pos = parent.children.index(node)
            for sibling in parent.children[:child_pos]:
                if units:
                    pos += sibling.total
                elif effect:
                    pos += sibling.eff
                else:
                    pos += sibling.prep
            node = parent
            parent = node.parent
        return pos

    # -- structural modifications --------------------------------------------
    def _append_record(self, record: CrdtRecord) -> None:
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]  # type: ignore[union-attr]
        leaf: _Leaf = node  # type: ignore[assignment]
        record.leaf = leaf
        leaf.items.append(record)
        self._item_count += 1
        self.register_record(record)
        self._bubble_add(leaf, record.units, record.prepare_units, record.effect_units)
        self._maybe_split_leaf(leaf)

    def _insert_before(self, target: Item, record: CrdtRecord) -> None:
        leaf: _Leaf = target.leaf  # type: ignore[assignment]
        idx = _index_in_leaf(leaf, target)
        record.leaf = leaf
        leaf.items.insert(idx, record)
        self._item_count += 1
        self.register_record(record)
        self._bubble_add(leaf, record.units, record.prepare_units, record.effect_units)
        self._maybe_split_leaf(leaf)

    def _split_piece_and_insert(
        self, piece: PlaceholderPiece, offset: int, record: CrdtRecord, *, consumed: int
    ) -> None:
        """Split ``piece`` at ``offset`` and place ``record`` in the gap.

        ``consumed`` placeholder units starting at ``offset`` are *replaced*
        by the record (used when deleting pre-existing characters); with
        ``consumed == 0`` the record is inserted between units ``offset-1``
        and ``offset`` and the placeholder keeps all its units.
        """
        leaf: _Leaf = piece.leaf  # type: ignore[assignment]
        idx = _index_in_leaf(leaf, piece)
        right_start = offset + consumed
        replacement: list[Item] = []
        if offset > 0:
            left = PlaceholderPiece(base=piece.base, length=offset)
            left.leaf = leaf
            replacement.append(left)
        record.leaf = leaf
        replacement.append(record)
        if right_start < piece.length:
            right = PlaceholderPiece(
                base=piece.base + right_start, length=piece.length - right_start
            )
            right.leaf = leaf
            replacement.append(right)
        leaf.items[idx : idx + 1] = replacement
        self._item_count += len(replacement) - 1

        # Update the piece registry: the original base now maps to the left
        # fragment (if any), and the right fragment gets a new base entry.
        reg_idx = bisect.bisect_left(self._piece_bases, piece.base)
        if reg_idx < len(self._piece_bases) and self._piece_bases[reg_idx] == piece.base:
            if offset > 0:
                self._pieces[piece.base] = replacement[0]  # type: ignore[assignment]
            else:
                del self._pieces[piece.base]
                self._piece_bases.pop(reg_idx)
        if right_start < piece.length:
            self._register_piece(replacement[-1])  # type: ignore[arg-type]

        delta_units = record.units - consumed
        delta_prep = record.prepare_units - consumed
        delta_eff = record.effect_units - consumed
        self._bubble_add(leaf, delta_units, delta_prep, delta_eff)
        self._maybe_split_leaf(leaf)

    def _bubble_add(self, leaf: _Leaf, d_total: int, d_prep: int, d_eff: int) -> None:
        leaf.total += d_total
        leaf.prep += d_prep
        leaf.eff += d_eff
        node = leaf.parent
        while node is not None:
            node.total += d_total
            node.prep += d_prep
            node.eff += d_eff
            node = node.parent

    def _maybe_split_leaf(self, leaf: _Leaf) -> None:
        if len(leaf.items) <= MAX_NODE_SIZE:
            return
        mid = len(leaf.items) // 2
        new_leaf = _Leaf()
        new_leaf.items = leaf.items[mid:]
        leaf.items = leaf.items[:mid]
        for item in new_leaf.items:
            item.leaf = new_leaf
        new_leaf.next = leaf.next
        leaf.next = new_leaf
        leaf.recompute()
        new_leaf.recompute()
        self._insert_into_parent(leaf, new_leaf)

    def _insert_into_parent(
        self, node: _Leaf | _Internal, new_node: _Leaf | _Internal
    ) -> None:
        parent = node.parent
        if parent is None:
            new_root = _Internal()
            new_root.children = [node, new_node]
            node.parent = new_root
            new_node.parent = new_root
            new_root.recompute()
            self._root = new_root
            return
        pos = parent.children.index(node)
        parent.children.insert(pos + 1, new_node)
        new_node.parent = parent
        # The parent's aggregates are unchanged (the same items are below it),
        # so only a structural split may be needed.
        if len(parent.children) > MAX_NODE_SIZE:
            self._split_internal(parent)

    def _split_internal(self, node: _Internal) -> None:
        mid = len(node.children) // 2
        new_node = _Internal()
        new_node.children = node.children[mid:]
        node.children = node.children[:mid]
        for child in new_node.children:
            child.parent = new_node
        node.recompute()
        new_node.recompute()
        self._insert_into_parent(node, new_node)


def _index_in_leaf(leaf: _Leaf, item: Item) -> int:
    """Index of ``item`` within its leaf (identity comparison)."""
    for i, candidate in enumerate(leaf.items):
        if candidate is item:
            return i
    raise KeyError(f"item {item!r} is not in its leaf")  # pragma: no cover
