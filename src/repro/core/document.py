"""High-level collaborative document API.

:class:`Document` is the replica object an application embeds: it owns an
:class:`~repro.core.oplog.OpLog` (the durable event graph), the current
document text (a :class:`~repro.rope.Rope`), and uses an
:class:`~repro.core.walker.EgWalker` to merge concurrent changes.

Design points that mirror the paper:

* Local edits and remote events that are *not* concurrent with anything are
  applied directly to the text — the walker and its CRDT state are never
  touched (§3.1), which is why the steady-state memory footprint is just the
  text plus the (on-disk) event graph.
* When concurrent remote events arrive, only the portion of the graph after
  the most recent critical version is replayed (§3.6), and the transformed
  operations are applied to the current text.
* The full event graph is retained, so any historical version can be
  reconstructed (:meth:`Document.text_at`) and traces can be saved to disk
  with :mod:`repro.storage`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..rope import Rope
from .event_graph import Version
from .ids import EventId, Operation
from .merge_engine import MergeEngine, MergeEngineStats
from .oplog import OpLog, RemoteEvent
from .walker import EgWalker

__all__ = ["Document"]


class Document:
    """A replica of a collaboratively edited plain-text document.

    Args:
        agent: this replica's globally unique name.
        backend / enable_clearing / enable_span_merging / sort_strategy:
            walker configuration, see :class:`~repro.core.walker.EgWalker`.
        incremental: use the persistent :class:`MergeEngine` (critical cuts
            tracked incrementally, sequential fast path, resident walker
            state between merges).  ``False`` selects the legacy
            rebuild-everything merge — O(history) bookkeeping per merge —
            kept as the ablation baseline.
        coalesce_local_runs: fold local edits that continue the frontier run
            into the existing event (sender-side run coalescing), so a
            keystroke-at-a-time session stores O(runs) events.
    """

    def __init__(
        self,
        agent: str,
        *,
        backend: str = "tree",
        enable_clearing: bool = True,
        enable_span_merging: bool = True,
        sort_strategy: str = "branch_aware",
        incremental: bool = True,
        coalesce_local_runs: bool = True,
    ) -> None:
        self.agent = agent
        self.oplog = OpLog(agent, coalesce_local_runs=coalesce_local_runs)
        self.rope = Rope()
        self._walker_options = {
            "backend": backend,
            "enable_clearing": enable_clearing,
            "enable_span_merging": enable_span_merging,
            "sort_strategy": sort_strategy,
        }
        self.engine = MergeEngine(
            self.oplog, self.rope, self._walker_options, incremental=incremental
        )

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def text(self) -> str:
        """The current document text."""
        return str(self.rope)

    def __len__(self) -> int:
        return len(self.rope)

    @property
    def version(self) -> Version:
        return self.oplog.version

    def remote_version(self) -> tuple[EventId, ...]:
        return self.oplog.remote_version()

    # ------------------------------------------------------------------
    # Local editing
    # ------------------------------------------------------------------
    def insert(self, pos: int, content: str) -> None:
        """Insert ``content`` at ``pos`` as a local edit."""
        if pos < 0 or pos > len(self.rope):
            raise IndexError(f"insert position {pos} out of range (length {len(self.rope)})")
        if not content:
            return
        self.oplog.add_insert(pos, content)
        self.rope.insert(pos, content)

    def delete(self, pos: int, length: int = 1) -> str:
        """Delete ``length`` characters starting at ``pos`` as a local edit."""
        if length <= 0:
            return ""
        if pos < 0 or pos + length > len(self.rope):
            raise IndexError(
                f"delete of {length} at {pos} out of range (length {len(self.rope)})"
            )
        self.oplog.add_delete(pos, length)
        return self.rope.delete(pos, length)

    # ------------------------------------------------------------------
    # Merging remote changes
    # ------------------------------------------------------------------
    def merge(self, other: "Document") -> list[Operation]:
        """Merge every event of ``other`` that this replica hasn't seen.

        Returns the transformed operations that were applied to the local
        text (the incremental update of §2.4).
        """
        added = self.oplog.merge_from(other.oplog)
        return self._integrate_new_events(added)

    def apply_remote_events(self, events: Iterable[RemoteEvent]) -> list[Operation]:
        """Ingest a batch of events from the network and update the text."""
        added = self.oplog.ingest_events(events)
        return self._integrate_new_events(added)

    def events_since(self, remote_version: Sequence[EventId]) -> list[RemoteEvent]:
        """Events a peer at ``remote_version`` is missing (for replication)."""
        return self.oplog.events_since(remote_version)

    # ------------------------------------------------------------------
    # History
    # ------------------------------------------------------------------
    def text_at(self, version: Version) -> str:
        """Reconstruct the document text at an arbitrary historical version.

        ``version`` is a tuple of *current* local event indices.  With
        sender-side run coalescing enabled, an index names the frontier run
        *as it is now* — a snapshot that must survive later local edits
        should be taken with :meth:`remote_version` and resolved through
        :meth:`text_at_remote` instead (character ids are stable; run
        boundaries are not).
        """
        walker = self._make_walker()
        return walker.text_at_version(version)

    def text_at_remote(self, remote_version: Sequence[EventId]) -> str:
        """Reconstruct the text at an id-based version snapshot.

        Each id names the last character the snapshot covered.  If a run was
        extended (or carved differently) since the snapshot was taken, the
        stored run is split at the boundary first — a semantic no-op — so the
        reconstruction covers exactly the snapshotted characters.
        """
        graph = self.oplog.graph
        # Resolve to Event objects first: each dependency_index call may split
        # a stored run, shifting every later index (Event.index stays live).
        events = [graph[graph.dependency_index(eid)] for eid in remote_version]
        return self.text_at(tuple(sorted({e.index for e in events})))

    def history_versions(self) -> list[Version]:
        """Every prefix version in local order (useful for history browsing)."""
        return [tuple([idx]) for idx in range(len(self.oplog.graph))]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def merge_stats(self) -> MergeEngineStats:
        """Work counters of the merge engine (see :class:`MergeEngineStats`)."""
        return self.engine.stats

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _make_walker(self) -> EgWalker:
        return EgWalker(self.oplog.graph, **self._walker_options)

    def _integrate_new_events(self, added: list[int]) -> list[Operation]:
        return self.engine.integrate(added)
