"""High-level collaborative document API.

:class:`Document` is the replica object an application embeds: it owns an
:class:`~repro.core.oplog.OpLog` (the durable event graph), the current
document text (a :class:`~repro.rope.Rope`), and uses an
:class:`~repro.core.walker.EgWalker` to merge concurrent changes.

Design points that mirror the paper:

* Local edits and remote events that are *not* concurrent with anything are
  applied directly to the text — the walker and its CRDT state are never
  touched (§3.1), which is why the steady-state memory footprint is just the
  text plus the (on-disk) event graph.
* When concurrent remote events arrive, only the portion of the graph after
  the most recent critical version is replayed (§3.6), and the transformed
  operations are applied to the current text.
* The full event graph is retained, so any historical version can be
  reconstructed (:meth:`Document.text_at`) and traces can be saved to disk
  with :mod:`repro.storage`.

Versions are **id-based** throughout the public API: :meth:`Document.version`
returns a frozen :class:`repro.history.Version` (a frontier of character
ids), which is the stable handle — it survives sender-side run coalescing
extending the frontier run in place, interop splits, storage round trips and
transfer to other replicas.  Local-index tuples still exist internally
(:attr:`Document.local_version`) but silently go stale under in-place run
extension; the historical index-based entry points are kept as thin
deprecated shims.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Iterable, Sequence

from ..rope import Rope
from .event_graph import Version as LocalVersion
from .ids import EventId, Operation
from .merge_engine import MergeEngine, MergeEngineStats
from .oplog import OpLog, RemoteEvent
from .walker import EgWalker

if TYPE_CHECKING:  # pragma: no cover - resolved lazily to avoid an import cycle
    from ..history import History, Version

__all__ = ["Document"]


class Document:
    """A replica of a collaboratively edited plain-text document.

    Args:
        agent: this replica's globally unique name.
        backend / enable_clearing / enable_span_merging / sort_strategy:
            walker configuration, see :class:`~repro.core.walker.EgWalker`.
        incremental: use the persistent :class:`MergeEngine` (critical cuts
            tracked incrementally, sequential fast path, resident walker
            state between merges).  ``False`` selects the legacy
            rebuild-everything merge — O(history) bookkeeping per merge —
            kept as the ablation baseline.
        coalesce_local_runs: fold local edits that continue the frontier run
            into the existing event (sender-side run coalescing), so a
            keystroke-at-a-time session stores O(runs) events.
    """

    def __init__(
        self,
        agent: str,
        *,
        backend: str = "tree",
        enable_clearing: bool = True,
        enable_span_merging: bool = True,
        sort_strategy: str = "branch_aware",
        incremental: bool = True,
        coalesce_local_runs: bool = True,
    ) -> None:
        self.agent = agent
        self.oplog = OpLog(agent, coalesce_local_runs=coalesce_local_runs)
        self.rope = Rope()
        self._walker_options = {
            "backend": backend,
            "enable_clearing": enable_clearing,
            "enable_span_merging": enable_span_merging,
            "sort_strategy": sort_strategy,
        }
        self.engine = MergeEngine(
            self.oplog, self.rope, self._walker_options, incremental=incremental
        )
        # Imported lazily: repro.history depends on the core modules above.
        from ..history import History

        self.history: History = History(self.oplog, self.engine)
        """Id-based history browsing: version algebra, ``text_at`` / ``diff``
        / ``checkout`` (see :class:`repro.history.History`).  The methods
        below delegate here."""

    @classmethod
    def from_bytes(cls, data: bytes, agent: str, **options: object) -> "Document":
        """Load a replica from a stored event-graph file (v2 or v3).

        The decoded events are ingested through the normal remote-events
        path, so the resulting replica is immediately editable and mergeable.
        This fully materialises the graph; use
        :class:`repro.storage.LazyDecodedFile` when only the text (or a
        read-only :class:`~repro.history.History`) is needed.
        """
        from ..storage.container import _graph_to_remote_events, decode_file

        document = cls(agent, **options)  # type: ignore[arg-type]
        decoded = decode_file(data)
        document.apply_remote_events(_graph_to_remote_events(decoded.graph))
        return document

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def text(self) -> str:
        """The current document text."""
        return str(self.rope)

    def __len__(self) -> int:
        return len(self.rope)

    def version(self) -> "Version":
        """The current version as a stable, id-based handle.

        The returned :class:`repro.history.Version` can be saved, sent to a
        peer, persisted (``repro.storage.encode_version``) and resolved later
        — it stays exact across further edits, in-place run extension and
        re-carved interop syncs.  O(frontier heads).
        """
        return self.history.version()

    @property
    def local_version(self) -> LocalVersion:
        """The frontier as *local event indices* (internal representation).

        Only meaningful inside this replica and only until the graph mutates:
        in-place run extension makes an index tuple cover more characters,
        interop splits shift indices.  Use :meth:`version` for anything that
        outlives the current call stack.
        """
        return self.oplog.local_version

    def remote_version(self) -> tuple[EventId, ...]:
        """Deprecated: use :meth:`version` (its ``.ids`` are these ids).

        Forwards to the :class:`~repro.history.Version` handle so the shim
        can never drift from the canonical API: the returned ids are exactly
        ``Document.version().ids`` (sorted, deduplicated).
        """
        warnings.warn(
            "Document.remote_version() is deprecated; use Document.version() "
            "(a repro.history.Version; its .ids field carries the event ids)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.version().ids

    # ------------------------------------------------------------------
    # Local editing
    # ------------------------------------------------------------------
    def insert(self, pos: int, content: str) -> None:
        """Insert ``content`` at ``pos`` as a local edit."""
        if pos < 0 or pos > len(self.rope):
            raise IndexError(f"insert position {pos} out of range (length {len(self.rope)})")
        if not content:
            return
        self.oplog.add_insert(pos, content)
        self.rope.insert(pos, content)

    def delete(self, pos: int, length: int = 1) -> str:
        """Delete ``length`` characters starting at ``pos`` as a local edit."""
        if length <= 0:
            return ""
        if pos < 0 or pos + length > len(self.rope):
            raise IndexError(
                f"delete of {length} at {pos} out of range (length {len(self.rope)})"
            )
        self.oplog.add_delete(pos, length)
        return self.rope.delete(pos, length)

    # ------------------------------------------------------------------
    # Merging remote changes
    # ------------------------------------------------------------------
    def merge(self, other: "Document") -> list[Operation]:
        """Merge every event of ``other`` that this replica hasn't seen.

        Returns the transformed operations that were applied to the local
        text (the incremental update of §2.4).
        """
        added = self.oplog.merge_from(other.oplog)
        return self._integrate_new_events(added)

    def apply_remote_events(self, events: Iterable[RemoteEvent]) -> list[Operation]:
        """Ingest a batch of events from the network and update the text."""
        added = self.oplog.ingest_events(events)
        return self._integrate_new_events(added)

    def events_since(
        self, version: "Version | Sequence[EventId]"
    ) -> list[RemoteEvent]:
        """Events a peer at ``version`` is missing (for replication).

        Accepts a :class:`repro.history.Version` handle (the id-based
        currency of the public API) or a raw sequence of :class:`EventId`
        (the wire representation).
        """
        return self.oplog.events_since(version)

    # ------------------------------------------------------------------
    # History (id-based versions; see repro.history)
    # ------------------------------------------------------------------
    def text_at(self, version: "Version | Sequence[int]") -> str:
        """Reconstruct the document text at a historical version.

        ``version`` is a saved :class:`repro.history.Version` handle.  The
        reconstruction resumes the merge engine's walker machinery: browsing
        forward from the last reconstructed version replays only the events
        between the two (from the nearest critical version, §3.6), a cold
        lookup replays ``Events(version)`` once.  The result is exact for
        arbitrary saved handles, no matter how the graph was extended, split
        or re-carved since the handle was taken.

        Passing a tuple of local event indices (the pre-id-based API) still
        works but is deprecated: index snapshots silently go stale when the
        frontier run is extended in place.
        """
        from ..history import Version

        if not isinstance(version, Version):
            warnings.warn(
                "Document.text_at with local-index tuples is deprecated; hold "
                "a Document.version() handle (repro.history.Version) instead "
                "— index snapshots go stale when runs extend in place",
                DeprecationWarning,
                stacklevel=2,
            )
            return self._make_walker().text_at_version(tuple(version))
        return self.history.text_at(version)

    def diff(self, a: "Version", b: "Version") -> list[Operation]:
        """The operations transforming ``text_at(a)`` into ``text_at(b)``.

        Walker-computed in O(window + new events) when ``a`` is an ancestor
        of ``b`` — O(new events) when ``a`` is a critical version — and a
        character-level text diff otherwise.  See
        :meth:`repro.history.History.diff`.
        """
        return self.history.diff(a, b)

    def checkout(self, version: "Version", *, agent: str | None = None) -> "Document":
        """Materialise a historical version as a fresh, editable replica.

        See :meth:`repro.history.History.checkout`.
        """
        return self.history.checkout(version, agent=agent)

    def versions(self) -> list["Version"]:
        """One stable handle per run event, in local order (history browsing).

        The handle for an event covers the document as its author saw it
        right after typing it.  O(events).
        """
        return self.history.versions()

    def text_at_remote(self, remote_version: Sequence[EventId]) -> str:
        """Deprecated: wrap the ids in a :class:`repro.history.Version` and
        call :meth:`text_at`."""
        from ..history import Version

        warnings.warn(
            "Document.text_at_remote is deprecated; use "
            "Document.text_at(Version(ids)) — or save Document.version() "
            "handles in the first place",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.history.text_at(Version(remote_version))

    def history_versions(self) -> list[LocalVersion]:
        """Deprecated: use :meth:`versions` (stable id-based handles)."""
        warnings.warn(
            "Document.history_versions is deprecated; use Document.versions() "
            "— its Version handles stay valid across in-place run extension",
            DeprecationWarning,
            stacklevel=2,
        )
        return [tuple([idx]) for idx in range(len(self.oplog.graph))]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def merge_stats(self) -> MergeEngineStats:
        """Work counters of the merge engine (see :class:`MergeEngineStats`)."""
        return self.engine.stats

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _make_walker(self) -> EgWalker:
        return EgWalker(self.oplog.graph, **self._walker_options)

    def _integrate_new_events(self, added: list[int]) -> list[Operation]:
        return self.engine.integrate(added)
