"""High-level collaborative document API.

:class:`Document` is the replica object an application embeds: it owns an
:class:`~repro.core.oplog.OpLog` (the durable event graph), the current
document text (a :class:`~repro.rope.Rope`), and uses an
:class:`~repro.core.walker.EgWalker` to merge concurrent changes.

Design points that mirror the paper:

* Local edits and remote events that are *not* concurrent with anything are
  applied directly to the text — the walker and its CRDT state are never
  touched (§3.1), which is why the steady-state memory footprint is just the
  text plus the (on-disk) event graph.
* When concurrent remote events arrive, only the portion of the graph after
  the most recent critical version is replayed (§3.6), and the transformed
  operations are applied to the current text.
* The full event graph is retained, so any historical version can be
  reconstructed (:meth:`Document.text_at`) and traces can be saved to disk
  with :mod:`repro.storage`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..rope import Rope
from .causal_graph import CausalGraph
from .critical_versions import latest_critical_cut_before
from .event_graph import Version
from .ids import EventId, Operation
from .oplog import OpLog, RemoteEvent
from .topo_sort import sort_branch_aware
from .walker import EgWalker, ReplayResult

__all__ = ["Document"]


class Document:
    """A replica of a collaboratively edited plain-text document."""

    def __init__(
        self,
        agent: str,
        *,
        backend: str = "tree",
        enable_clearing: bool = True,
        enable_span_merging: bool = True,
        sort_strategy: str = "branch_aware",
    ) -> None:
        self.agent = agent
        self.oplog = OpLog(agent)
        self.rope = Rope()
        self._walker_options = {
            "backend": backend,
            "enable_clearing": enable_clearing,
            "enable_span_merging": enable_span_merging,
            "sort_strategy": sort_strategy,
        }

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def text(self) -> str:
        """The current document text."""
        return str(self.rope)

    def __len__(self) -> int:
        return len(self.rope)

    @property
    def version(self) -> Version:
        return self.oplog.version

    def remote_version(self) -> tuple[EventId, ...]:
        return self.oplog.remote_version()

    # ------------------------------------------------------------------
    # Local editing
    # ------------------------------------------------------------------
    def insert(self, pos: int, content: str) -> None:
        """Insert ``content`` at ``pos`` as a local edit."""
        if pos < 0 or pos > len(self.rope):
            raise IndexError(f"insert position {pos} out of range (length {len(self.rope)})")
        if not content:
            return
        self.oplog.add_insert(pos, content)
        self.rope.insert(pos, content)

    def delete(self, pos: int, length: int = 1) -> str:
        """Delete ``length`` characters starting at ``pos`` as a local edit."""
        if length <= 0:
            return ""
        if pos < 0 or pos + length > len(self.rope):
            raise IndexError(
                f"delete of {length} at {pos} out of range (length {len(self.rope)})"
            )
        self.oplog.add_delete(pos, length)
        return self.rope.delete(pos, length)

    # ------------------------------------------------------------------
    # Merging remote changes
    # ------------------------------------------------------------------
    def merge(self, other: "Document") -> list[Operation]:
        """Merge every event of ``other`` that this replica hasn't seen.

        Returns the transformed operations that were applied to the local
        text (the incremental update of §2.4).
        """
        added = self.oplog.merge_from(other.oplog)
        return self._integrate_new_events(added)

    def apply_remote_events(self, events: Iterable[RemoteEvent]) -> list[Operation]:
        """Ingest a batch of events from the network and update the text."""
        added = self.oplog.ingest_events(events)
        return self._integrate_new_events(added)

    def events_since(self, remote_version: Sequence[EventId]) -> list[RemoteEvent]:
        """Events a peer at ``remote_version`` is missing (for replication)."""
        return self.oplog.events_since(remote_version)

    # ------------------------------------------------------------------
    # History
    # ------------------------------------------------------------------
    def text_at(self, version: Version) -> str:
        """Reconstruct the document text at an arbitrary historical version."""
        walker = self._make_walker()
        return walker.text_at_version(version)

    def history_versions(self) -> list[Version]:
        """Every prefix version in local order (useful for history browsing)."""
        return [tuple([idx]) for idx in range(len(self.oplog.graph))]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _make_walker(self) -> EgWalker:
        return EgWalker(self.oplog.graph, **self._walker_options)

    def _integrate_new_events(self, added: list[int]) -> list[Operation]:
        if not added:
            return []
        graph = self.oplog.graph
        first_new = min(added)

        # Find the most recent critical version (of the graph in local order)
        # that precedes all new events; everything before it is already
        # reflected identically in our text and the remote's, so the replay
        # can start there (§3.6).
        local_order = list(range(len(graph)))
        cut = latest_critical_cut_before(graph, local_order, first_new)
        if cut is None:
            base_version: Version = ()
            replay_start = 0
        else:
            base_version = (local_order[cut],)
            replay_start = cut + 1

        old_range = [idx for idx in range(replay_start, first_new)]
        new_events = sorted(added)
        order = sort_branch_aware(graph, old_range) + sort_branch_aware(graph, new_events)

        # The placeholder must be at least as long as the document was at the
        # base version; the current length plus every deleted character
        # replayed on the old side is a safe upper bound (over-length
        # placeholders are harmless, see InternalState.clear).
        deletes_in_old_range = sum(
            graph[idx].op.length for idx in old_range if graph[idx].op.is_delete
        )
        base_doc_length = len(self.rope) + deletes_in_old_range

        walker = self._make_walker()
        result: ReplayResult = walker.transform(
            old_range + new_events,
            base_version=base_version,
            base_doc_length=base_doc_length,
            order=order,
            emit_only=set(new_events),
        )

        applied: list[Operation] = []
        for entry in result.transformed:
            for op in entry.ops:
                if op.is_insert:
                    self.rope.insert(op.pos, op.content)
                else:
                    self.rope.delete(op.pos, op.length)
                applied.append(op)
        return applied
