"""The Event Graph Walker replay engine (paper §3).

:class:`EgWalker` turns a (portion of an) event graph into a linear sequence
of *transformed* index-based operations that can be applied, in order, to a
document text.  It is the heart of the reproduction: the walker

1. topologically sorts the events to replay, keeping branches contiguous
   (§3.2),
2. for each event, moves its *prepare version* to the event's parents by
   retreating and advancing previously applied events (computed with the
   priority-queue ``diff`` of §3.2),
3. applies the event to the internal CRDT state, which yields the operation
   transformed into the *effect version* (§3.3–3.4), and
4. exploits critical versions (§3.5) to clear the internal state and to skip
   the CRDT entirely for events in purely sequential regions, and placeholders
   (§3.6) so that a merge only replays events after the last critical version.

The pipeline is **run-length encoded end to end**: events are runs, the
internal state applies/retreats/advances whole runs (splitting record spans
only when concurrency forces it), and the transformed output is emitted as
runs — an insert event yields at most one transformed operation, a delete
event yields one operation per contiguous segment of its targets in the
effect version, coalesced back into maximal runs.  Everything therefore costs
O(runs), not O(chars), on realistic traces.

The walker never stores text: transformed insert operations carry their
characters, and the caller applies them to whatever document representation
it uses (see :class:`repro.core.document.Document`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from .causal_graph import CausalGraph
from .critical_versions import critical_cut_positions
from .event_graph import EventGraph, Version
from .ids import Operation, OpKind, delete_op, insert_op
from .internal_state import InternalState
from .order_statistic_tree import TreeSequence
from .sequence import ListSequence
from .topo_sort import sort_branch_aware, sort_interleaved, sort_local_order

__all__ = ["EgWalker", "ReplayResult", "TransformedOp", "WalkerStats", "coalesce_ops"]


@dataclass(slots=True)
class TransformedOp:
    """One entry of the rebased, linear operation history.

    Attributes:
        event_index: local index of the run event these operations came from.
        ops: the event's operations transformed into the effect version —
            ready to be applied to the document, in order.  An insert run
            yields at most one operation; a delete run yields one operation
            per contiguous effect-version segment.  The tuple is empty when
            the event became a complete no-op (all of its characters had
            already been deleted by concurrent events).
    """

    event_index: int
    ops: tuple[Operation, ...]


@dataclass(slots=True)
class WalkerStats:
    """Counters describing the work a replay performed (used by benchmarks).

    Event counters count *run events*; the ``chars_*`` twins count the
    characters those runs cover, so the run-length-encoding win is directly
    measurable as the ratio between the two.  ``peak_records`` counts span
    items (records + placeholder pieces) held by the internal state at its
    largest; ``peak_record_chars`` counts the characters those spans covered.
    ``spans_merged`` counts how often the state re-merged adjacent same-state
    spans (the inverse of concurrency-forced splitting), and
    ``final_records`` is the span count left when the replay finished — on a
    concurrency-then-quiescence trace re-merging pulls it back below the peak.
    """

    events_processed: int = 0
    chars_processed: int = 0
    events_fast_path: int = 0
    chars_fast_path: int = 0
    retreats: int = 0
    advances: int = 0
    state_clears: int = 0
    peak_records: int = 0
    peak_record_chars: int = 0
    spans_merged: int = 0
    final_records: int = 0


@dataclass(slots=True)
class ReplayResult:
    """The outcome of a replay: transformed operations plus bookkeeping.

    ``state`` and ``prepare_version`` describe where the walker's internal
    CRDT state ended up; a caller that keeps them (the merge engine) can feed
    them back into :meth:`EgWalker.transform` to *resume* — replaying only new
    events against the live state instead of rebuilding the whole window.
    """

    transformed: list[TransformedOp]
    final_length: int
    stats: WalkerStats = field(default_factory=WalkerStats)
    state: InternalState | None = None
    prepare_version: Version = ()

    def ops(self) -> list[Operation]:
        """The non-noop transformed operations, in replay order."""
        return [op for t in self.transformed for op in t.ops]

    def coalesced_ops(self) -> list[Operation]:
        """The transformed operations with adjacent runs merged (see
        :func:`coalesce_ops`)."""
        return coalesce_ops(self.ops())


def coalesce_ops(ops: Iterable[Operation]) -> list[Operation]:
    """Merge adjacent operations back into maximal runs.

    Two consecutive operations merge when applying the second directly after
    the first is equivalent to one longer run: an insert continuing at the end
    of the previous insert, or a delete at the same index as the previous
    delete (the following characters having shifted onto it).
    """
    out: list[Operation] = []
    for op in ops:
        if out:
            prev = out[-1]
            if (
                prev.kind is OpKind.INSERT
                and op.kind is OpKind.INSERT
                and op.pos == prev.pos + prev.length
            ):
                out[-1] = insert_op(prev.pos, prev.content + op.content)
                continue
            if (
                prev.kind is OpKind.DELETE
                and op.kind is OpKind.DELETE
                and op.pos == prev.pos
            ):
                out[-1] = delete_op(prev.pos, prev.length + op.length)
                continue
        out.append(op)
    return out


_SORTERS: dict[str, Callable[[EventGraph, Iterable[int]], list[int]]] = {
    "branch_aware": sort_branch_aware,
    "local": sort_local_order,
    "interleaved": sort_interleaved,
}


class EgWalker:
    """Replays event graphs into transformed operations.

    Args:
        graph: the event graph to replay from.
        backend: ``"tree"`` (default) uses the order-statistic B-tree of §3.4;
            ``"list"`` uses a flat list with linear scans (the simple variant
            used as a correctness oracle).
        enable_clearing: enable the critical-version optimisations of §3.5
            (state clearing plus the transform-free fast path).  Disabling
            this reproduces the "opt disabled" series of Figure 9.
        enable_span_merging: re-merge adjacent same-state record spans once
            the concurrency that split them resolves, so the internal state
            shrinks back toward O(runs).  Disabling it reproduces the
            split-only behaviour (used by the span-merging ablation).
        sort_strategy: ``"branch_aware"`` (default, the paper's heuristic),
            ``"local"`` or ``"interleaved"`` (pathological; used by the
            sort-order ablation).
    """

    def __init__(
        self,
        graph: EventGraph,
        *,
        backend: str = "tree",
        enable_clearing: bool = True,
        enable_span_merging: bool = True,
        sort_strategy: str = "branch_aware",
    ) -> None:
        if backend not in ("tree", "list"):
            raise ValueError(f"unknown backend {backend!r}")
        if sort_strategy not in _SORTERS:
            raise ValueError(f"unknown sort strategy {sort_strategy!r}")
        self.graph = graph
        self.causal = CausalGraph(graph)
        self.backend = backend
        self.enable_clearing = enable_clearing
        self.enable_span_merging = enable_span_merging
        self.sort_strategy = sort_strategy
        self.last_stats: WalkerStats | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def transform(
        self,
        events: Iterable[int] | None = None,
        *,
        base_version: Version = (),
        base_doc_length: int = 0,
        order: Sequence[int] | None = None,
        emit_only: set[int] | None = None,
        state: InternalState | None = None,
        start_prepare_version: Version | None = None,
        clearing: bool | None = None,
    ) -> ReplayResult:
        """Replay ``events`` and return the transformed operation sequence.

        Args:
            events: local indices of the run events to replay.  ``None``
                replays the whole graph.  The set must be closed under
                concurrency relative to ``base_version``: every replayed
                event's parents must either be replayed too or be ancestors of
                ``base_version``.
            base_version: the version the replay starts from.  The empty
                version replays from the beginning of history.
            base_doc_length: length (or a safe upper bound on the length) of
                the document at ``base_version``; used to size the initial
                placeholder (§3.6).
            order: explicit replay order.  When omitted the configured
                topological sort is used.
            emit_only: if given, transformed operations are only collected for
                these events (the rest are replayed silently, as in the merge
                procedure of §3.6).
            state: an existing :class:`InternalState` to **resume** from (the
                live state a previous ``transform`` returned).  The replayed
                events are applied on top of it; the events it already covers
                must not be replayed again.  When given, ``base_doc_length``
                is ignored (the state already holds its placeholder).
            start_prepare_version: the prepare version the resumed state was
                left at (``ReplayResult.prepare_version`` of the previous
                call).  Defaults to ``base_version``.
            clearing: per-call override of ``enable_clearing``.  A resuming
                caller passes ``False``: criticality of the replayed subset
                alone says nothing about the events already folded into the
                live state, so clearing decisions belong to the engine, not
                the walker.

        Returns:
            A :class:`ReplayResult` with one :class:`TransformedOp` per
            emitted event, in replay order, plus the final internal state and
            prepare version for callers that resume.
        """
        graph = self.graph
        if events is None:
            event_list: list[int] = list(range(len(graph)))
        else:
            event_list = sorted(events)
        if order is None:
            order = _SORTERS[self.sort_strategy](graph, event_list)
        else:
            order = list(order)

        stats = WalkerStats()
        if state is None:
            state = InternalState(
                self._make_backend(base_doc_length), merge_spans=self.enable_span_merging
            )
        use_clearing = self.enable_clearing if clearing is None else clearing
        cuts: set[int] = set()
        if use_clearing:
            cuts = critical_cut_positions(graph, order)

        transformed: list[TransformedOp] = []
        prepare_version: Version = (
            start_prepare_version if start_prepare_version is not None else base_version
        )
        doc_length = base_doc_length
        needs_reset = False

        for pos, idx in enumerate(order):
            event = graph[idx]
            op = event.op
            stats.events_processed += 1
            stats.chars_processed += op.length
            parent_critical = use_clearing and (pos == 0 or (pos - 1) in cuts)
            own_critical = use_clearing and pos in cuts

            if parent_critical and own_critical:
                # Fast path (§3.5): both the event's parents and the event
                # itself are critical versions, so the transformed operation
                # is identical to the original (the whole run at once) and the
                # CRDT state is not needed at all.
                stats.events_fast_path += 1
                stats.chars_fast_path += op.length
                if emit_only is None or idx in emit_only:
                    transformed.append(TransformedOp(idx, (op,)))
                doc_length += op.length if op.is_insert else -op.length
                prepare_version = (idx,)
                needs_reset = True
                continue

            if parent_critical:
                # We crossed a critical version: throw the internal state away
                # and restart from a placeholder representing the current
                # document (§3.5 / §3.6).
                state.clear(doc_length)
                stats.state_clears += 1
                prepare_version = (order[pos - 1],) if pos > 0 else base_version
                needs_reset = False
            elif needs_reset:
                # The state became stale during a run of fast-path events.
                state.clear(doc_length)
                stats.state_clears += 1
                needs_reset = False

            # Move the prepare version to the event's parents.  Retreats and
            # advances move whole run events at a time.
            target_version = event.parents
            if prepare_version != target_version:
                only_prepare, only_target = self.causal.diff(prepare_version, target_version)
                for other in reversed(only_prepare):
                    other_op = graph[other].op
                    state.retreat(graph.id_of(other), other_op.is_insert, other_op.length)
                    stats.retreats += 1
                for other in only_target:
                    other_op = graph[other].op
                    state.advance(graph.id_of(other), other_op.is_insert, other_op.length)
                    stats.advances += 1

            # Apply the event.
            if op.is_insert:
                effect_pos = state.apply_insert(event.id, op.pos, op.length)
                out: tuple[Operation, ...] = (insert_op(effect_pos, op.content),)
                doc_length += op.length
            else:
                segments = state.apply_delete(event.id, op.pos, op.length)
                ops: list[Operation] = []
                for segment in segments:
                    if segment.effect_pos is None:
                        continue
                    ops.append(delete_op(segment.effect_pos, segment.length))
                    doc_length -= segment.length
                out = tuple(coalesce_ops(ops))
            if emit_only is None or idx in emit_only:
                transformed.append(TransformedOp(idx, out))
            prepare_version = (idx,)
            records = state.record_count()
            if records > stats.peak_records:
                stats.peak_records = records
            units = state.unit_count()
            if units > stats.peak_record_chars:
                stats.peak_record_chars = units

        stats.spans_merged = state.spans_merged
        stats.final_records = state.record_count()
        self.last_stats = stats
        return ReplayResult(
            transformed=transformed,
            final_length=doc_length,
            stats=stats,
            state=state,
            prepare_version=prepare_version,
        )

    def replay_text(
        self,
        events: Iterable[int] | None = None,
        *,
        base_text: str = "",
        base_version: Version = (),
    ) -> str:
        """Replay events and return the resulting document text.

        Convenience wrapper used by tests, examples and the benchmark
        harness: transformed operations are applied to a simple character
        buffer.  ``base_text`` is the document at ``base_version``.
        """
        result = self.transform(
            events, base_version=base_version, base_doc_length=len(base_text)
        )
        buffer = list(base_text)
        for entry in result.transformed:
            for op in entry.ops:
                if op.is_insert:
                    buffer[op.pos : op.pos] = op.content
                else:
                    del buffer[op.pos : op.pos + op.length]
        return "".join(buffer)

    def text_at_version(self, version: Version) -> str:
        """Reconstruct the document at an arbitrary historical version.

        Replays exactly the events that happened at or before ``version``
        (§2.3: the document at a version is ``replay(Events(V))``).
        """
        subset = self.causal.ancestors(version)
        return self.replay_text(subset)

    # ------------------------------------------------------------------
    def _make_backend(self, placeholder_length: int) -> TreeSequence | ListSequence:
        if self.backend == "tree":
            return TreeSequence(placeholder_length)
        return ListSequence(placeholder_length)
