"""A generic integer range map for run-length encoded id spaces.

Several layers of the pipeline need the same structure: values are registered
under an integer start key, each value covers a contiguous half-open range of
keys (its *length*), and lookups resolve any key to the covering value plus an
offset.  The event graph uses it per agent to map ``seq`` ids to run events;
the internal-state sequence backends use it to map character ids to record
spans and original placeholder offsets to carved records.

Registration is O(log n) via bisect.  Ranges are only ever *refined* —
a split registers the new right half under its own start, the existing entry
simply covers less — never merged or removed (short of :meth:`clear`), so a
lookup is a single bisect plus a containment check against the value's
current length.
"""

from __future__ import annotations

import bisect
from typing import Callable, Generic, TypeVar

__all__ = ["RangeIndex"]

T = TypeVar("T")


class RangeIndex(Generic[T]):
    """Maps integer keys to the value whose registered range covers them."""

    __slots__ = ("_starts", "_values", "_length_of")

    def __init__(self, length_of: Callable[[T], int]) -> None:
        self._starts: list[int] = []
        self._values: dict[int, T] = {}
        #: Current length of a value's range; consulted at lookup time so
        #: splits that shrink a registered value are reflected immediately.
        self._length_of = length_of

    def __len__(self) -> int:
        return len(self._starts)

    def clear(self) -> None:
        self._starts.clear()
        self._values.clear()

    def register(self, start: int, value: T) -> None:
        """Register ``value`` as covering ``start .. start + length_of(value)``."""
        if start in self._values:
            self._values[start] = value
            return
        bisect.insort(self._starts, start)
        self._values[start] = value

    def find(self, key: int) -> tuple[T, int] | None:
        """The (value, offset) whose range contains ``key``, or ``None``."""
        idx = bisect.bisect_right(self._starts, key) - 1
        if idx < 0:
            return None
        start = self._starts[idx]
        value = self._values[start]
        offset = key - start
        if offset < self._length_of(value):
            return value, offset
        return None

    def next_start_in(self, lo: int, hi: int) -> int | None:
        """The smallest registered start in ``[lo, hi)``, or ``None``.

        Used to detect ranges that would envelop an existing entry.
        """
        idx = bisect.bisect_left(self._starts, lo)
        if idx < len(self._starts) and self._starts[idx] < hi:
            return self._starts[idx]
        return None
