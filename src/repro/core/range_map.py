"""Generic integer range structures for run-length encoded id spaces.

Several layers of the pipeline need the same structure: values are registered
under an integer start key, each value covers a contiguous half-open range of
keys (its *length*), and lookups resolve any key to the covering value plus an
offset.  The event graph uses it per agent to map ``seq`` ids to run events;
the internal-state sequence backends use it to map character ids to record
spans and original placeholder offsets to carved records.

Registration is O(log n) via bisect.  Ranges are usually *refined* — a split
registers the new right half under its own start, the existing entry simply
covers less — so a lookup is a single bisect plus a containment check against
the value's current length.  The inverse also exists for the span re-merging
optimisation: :meth:`RangeIndex.remove` drops the entry of a right half that
was coalesced back into its left neighbour (whose grown length then covers
the removed range again).

:class:`SpanSet` is the membership-only sibling: a set of integers kept as
sorted disjoint runs, used by the causal-broadcast layer to track which
character ids have been delivered without O(chars) memory.
"""

from __future__ import annotations

import bisect
from typing import Callable, Generic, TypeVar

__all__ = ["RangeIndex", "SpanSet"]

T = TypeVar("T")


class RangeIndex(Generic[T]):
    """Maps integer keys to the value whose registered range covers them."""

    __slots__ = ("_starts", "_values", "_length_of")

    def __init__(self, length_of: Callable[[T], int]) -> None:
        self._starts: list[int] = []
        self._values: dict[int, T] = {}
        #: Current length of a value's range; consulted at lookup time so
        #: splits that shrink a registered value are reflected immediately.
        self._length_of = length_of

    def __len__(self) -> int:
        return len(self._starts)

    def clear(self) -> None:
        self._starts.clear()
        self._values.clear()

    def register(self, start: int, value: T) -> None:
        """Register ``value`` as covering ``start .. start + length_of(value)``."""
        if start in self._values:
            self._values[start] = value
            return
        bisect.insort(self._starts, start)
        self._values[start] = value

    def find(self, key: int) -> tuple[T, int] | None:
        """The (value, offset) whose range contains ``key``, or ``None``."""
        idx = bisect.bisect_right(self._starts, key) - 1
        if idx < 0:
            return None
        start = self._starts[idx]
        value = self._values[start]
        offset = key - start
        if offset < self._length_of(value):
            return value, offset
        return None

    def next_start_in(self, lo: int, hi: int) -> int | None:
        """The smallest registered start in ``[lo, hi)``, or ``None``.

        Used to detect ranges that would envelop an existing entry.
        """
        idx = bisect.bisect_left(self._starts, lo)
        if idx < len(self._starts) and self._starts[idx] < hi:
            return self._starts[idx]
        return None

    def remove(self, start: int) -> None:
        """Drop the entry registered at exactly ``start`` (if any).

        Used when two adjacent spans are re-merged: the right span's entry is
        removed and lookups in its range fall back to the left span, whose
        grown length covers them again.
        """
        if start not in self._values:
            return
        idx = bisect.bisect_left(self._starts, start)
        self._starts.pop(idx)
        del self._values[start]


class SpanSet:
    """A set of integers stored as sorted, disjoint, half-open runs.

    Memory is O(runs), not O(members); adjacent and overlapping runs merge on
    insertion.  This is what lets the replication layer reason about delivered
    character ids per agent without materialising one entry per character.
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []

    def __len__(self) -> int:
        """Number of stored runs (not members)."""
        return len(self._starts)

    def add(self, start: int, length: int = 1) -> None:
        """Add the run ``start .. start + length`` to the set."""
        if length <= 0:
            return
        end = start + length
        # Runs that touch [start, end) get absorbed: the first candidate is
        # the last run starting at or before `end`, then walk left.
        lo = bisect.bisect_left(self._ends, start)
        hi = bisect.bisect_right(self._starts, end)
        if lo < hi:
            start = min(start, self._starts[lo])
            end = max(end, self._ends[hi - 1])
        self._starts[lo:hi] = [start]
        self._ends[lo:hi] = [end]

    def contains(self, key: int) -> bool:
        idx = bisect.bisect_right(self._starts, key) - 1
        return idx >= 0 and key < self._ends[idx]

    def covers(self, start: int, length: int) -> bool:
        """True iff the whole run ``start .. start + length`` is in the set."""
        idx = bisect.bisect_right(self._starts, start) - 1
        return idx >= 0 and start + length <= self._ends[idx]
