"""Branch-aware topological sorting of event graphs (paper §3.2, §3.7).

Eg-walker replays events in a topologically sorted order.  Any such order
yields the same final document (Appendix C), but the choice of order affects
performance: alternating between concurrent branches forces the walker to
retreat and advance events over and over, whereas visiting each branch as one
consecutive run only pays the retreat/advance cost once per branch.  The
heuristic from the paper is implemented here: do a depth-first style traversal
starting from the oldest events, keep extending the current run for as long as
the next event's only parent is the previously emitted event, and when a
choice must be made prefer the branch with the fewest estimated descendants so
that small branches are emitted (and retired) before large ones.

Three orderings are exposed so the benchmark harness can measure the
sensitivity described in §4.3 (ablation X1 in DESIGN.md):

* :func:`sort_branch_aware` — the heuristic order used by the real algorithm.
* :func:`sort_local_order` — the replica's own append order (already
  topological, no heuristics).
* :func:`sort_interleaved` — a deliberately poor order that alternates between
  ready branches, used to demonstrate the pathological slowdown.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from .event_graph import EventGraph

__all__ = [
    "sort_branch_aware",
    "sort_local_order",
    "sort_interleaved",
    "estimate_descendants",
    "is_topological_order",
]


def _restricted_children(
    graph: EventGraph, events: Sequence[int], event_set: set[int]
) -> dict[int, list[int]]:
    """Children restricted to the event subset being sorted."""
    children: dict[int, list[int]] = {idx: [] for idx in events}
    for idx in events:
        for child in graph.children_of(idx):
            if child in event_set:
                children[idx].append(child)
    return children


def _restricted_parent_counts(
    graph: EventGraph, events: Sequence[int], event_set: set[int]
) -> dict[int, int]:
    """Number of parents each event has *within* the subset being sorted."""
    counts: dict[int, int] = {}
    for idx in events:
        counts[idx] = sum(1 for p in graph.parents_of(idx) if p in event_set)
    return counts


def estimate_descendants(graph: EventGraph, events: Sequence[int]) -> dict[int, int]:
    """Estimate, for each event, how many events happened after it.

    The paper's heuristic orders sibling branches by the number of events that
    happened after each branch head.  Computing exact descendant counts is
    quadratic, so — like the reference implementation — we use an estimate:
    processing events in reverse topological order, each event's estimate is
    one plus the sum of its children's estimates.  Shared descendants are
    counted multiple times, which is fine for a tie-breaking heuristic.
    """
    event_set = set(events)
    children = _restricted_children(graph, events, event_set)
    estimates: dict[int, int] = {}
    for idx in sorted(events, reverse=True):
        total = 1
        for child in children[idx]:
            total += estimates.get(child, 1)
        estimates[idx] = total
    return estimates


def sort_local_order(graph: EventGraph, events: Iterable[int]) -> list[int]:
    """Sort events by their local index (always a valid topological order)."""
    return sorted(events)


def sort_branch_aware(graph: EventGraph, events: Iterable[int]) -> list[int]:
    """The paper's branch-aware topological sort.

    Produces an order in which events on the same branch are consecutive as
    much as possible, and when several branches are ready the one with the
    smallest estimated size is emitted first.
    """
    events = sorted(events)
    if not events:
        return []
    event_set = set(events)
    children = _restricted_children(graph, events, event_set)
    pending_parents = _restricted_parent_counts(graph, events, event_set)
    estimates = estimate_descendants(graph, events)

    # Ready events, keyed by (estimated branch size, local index) so that
    # heapq pops small branches first and breaks ties deterministically.
    ready: list[tuple[int, int]] = []
    for idx in events:
        if pending_parents[idx] == 0:
            heapq.heappush(ready, (estimates[idx], idx))

    order: list[int] = []
    emitted: set[int] = set()
    last: int | None = None
    while ready or last is not None:
        chosen: int | None = None
        # Prefer to continue the current linear run: if the previously emitted
        # event has a ready child whose only in-subset parent is that event,
        # take it without consulting the heap.  This keeps branches contiguous
        # even when the heap holds other ready events.
        if last is not None:
            for child in children[last]:
                if child not in emitted and pending_parents[child] == 0:
                    parents_in_set = [
                        p for p in graph.parents_of(child) if p in event_set
                    ]
                    if parents_in_set == [last]:
                        chosen = child
                        break
        if chosen is None:
            while ready:
                _, idx = heapq.heappop(ready)
                if idx not in emitted and pending_parents[idx] == 0:
                    chosen = idx
                    break
            if chosen is None:
                break
        order.append(chosen)
        emitted.add(chosen)
        last = chosen
        for child in children[chosen]:
            pending_parents[child] -= 1
            if pending_parents[child] == 0 and child != chosen:
                heapq.heappush(ready, (estimates[child], child))
    if len(order) != len(events):  # pragma: no cover - defensive
        raise RuntimeError("topological sort failed to cover all events")
    return order


def sort_interleaved(graph: EventGraph, events: Iterable[int]) -> list[int]:
    """A valid but deliberately branch-alternating topological order.

    Used by the ablation benchmark to demonstrate how a poorly chosen
    traversal order slows down highly concurrent traces (§4.3).  Ready events
    are emitted round-robin across branches (FIFO per branch head), which
    maximises the number of prepare-version switches.
    """
    events = sorted(events)
    if not events:
        return []
    event_set = set(events)
    children = _restricted_children(graph, events, event_set)
    pending_parents = _restricted_parent_counts(graph, events, event_set)

    from collections import deque

    ready: deque[int] = deque(idx for idx in events if pending_parents[idx] == 0)
    order: list[int] = []
    while ready:
        idx = ready.popleft()
        order.append(idx)
        for child in children[idx]:
            pending_parents[child] -= 1
            if pending_parents[child] == 0:
                # Appending to the right while popping from the left makes the
                # traversal breadth-first, i.e. it alternates between branches.
                ready.append(child)
    if len(order) != len(events):  # pragma: no cover - defensive
        raise RuntimeError("topological sort failed to cover all events")
    return order


def is_topological_order(graph: EventGraph, order: Sequence[int]) -> bool:
    """Check that ``order`` respects the happened-before relation."""
    position = {idx: i for i, idx in enumerate(order)}
    member = set(order)
    for idx in order:
        for p in graph.parents_of(idx):
            if p in member and position[p] >= position[idx]:
                return False
    return True
