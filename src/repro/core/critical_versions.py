"""Critical version detection (paper §3.5).

A version ``V`` is *critical* in an event graph ``G`` iff it partitions the
graph into ``G1 = Events(V)`` and ``G2 = G - G1`` such that every event in
``G1`` happened before every event in ``G2``.  Critical versions are the key
to Eg-walker's performance on mostly-sequential histories: whenever the walker
crosses one it can throw away its internal CRDT state, and when an event's own
version *and* its parent version are both critical the event needs no
transformation at all.

This module computes, for a given topologically sorted sequence of events, the
set of positions after which the prefix's version is critical (with respect to
that event subset).  The characterisation used is proved in the docstring of
:func:`critical_cut_positions`; it allows all cuts to be found in a single
linear pass instead of the quadratic ancestor-set comparison implied by the
definition.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from .event_graph import Event, EventGraph

__all__ = [
    "critical_cut_positions",
    "is_critical_version",
    "latest_critical_cut_before",
    "CriticalCutTracker",
]


def critical_cut_positions(graph: EventGraph, order: Sequence[int]) -> set[int]:
    """Positions ``i`` such that the cut after ``order[i]`` is critical.

    The cut after position ``i`` splits ``order`` into a prefix
    ``P = order[:i+1]`` and suffix ``S = order[i+1:]``.  It is critical iff
    every prefix event happened before every suffix event.  Two linear-time
    checks are equivalent to that definition:

    1. The frontier of the prefix is the singleton ``{order[i]}``.  (Every
       other prefix event has a child inside the prefix; following children
       must terminate at the frontier, so every prefix event is an ancestor of
       ``order[i]``.)
    2. No suffix event has a parent at a position earlier than ``i``, and
       every suffix event has at least one parent inside the sorted subset.
       (By induction along the suffix this makes ``order[i]`` an ancestor of
       every suffix event, and combined with (1) makes every prefix event an
       ancestor of every suffix event.)

    Only events inside ``order`` are considered; parents outside the subset
    are ignored, which is what partial replay needs (§3.6): criticality there
    is relative to the replayed range.

    Note that this detects critical versions consisting of a *single* event.
    The paper's definition also admits multi-event critical versions (several
    mutually concurrent frontier heads that everything later depends on); they
    are rare in practice and skipping them only forgoes an optimisation
    opportunity, never correctness.
    """
    n = len(order)
    if n == 0:
        return set()
    position = {idx: i for i, idx in enumerate(order)}
    member = set(order)

    # min_parent_pos[i]: smallest position (within the order) of any in-subset
    # parent of order[i]; n if it has none.
    min_parent_pos = [n] * n
    has_in_subset_parent = [False] * n
    for i, idx in enumerate(order):
        for p in graph.parents_of(idx):
            if p in member:
                has_in_subset_parent[i] = True
                pp = position[p]
                if pp < min_parent_pos[i]:
                    min_parent_pos[i] = pp

    # suffix_ok[i] is True iff condition (2) holds for the cut after i:
    # every event at position j > i has an in-subset parent and none of its
    # parents sit before position i.
    suffix_ok = [False] * n
    ok = True
    min_seen = n
    for i in range(n - 1, -1, -1):
        suffix_ok[i] = ok and min_seen >= i
        # Fold position i into the suffix summary for the next (smaller) cut.
        if not has_in_subset_parent[i] and i != 0:
            ok = False
        if min_parent_pos[i] < min_seen:
            min_seen = min_parent_pos[i]
    # The cut after the final event is always "critical" in the sense that the
    # suffix is empty; suffix_ok[n-1] computed above already reflects that
    # because ok/min_seen start permissive.

    # Condition (1): track the running frontier size of the prefix.  An event
    # leaves the frontier when its first in-prefix child is emitted.
    result: set[int] = set()
    frontier_size = 0
    in_frontier = [False] * n
    for i in range(n):
        # Remove parents of order[i] from the frontier (first child seen).
        for p in graph.parents_of(order[i]):
            if p in member:
                pp = position[p]
                if in_frontier[pp]:
                    in_frontier[pp] = False
                    frontier_size -= 1
        in_frontier[i] = True
        frontier_size += 1
        if frontier_size == 1 and suffix_ok[i]:
            result.add(i)
    return result


def is_critical_version(graph: EventGraph, order: Sequence[int], position: int) -> bool:
    """Convenience wrapper: is the cut after ``order[position]`` critical?"""
    return position in critical_cut_positions(graph, order)


def latest_critical_cut_before(
    graph: EventGraph, order: Sequence[int], position: int
) -> int | None:
    """The largest critical cut position strictly smaller than ``position``.

    Returns ``None`` if there is no such cut, in which case a partial replay
    must start from the root (the empty version).
    """
    cuts = critical_cut_positions(graph, order)
    candidates = [c for c in cuts if c < position]
    return max(candidates) if candidates else None


class CriticalCutTracker:
    """Incrementally tracked critical cuts of a graph's *local order*.

    :func:`critical_cut_positions` answers the question for an arbitrary
    order with a linear pass; a live replica asks it about the same,
    append-only local order after every single merge, which turns O(n) per
    query into O(n²) per session.  This tracker maintains the exact same set
    with O(1) amortized work per appended event, by exploiting how the set
    evolves under the three mutations an :class:`EventGraph` performs:

    * **append** of an event ``n`` with parents ``P``:

      - every existing cut at a position ``> min(P)`` dies (the new event's
        earliest parent reaches behind it, violating condition (2) of
        :func:`critical_cut_positions`); if ``P`` is empty and ``n > 0``,
        *every* cut dies (the new root is concurrent with all of history).
        Cuts at positions ``<= min(P)`` are untouched: their prefix is
        unchanged and the new suffix member satisfies both suffix conditions.
      - a new cut appears at ``n`` iff the graph frontier is now the
        singleton ``{n}`` (condition (1); the suffix is empty).  No other
        position can *become* critical: prefixes never change, and suffixes
        only grow.

      Each cut is appended at most once and removed at most once, hence O(1)
      amortized (the removals are a tail truncation of a sorted list).

    * **split** of the run at ``index`` (interop re-carving, a semantic
      no-op): a cut after the whole run becomes a cut after the *right half*
      and gains a twin after the left half — the cut after the left half is
      critical exactly iff the cut after the whole run was, because the left
      half keeps the run's parents and every other reference to the run moves
      to the right half.  Cuts elsewhere are untouched.

    * **in-place extension** of the frontier run (sender-side coalescing):
      no event set changes, so the cut set is untouched.

    Cuts are stored as **stable event handles** (:meth:`EventGraph.handle_at`),
    not positions: "the cut after event X" survives any number of splits
    elsewhere in the order without bookkeeping, so :meth:`event_split` is
    O(log cuts) — one membership probe and at most one twin insertion —
    instead of the O(cuts) shift-everything loop a position-keyed list needs
    (which made a single interop split O(n) on a mostly-sequential history,
    where nearly every position is a cut).  The handle list stays sorted by
    *current* position because order labels are comparison-stable
    (:meth:`EventGraph.order_key`); the external API still speaks positions.

    The tracker registers itself as a listener on the graph
    (:meth:`EventGraph.add_listener`) and must be attached while the graph is
    empty, or be explicitly :meth:`rebuild` from the current state.
    """

    def __init__(self, graph: EventGraph, *, attach: bool = True) -> None:
        self.graph = graph
        #: Event handles whose prefix version is critical ("the cut after
        #: event X"), kept sorted by current local position (equivalently, by
        #: live order label).
        self._cuts: list[int] = []
        if len(graph) > 0:
            self.rebuild()
        if attach:
            graph.add_listener(self)

    def _bisect_position(self, position: int) -> int:
        """Index into ``_cuts`` of the first cut at a position ``>= position``."""
        graph = self.graph
        if position >= len(graph):
            return len(self._cuts)
        return bisect.bisect_left(
            self._cuts, graph.order_key(graph.handle_at(position)), key=graph.order_key
        )

    # -- listener hooks -------------------------------------------------
    def event_added(self, event: Event) -> None:
        graph = self.graph
        parents = event.parents
        if not parents:
            if event.index > 0:
                self._cuts.clear()
        else:
            # Cuts strictly after the event's earliest parent die.
            keep = self._bisect_position(parents[0] + 1)
            del self._cuts[keep:]
        if graph.frontier_handles == (event.handle,):
            self._cuts.append(event.handle)

    def event_split(self, index: int) -> None:
        # The left half keeps the split run's handle; if "after the whole
        # run" was a cut, that stored handle now means "after the left half"
        # (still critical) and the right half becomes a cut too.  Nothing
        # else moves: every other cut is keyed by an untouched handle.
        left = self.graph.handle_at(index)
        pos = bisect.bisect_left(
            self._cuts, self.graph.order_key(left), key=self.graph.order_key
        )
        if pos < len(self._cuts) and self._cuts[pos] == left:
            self._cuts.insert(pos + 1, self.graph.handle_at(index + 1))

    def event_extended(self, index: int, added_length: int) -> None:
        return None  # run lengths do not affect criticality

    # -- queries --------------------------------------------------------
    def cuts(self) -> list[int]:
        """The current critical cut positions, ascending (a copy)."""
        return [self.graph.index_of_handle(h) for h in self._cuts]

    def latest_cut(self) -> int | None:
        return self.graph.index_of_handle(self._cuts[-1]) if self._cuts else None

    def latest_cut_before(self, position: int) -> int | None:
        """O(log n) equivalent of :func:`latest_critical_cut_before` on the
        local order."""
        idx = self._bisect_position(position)
        return self.graph.index_of_handle(self._cuts[idx - 1]) if idx > 0 else None

    def is_cut(self, position: int) -> bool:
        idx = self._bisect_position(position)
        return idx < len(self._cuts) and self._cuts[idx] == self.graph.handle_at(
            position
        )

    def all_cuts_from(self, position: int) -> bool:
        """Are *all* positions ``position .. len(graph) - 1`` critical?

        This is the sequential fast-path test: when it holds for the position
        just before a batch of new events, every new event's parent version
        and own version are critical, so the events apply verbatim.  O(1)
        (cut positions are strictly increasing, so matching endpoints force
        the in-betweens).
        """
        graph = self.graph
        n = len(graph)
        count = n - position
        if count <= 0:
            return True
        if len(self._cuts) < count:
            return False
        return (
            self._cuts[-count] == graph.handle_at(position)
            and self._cuts[-1] == graph.handle_at(n - 1)
        )

    def critical_run_end(self, position: int) -> int:
        """The end of the consecutive run of critical cuts starting at
        ``position``: the largest ``m`` such that every position
        ``position .. m`` is a cut, or ``position - 1`` if ``position``
        itself is not one.

        This is the *prefix* variant of :meth:`all_cuts_from`, used by the
        merge engine to peel the sequential prefix off a mixed batch (batched
        delivery can hand it sequential events followed by a concurrent
        tail): events up to ``m`` apply verbatim, only the tail needs the
        walker.  O(log cuts + run length).
        """
        graph = self.graph
        n = len(graph)
        idx = self._bisect_position(position)
        end = position - 1
        while (
            idx < len(self._cuts)
            and end + 1 < n
            and self._cuts[idx] == graph.handle_at(end + 1)
        ):
            end += 1
            idx += 1
        return end

    def rebuild(self) -> None:
        """Recompute from scratch (O(n); only used when attaching late)."""
        graph = self.graph
        order = range(len(graph))
        self._cuts = [
            graph.handle_at(p)
            for p in sorted(critical_cut_positions(graph, order))
        ]
