"""Ancestry queries over an event graph (paper §2.2–2.3, §3.2).

This module implements the happened-before machinery Eg-walker relies on:

* :func:`CausalGraph.diff` — given two versions, compute which events are
  reachable from only one of them.  This drives the retreat/advance logic when
  the walker moves its prepare version (§3.2, last paragraph).
* :func:`CausalGraph.version_contains` — does a version's transitive closure
  include a given event?
* :func:`CausalGraph.ancestors` / :func:`CausalGraph.events_of_version` — the
  ``Events(V)`` operator of §2.3.
* :func:`CausalGraph.compare_versions` and friends — partial-order tests.

All functions operate on local event indices.  Because the local event list is
a topological order, a max-heap keyed on the index walks the graph backwards
in causal order, which is what makes ``diff`` efficient: it visits only the
events between the two versions and their nearest common ancestors, not the
whole history.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from .event_graph import EventGraph, Version

__all__ = ["CausalGraph", "DiffResult"]

# Flags used in the diff and meet traversals.
_FLAG_A = 1
_FLAG_B = 2
_FLAG_SHARED = 3
# Meet traversal only: reached as a strict ancestor of an emitted meet member,
# so it is in the shared set but cannot be maximal in it.
_FLAG_DOMINATED = 4


class DiffResult(tuple):
    """Result of :meth:`CausalGraph.diff`: ``(only_a, only_b)``.

    ``only_a`` are the events reachable from version ``a`` but not ``b``;
    ``only_b`` vice versa.  Both lists are sorted in ascending local order.
    """

    __slots__ = ()

    def __new__(cls, only_a: list[int], only_b: list[int]) -> "DiffResult":
        return super().__new__(cls, (only_a, only_b))

    @property
    def only_a(self) -> list[int]:
        return self[0]

    @property
    def only_b(self) -> list[int]:
        return self[1]


class CausalGraph:
    """Read-only ancestry queries over an :class:`EventGraph`."""

    def __init__(self, graph: EventGraph) -> None:
        self._graph = graph

    @property
    def graph(self) -> EventGraph:
        return self._graph

    # ------------------------------------------------------------------
    # Transitive closure helpers
    # ------------------------------------------------------------------
    def ancestors(self, version: Version) -> set[int]:
        """All events that happened before (or are in) ``version``.

        This materialises the full ancestor set and therefore costs O(n); it
        is used by tests, trace statistics and the simple walker, while the
        performance-sensitive paths use :meth:`diff` instead.
        """
        graph = self._graph
        seen: set[int] = set()
        stack = list(version)
        while stack:
            idx = stack.pop()
            if idx in seen:
                continue
            seen.add(idx)
            stack.extend(graph.parents_of(idx))
        return seen

    def events_of_version(self, version: Version) -> set[int]:
        """The ``Events(V)`` operator of §2.3 (alias of :meth:`ancestors`)."""
        return self.ancestors(version)

    def version_contains(self, version: Version, target: int) -> bool:
        """Is ``target`` in the transitive closure of ``version``?

        Walks backwards from ``version`` with a max-heap and stops as soon as
        the walk drops below ``target``, so the cost is proportional to the
        number of events between ``target`` and ``version``.
        """
        if not version:
            return False
        if target in version:
            return True
        graph = self._graph
        heap = [-v for v in version if v > target]
        if not heap:
            return False
        heapq.heapify(heap)
        visited: set[int] = set()
        while heap:
            idx = -heapq.heappop(heap)
            if idx in visited:
                continue
            visited.add(idx)
            for p in graph.parents_of(idx):
                if p == target:
                    return True
                if p > target and p not in visited:
                    heapq.heappush(heap, -p)
        return False

    def happened_before(self, a: int, b: int) -> bool:
        """True iff event ``a`` happened before event ``b`` (a -> b)."""
        if a >= b:
            return False
        return self.version_contains(self._graph.parents_of(b), a) or a in self._graph.parents_of(b)

    def concurrent(self, a: int, b: int) -> bool:
        """True iff events ``a`` and ``b`` are concurrent (a ∥ b)."""
        if a == b:
            return False
        return not self.happened_before(a, b) and not self.happened_before(b, a)

    # ------------------------------------------------------------------
    # Version algebra
    # ------------------------------------------------------------------
    def frontier_of(self, events: Iterable[int]) -> Version:
        """Reduce a set of events to its frontier (remove dominated members).

        The result contains exactly the events of ``events`` that are not an
        ancestor of any other member, i.e. ``Version(Events)`` of §2.3 when
        ``events`` is transitively closed, and more generally the dominators
        of the given set.
        """
        items = sorted(set(events))
        result: list[int] = []
        for idx in items:
            dominated = False
            for other in items:
                if other > idx and self.version_contains(self._graph.parents_of(other), idx):
                    dominated = True
                    break
                if other > idx and idx in self._graph.parents_of(other):
                    dominated = True
                    break
            if not dominated:
                result.append(idx)
        return tuple(result)

    def advance_version(self, version: Version, new_event: int) -> Version:
        """The frontier after adding ``new_event`` whose parents are known.

        Assumes (as in the walker) that ``new_event``'s parents are all
        contained in ``version``.
        """
        parents = set(self._graph.parents_of(new_event))
        kept = [v for v in version if v not in parents]
        kept.append(new_event)
        return tuple(sorted(kept))

    def merge_versions(self, a: Version, b: Version) -> Version:
        """The version representing the union of two sets of events.

        This is the *join* (least upper bound) of the causal partial order:
        ``Events(result) = Events(a) ∪ Events(b)``.  Cost is the frontier
        reduction over the combined heads (cheap: versions are short).
        """
        return self.frontier_of(set(a) | set(b))

    def meet_versions(self, a: Version, b: Version) -> Version:
        """The *meet* (greatest lower bound): the most recent common ancestor.

        ``Events(result) = Events(a) ∩ Events(b)``.  Implemented as the same
        backwards max-heap walk as :meth:`diff`, with one extra flag: events
        are tagged with the side(s) that reached them, an event first reached
        from *both* sides pops as ``SHARED``, and the parents of emitted
        events propagate ``DOMINATED`` (in the shared set, but with a shared
        descendant — never maximal).  Popping in descending topological order
        guarantees every path from an emitted member down to one of its
        ancestors is traversed before that ancestor pops, so an event still
        tagged ``SHARED`` at pop time is exactly a maximal member of the
        intersection.  The walk stops once only ``DOMINATED`` entries remain:
        cost is proportional to the distance between the two versions and
        their common frontier, not to history size (the old implementation
        materialised both full ancestor sets, O(n) per call — this is what
        made ``History.meet`` O(history) even for adjacent versions).
        """
        if not a or not b:
            return ()
        graph = self._graph
        flags: dict[int, int] = {}
        heap: list[int] = []
        # Entries that could still produce (or become) meet members: A, B and
        # SHARED.  DOMINATED entries only exist to keep tainting ancestors.
        num_live = 0

        def push(idx: int, flag: int) -> None:
            nonlocal num_live
            old = flags.get(idx)
            if old is None:
                flags[idx] = flag
                heapq.heappush(heap, -idx)
                if flag != _FLAG_DOMINATED:
                    num_live += 1
            elif old == _FLAG_DOMINATED or old == flag:
                pass
            elif flag == _FLAG_DOMINATED:
                flags[idx] = _FLAG_DOMINATED
                num_live -= 1
            else:
                # A meets B (either directly or via an existing SHARED tag).
                flags[idx] = _FLAG_SHARED

        for idx in a:
            push(idx, _FLAG_A)
        for idx in b:
            push(idx, _FLAG_B)

        meet: list[int] = []
        while num_live > 0 and heap:
            idx = -heapq.heappop(heap)
            flag = flags.pop(idx)
            if flag != _FLAG_DOMINATED:
                num_live -= 1
            if flag == _FLAG_SHARED:
                meet.append(idx)
                flag = _FLAG_DOMINATED  # ancestors of a member are dominated
            for p in graph.parents_of(idx):
                push(p, flag)
        meet.reverse()
        return tuple(meet)

    def versions_equal(self, a: Version, b: Version) -> bool:
        return tuple(sorted(a)) == tuple(sorted(b))

    def compare_versions(self, a: Version, b: Version) -> str:
        """Partial-order comparison of two versions.

        Returns one of ``"equal"``, ``"before"`` (a ⊂ b), ``"after"`` (a ⊃ b)
        or ``"concurrent"``.
        """
        if self.versions_equal(a, b):
            return "equal"
        only_a, only_b = self.diff(a, b)
        if not only_a and only_b:
            return "before"
        if only_a and not only_b:
            return "after"
        return "concurrent"

    # ------------------------------------------------------------------
    # The diff traversal (§3.2)
    # ------------------------------------------------------------------
    def diff(self, a: Version, b: Version) -> DiffResult:
        """Events reachable from only ``a`` and only ``b``.

        Implements the priority-queue walk described at the end of §3.2: both
        versions' events are pushed onto a max-heap tagged with which side
        they came from; entries are popped in descending index order, their
        parents enqueued with the same tag, and the walk stops once every
        remaining entry is a common ancestor of both versions.

        Two O(1) fast paths cover the stepping pattern the live merge engine
        produces on nearly every event (prepare version moves from one event
        to an adjacent one): equal versions, and a single-head version whose
        parents are exactly the other version — no heap, no allocation.
        """
        graph = self._graph
        if a == b:
            return DiffResult([], [])
        if len(b) == 1 and a == graph.parents_of(b[0]):
            return DiffResult([], [b[0]])
        if len(a) == 1 and b == graph.parents_of(a[0]):
            return DiffResult([a[0]], [])
        flags: dict[int, int] = {}
        heap: list[int] = []
        num_not_shared = 0

        def push(idx: int, flag: int) -> None:
            nonlocal num_not_shared
            old = flags.get(idx)
            if old is None:
                flags[idx] = flag
                heapq.heappush(heap, -idx)
                if flag != _FLAG_SHARED:
                    num_not_shared += 1
            elif old != flag and old != _FLAG_SHARED:
                flags[idx] = _FLAG_SHARED
                num_not_shared -= 1

        for idx in a:
            push(idx, _FLAG_A)
        for idx in b:
            push(idx, _FLAG_B)

        only_a: list[int] = []
        only_b: list[int] = []
        while num_not_shared > 0 and heap:
            idx = -heapq.heappop(heap)
            flag = flags.pop(idx)
            if flag != _FLAG_SHARED:
                num_not_shared -= 1
            if flag == _FLAG_A:
                only_a.append(idx)
            elif flag == _FLAG_B:
                only_b.append(idx)
            for p in graph.parents_of(idx):
                push(p, flag)
        only_a.reverse()
        only_b.reverse()
        return DiffResult(only_a, only_b)

    # ------------------------------------------------------------------
    # Conflict ranges (used for partial replay, §3.6)
    # ------------------------------------------------------------------
    def events_between(self, from_version: Version, to_version: Version) -> list[int]:
        """All events in ``Events(to) - Events(from)``, ascending.

        ``from_version`` must be dominated by ``to_version`` for the result to
        be meaningful (this holds everywhere we use it); events reachable only
        from ``from_version`` are ignored.
        """
        _, only_to = self.diff(from_version, to_version)
        return only_to
