"""Eg-walker's transient internal CRDT state (paper §3.3–3.4, §3.6).

The :class:`InternalState` holds the sequence of record runs the walker uses
to transform operations, together with the map from event ids to records (the
paper's second B-tree, maintained by the sequence backend as an id range
index).  It exposes exactly the three methods of §3.2 — ``apply``, ``retreat``
and ``advance`` (here split into insert/delete flavours of apply) — plus
``clear`` for the state-clearing optimisation of §3.5.

All methods are **run-native**: one call applies/retreats/advances a whole run
event, touching O(spans) items instead of O(chars).  Record runs are split
lazily, only when concurrency forces two parts of a run into different states
(a delete covering part of a run, an insert landing between two characters of
a run, or a run straddling a placeholder/record boundary).

Splits are also **undone**: whenever a state change leaves two adjacent spans
id-contiguous and state-identical (typically after a retreat or advance
resolves the concurrency that forced the split, or when a graph-level split
run is replayed piecewise), the spans are re-merged
(:meth:`CrdtRecord.can_merge_with` guarantees the merge is the exact inverse
of a split, so it is lossless).  Long sessions therefore shrink back toward
O(runs) spans once concurrency resolves instead of accumulating fragments
forever; ``spans_merged`` counts the coalesces for
:class:`~repro.core.walker.WalkerStats`.

Concurrent insertions at the same position are ordered with a YATA-style
integration rule (the "YjsMod" variant used by the paper's reference
implementation): each record stores id-based references to the character to
its left and the next character that existed in its prepare version at
insertion time (its *origins*), and a small scan over the other concurrent
records placed at the same gap decides a consistent total order regardless of
the order in which the events are replayed.

The sequence itself is provided by a pluggable backend (list or
order-statistic tree, see :mod:`repro.core.sequence`), so this module contains
only algorithmic logic and no data-structure code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from .ids import EventId
from .records import (
    INSERTED,
    NOT_YET_INSERTED,
    CrdtRecord,
    Item,
    OriginRef,
    PlaceholderPiece,
)
from .sequence import (
    SYNTHETIC_AGENT,
    Cursor,
    ListSequence,
    SequenceBackend,
    carved_record_id,
)

__all__ = ["InternalState", "DeleteSegment"]


@dataclass(slots=True)
class DeleteSegment:
    """One contiguous part of a delete run's outcome.

    Attributes:
        target: id of the first deleted character (the record character the
            segment starts at; synthetic for placeholder carves).
        length: number of characters this segment covers.
        effect_pos: transformed index to delete ``length`` characters from in
            the effect version — valid when the preceding segments of the same
            event have already been applied — or ``None`` if these characters
            were already deleted in the effect version (a no-op segment).
    """

    target: EventId
    length: int
    effect_pos: int | None


class InternalState:
    """The walker's transient CRDT state over a pluggable sequence backend.

    Args:
        backend: the item sequence (list or order-statistic tree).
        merge_spans: re-merge adjacent same-state spans after state changes
            (the inverse of lazy splitting).  On by default; the CRDT
            converters disable it because they read each event's record (with
            its own origins) straight after applying it.
    """

    def __init__(
        self, backend: SequenceBackend | None = None, *, merge_spans: bool = True
    ) -> None:
        self.sequence: SequenceBackend = backend if backend is not None else ListSequence()
        self.merge_spans = merge_spans
        #: Number of span coalesces performed (cumulative across clears).
        self.spans_merged = 0
        #: For every applied delete event, the id spans of the characters it
        #: deleted.  Spans are resolved through the sequence's id range index
        #: on retreat/advance, so they stay correct when records split later.
        self._delete_targets: dict[EventId, list[tuple[EventId, int]]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def clear(self, document_length: int) -> None:
        """Discard all records and restart from a placeholder (§3.5–3.6).

        ``document_length`` is the length of the document at the version the
        state now represents.  An upper bound is acceptable: the spare
        placeholder units sit at the end of the sequence where no valid event
        can address them, so they never affect transformed indexes.
        """
        self.sequence.clear(document_length)
        self._delete_targets.clear()

    # ------------------------------------------------------------------
    # apply
    # ------------------------------------------------------------------
    def apply_insert(self, event_id: EventId, pos: int, length: int = 1) -> int:
        """Apply an insert run at prepare-version index ``pos``.

        The whole run becomes a single record (its characters are adjacent by
        construction — nothing can sit between characters typed in one run).
        Returns the transformed (effect-version) index at which the run must
        be inserted into the document.
        """
        cursor = self.sequence.find_insert_cursor(pos)
        origin_left = self.sequence.origin_left_of_cursor(cursor)
        origin_right = self.sequence.next_existing_in_prepare(cursor)
        record = CrdtRecord(
            id=event_id,
            length=length,
            origin_left=origin_left,
            origin_right=origin_right,
            prepare_state=INSERTED,
            ever_deleted=False,
        )
        self._integrate(cursor, record, origin_left, origin_right)
        effect_pos = self.sequence.effect_position_of_item(record)
        # A graph-level split run replayed piecewise coalesces back into one
        # record here: the new piece's left origin is the previous piece's
        # last character, which is exactly the merge condition.
        self._coalesce_record(record)
        return effect_pos

    def apply_delete(self, event_id: EventId, pos: int, length: int = 1) -> list[DeleteSegment]:
        """Apply a delete run of ``length`` characters at prepare index ``pos``.

        The run is carved into segments along the item boundaries it crosses
        (records with different states, placeholder pieces).  Every character
        of the run sits at the *same* prepare index once its predecessors are
        deleted, so the loop repeatedly resolves ``pos``.

        Returns the segments in application order; their ``effect_pos`` values
        assume the preceding segments have been applied to the document.
        """
        segments: list[DeleteSegment] = []
        targets: list[tuple[EventId, int]] = []
        remaining = length
        while remaining > 0:
            item, offset = self.sequence.find_visible_unit(pos)
            if isinstance(item, PlaceholderPiece):
                # The deleted characters were inserted before the replay's
                # base version; carve a record run out of the placeholder
                # (§3.6), clipped to this piece's end.
                take = min(remaining, item.length - offset)
                effect_pos = self.sequence.effect_position_of_item(item, offset)
                record = CrdtRecord(
                    # Deterministic ph_base-keyed id: adjacent carves (even by
                    # separate deletes) get contiguous id spans, so they can
                    # re-merge below like ordinary split records.
                    id=carved_record_id(item.base + offset),
                    length=take,
                    prepare_state=INSERTED + 1,  # Del 1
                    ever_deleted=True,
                    ph_base=item.base + offset,
                )
                self.sequence.convert_placeholder_run(item, offset, record)
                segments.append(DeleteSegment(record.id, take, effect_pos))
                targets.append((record.id, take))
                remaining -= take
                continue

            record = item
            if record.prepare_state != INSERTED:  # pragma: no cover - defensive
                raise RuntimeError(
                    "delete targets a character that is not visible in the "
                    "prepare version; the event graph is invalid"
                )
            if offset > 0:
                record = self.sequence.split_record(record, offset)
            if record.length > remaining:
                self.sequence.split_record(record, remaining)
            take = record.length
            was_effect_visible = not record.ever_deleted
            effect_pos = (
                self.sequence.effect_position_of_item(record) if was_effect_visible else None
            )
            record.prepare_state += 1
            d_effect = 0
            if was_effect_visible:
                record.ever_deleted = True
                d_effect = -take
            self.sequence.update_item_counts(record, -take, d_effect)
            segments.append(DeleteSegment(record.id, take, effect_pos))
            targets.append((record.id, take))
            remaining -= take
        self._delete_targets[event_id] = targets
        for target_id, target_len in targets:
            self._coalesce_span(target_id, target_len)
        return segments

    def extend_delete(self, event_id: EventId, pos: int, length: int = 1) -> list[DeleteSegment]:
        """Fold ``length`` more characters into an already-applied delete run.

        Sender-side coalescing (:meth:`EventGraph.extend_event`) grows a
        delete run in place; a resident walker state that already applied the
        run folds the continuation in here instead of being discarded.  The
        continuation deletes at the *same* prepare position (each character
        lands on the run's index once its predecessors are gone), and its
        target spans are appended to the event's existing target list — the
        result is indistinguishable from the run having been applied at full
        length.
        """
        existing = self._delete_targets.pop(event_id)
        segments = self.apply_delete(event_id, pos, length)
        self._delete_targets[event_id] = existing + self._delete_targets[event_id]
        return segments

    def split_delete_targets(self, event_id: EventId, offset: int) -> None:
        """Re-key an applied delete run's targets after a graph-level split.

        When the event graph splits the delete run ``event_id`` before its
        ``offset``-th character (interop re-carving), future retreats and
        advances address the two halves as separate events ``event_id`` and
        ``event_id.advance(offset)``.  The stored target spans map one-to-one,
        in order, onto the run's characters, so the list is cut at the
        cumulative length ``offset`` (splitting a span if the boundary lands
        inside it — target ids are contiguous within a span, for carved
        records too) and re-keyed under both halves.  Record state is
        untouched: records are keyed by character ids, which a graph split
        does not change.
        """
        targets = self._delete_targets.pop(event_id)
        left: list[tuple[EventId, int]] = []
        right: list[tuple[EventId, int]] = []
        consumed = 0
        for target_id, target_len in targets:
            if consumed >= offset:
                right.append((target_id, target_len))
            elif consumed + target_len <= offset:
                left.append((target_id, target_len))
            else:
                take = offset - consumed
                left.append((target_id, take))
                right.append((target_id.advance(take), target_len - take))
            consumed += target_len
        self._delete_targets[event_id] = left
        self._delete_targets[event_id.advance(offset)] = right

    # ------------------------------------------------------------------
    # retreat / advance
    # ------------------------------------------------------------------
    def retreat(self, event_id: EventId, is_insert: bool, length: int = 1) -> None:
        """Remove a whole run event from the prepare version (§3.2)."""
        if is_insert:
            # No coalescing here: the records become NotInsertedYet, which is
            # the one state the merge rule excludes (integration scans them).
            for record in self._aligned_spans(event_id, length):
                if record.prepare_state != INSERTED:  # pragma: no cover - defensive
                    raise RuntimeError("retreating an insert whose record is not Ins")
                record.prepare_state = NOT_YET_INSERTED
                self.sequence.update_item_counts(record, -record.length, 0)
        else:
            targets = self._delete_targets[event_id]
            for target_id, target_len in targets:
                for record in self._aligned_spans(target_id, target_len):
                    if record.prepare_state < INSERTED + 1:  # pragma: no cover - defensive
                        raise RuntimeError("retreating a delete whose record is not Del n")
                    record.prepare_state -= 1
                    if record.prepare_state == INSERTED:
                        self.sequence.update_item_counts(record, +record.length, 0)
            # Coalesce only after every span of the event has flipped: merging
            # mid-loop could absorb a record the loop has not visited yet.
            for target_id, target_len in targets:
                self._coalesce_span(target_id, target_len)

    def advance(self, event_id: EventId, is_insert: bool, length: int = 1) -> None:
        """Add a whole run event back into the prepare version (§3.2)."""
        if is_insert:
            for record in self._aligned_spans(event_id, length):
                if record.prepare_state != NOT_YET_INSERTED:  # pragma: no cover - defensive
                    raise RuntimeError("advancing an insert whose record is not NIY")
                record.prepare_state = INSERTED
                self.sequence.update_item_counts(record, +record.length, 0)
            self._coalesce_span(event_id, length)
        else:
            targets = self._delete_targets[event_id]
            for target_id, target_len in targets:
                for record in self._aligned_spans(target_id, target_len):
                    if record.prepare_state < INSERTED:  # pragma: no cover - defensive
                        raise RuntimeError("advancing a delete whose record is NIY")
                    was_visible = record.prepare_state == INSERTED
                    record.prepare_state += 1
                    if was_visible:
                        self.sequence.update_item_counts(record, -record.length, 0)
            for target_id, target_len in targets:
                self._coalesce_span(target_id, target_len)

    # ------------------------------------------------------------------
    # Span re-merging (the inverse of lazy splitting)
    # ------------------------------------------------------------------
    def _coalesce_record(self, record: CrdtRecord) -> None:
        """Merge ``record`` with its neighbours where states allow it.

        ``record`` must currently be in the sequence.  At most two merges
        happen (with the next and with the previous item); each is the exact
        inverse of a split, so correctness is unaffected — only the span count
        shrinks.
        """
        if not self.merge_spans:
            return
        sequence = self.sequence
        nxt = sequence.next_item(record)
        if isinstance(nxt, CrdtRecord) and self._mergeable(record, nxt):
            sequence.merge_into_left(record, nxt)
            self.spans_merged += 1
        prev = sequence.prev_item(record)
        if isinstance(prev, CrdtRecord) and self._mergeable(prev, record):
            sequence.merge_into_left(prev, record)
            self.spans_merged += 1

    @staticmethod
    def _mergeable(left: CrdtRecord, right: CrdtRecord) -> bool:
        """Span-merge test: the generic split-inverse rule, plus the
        ph_base-keyed rule for placeholder carves.

        Runs carved out of the placeholder by *separate* delete events never
        satisfy :meth:`CrdtRecord.can_merge_with` on origins alone (fresh
        carves are created with empty origins).  But carved records are keyed
        by their original placeholder offset — deterministic, contiguous ids
        (:func:`~repro.core.sequence.carved_record_id`) — and their origin
        fields are never consulted: a carved record is never NotInsertedYet,
        so the YATA integration scan never reads it, and references *to*
        carved characters resolve through the carved index by ``ph_base``.
        Two adjacent same-state carves from the same original placeholder are
        therefore losslessly mergeable: a later split at the old boundary
        restores records that behave identically everywhere they are read.
        """
        if left.can_merge_with(right):
            return True
        return (
            left.ph_base is not None
            and right.ph_base is not None
            and right.ph_base == left.ph_base + left.length
            and left.id.agent == SYNTHETIC_AGENT
            and right.id.agent == SYNTHETIC_AGENT
            and right.id.seq == left.end_seq
            and right.prepare_state == left.prepare_state
            and left.prepare_state != NOT_YET_INSERTED
            and right.ever_deleted == left.ever_deleted
        )

    def _coalesce_span(self, start_id: EventId, length: int) -> None:
        """Coalesce every record currently covering the id span, plus its
        outer neighbours.  Called after a state change settles (never while a
        flip loop is still running, since a merge consumes the right record).
        """
        if not self.merge_spans:
            return
        seq = start_id.seq
        end = start_id.seq + length
        while seq < end:
            record, _ = self.sequence.record_at(EventId(start_id.agent, seq))
            self._coalesce_record(record)
            # The record may have been absorbed into its left neighbour;
            # re-resolve to find the (possibly grown) live covering record.
            record, offset = self.sequence.record_at(EventId(start_id.agent, seq))
            seq += record.length - offset

    def _aligned_spans(self, start_id: EventId, length: int) -> list[CrdtRecord]:
        """Records exactly covering the id span ``start_id .. +length``.

        Records created by one event never cover ids of another, and splits
        only refine spans, so the covering records normally align with the
        requested range already; when they don't (future partial operations),
        they are split so that a state change never bleeds outside the range.
        """
        spans: list[CrdtRecord] = []
        seq = start_id.seq
        end = start_id.seq + length
        while seq < end:
            record, offset = self.sequence.record_at(EventId(start_id.agent, seq))
            if offset > 0:
                record = self.sequence.split_record(record, offset)
            if record.length > end - seq:
                self.sequence.split_record(record, end - seq)
            spans.append(record)
            seq += record.length
        return spans

    # ------------------------------------------------------------------
    # Introspection (used by tests, converters and the memory benchmarks)
    # ------------------------------------------------------------------
    def record_for(self, event_id: EventId) -> CrdtRecord:
        """The record covering ``event_id``.

        For insert ids this is the run containing the character; for delete
        event ids it is the record of the (first) character the event deleted.
        """
        try:
            record, _ = self.sequence.record_at(event_id)
            return record
        except KeyError:
            targets = self._delete_targets.get(event_id)
            if targets:
                record, _ = self.sequence.record_at(targets[0][0])
                return record
            raise

    def delete_targets(self, event_id: EventId) -> list[tuple[EventId, int]]:
        """The id spans a previously applied delete event removed."""
        return list(self._delete_targets[event_id])

    def iter_records(self) -> Iterator[Item]:
        return self.sequence.iter_items()

    def prepare_length(self) -> int:
        return self.sequence.prepare_length()

    def effect_length(self) -> int:
        return self.sequence.effect_length()

    def record_count(self) -> int:
        """Number of span items currently held (runs, not characters)."""
        return self.sequence.memory_items()

    def unit_count(self) -> int:
        """Number of characters covered by the current items."""
        return self.sequence.total_units()

    # ------------------------------------------------------------------
    # Concurrent-insert ordering (YATA / YjsMod integration)
    # ------------------------------------------------------------------
    def _integrate(
        self,
        cursor: Cursor,
        record: CrdtRecord,
        origin_left: OriginRef,
        origin_right: OriginRef,
    ) -> None:
        """Place ``record`` among concurrent insertions at the same gap.

        Implements the YjsMod integration rule used by the paper's reference
        implementation: scan the not-yet-inserted records sitting between the
        new record's origins and decide, from *their* origins and a final id
        tie-break, whether the new record goes before or after each of them.
        The resulting order is independent of the replay order (Lemma C.5).
        Runs integrate as a unit — ordering is decided by their first
        character, which keeps each run contiguous (maximal non-interleaving).
        """
        if cursor.item is not None and cursor.offset > 0:
            # The gap is strictly inside a placeholder piece or a record run:
            # there can be no concurrent records at this gap, so insert
            # directly (splitting the item).
            self.sequence.insert_record_at_cursor(cursor, record)
            return

        seq = self.sequence
        # The origin positions are only needed if there is at least one
        # concurrent (not-yet-inserted) record at the insertion gap, which is
        # rare; compute them lazily so the common case stays cheap.
        left_pos: float | None = None
        right_pos: float | None = None

        dest_before: Item | None = cursor.item
        scanning = False
        exhausted = True
        for other in seq.iter_items_from_cursor(cursor):
            if not scanning:
                dest_before = other
            if isinstance(other, PlaceholderPiece) or other.exists_in_prepare:
                # Reached the first item that exists in the prepare version,
                # i.e. the new record's right origin: stop scanning.
                exhausted = False
                break
            if left_pos is None:
                left_pos = (
                    -1 if origin_left is None else seq.unit_position_of_ref(origin_left)
                )
                right_pos = (
                    math.inf
                    if origin_right is None
                    else seq.unit_position_of_ref(origin_right)
                )
            # ``other`` is a concurrent, not-yet-inserted record.
            oleft = (
                -1
                if other.origin_left is None
                else seq.unit_position_of_ref(other.origin_left)
            )
            oright = (
                math.inf
                if other.origin_right is None
                else seq.unit_position_of_ref(other.origin_right)
            )
            if oleft < left_pos or (
                oleft == left_pos and oright == right_pos and record.id < other.id
            ):
                exhausted = False
                break
            if oleft == left_pos:
                scanning = oright < right_pos
        if exhausted and not scanning:
            dest_before = None
        seq.insert_record_before_item(dest_before, record)
