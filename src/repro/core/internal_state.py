"""Eg-walker's transient internal CRDT state (paper §3.3–3.4, §3.6).

The :class:`InternalState` holds the sequence of character records the walker
uses to transform operations, together with the map from event ids to records
(the paper's second B-tree).  It exposes exactly the three methods of §3.2 —
``apply``, ``retreat`` and ``advance`` (here split into insert/delete flavours
of apply) — plus ``clear`` for the state-clearing optimisation of §3.5.

Concurrent insertions at the same position are ordered with a YATA-style
integration rule (the "YjsMod" variant used by the paper's reference
implementation): each record stores the item to its left and the next item
that existed in its prepare version at insertion time (its *origins*), and a
small scan over the other concurrent records placed at the same gap decides a
consistent total order regardless of the order in which the events are
replayed.

The sequence itself is provided by a pluggable backend (list or
order-statistic tree, see :mod:`repro.core.sequence`), so this module contains
only algorithmic logic and no data-structure code.
"""

from __future__ import annotations

import math
from typing import Iterator

from .ids import EventId
from .records import (
    INSERTED,
    NOT_YET_INSERTED,
    CrdtRecord,
    Item,
    OriginRef,
    PlaceholderPiece,
)
from .sequence import Cursor, ListSequence, SequenceBackend, synthetic_record_id

__all__ = ["InternalState"]


class InternalState:
    """The walker's transient CRDT state over a pluggable sequence backend."""

    def __init__(self, backend: SequenceBackend | None = None) -> None:
        self.sequence: SequenceBackend = backend if backend is not None else ListSequence()
        #: Maps event ids to the record they inserted (insert events) or the
        #: record of the character they deleted (delete events).  This is the
        #: paper's second B-tree; records carry a back-pointer to their leaf
        #: when the tree backend is in use, so a plain dict suffices here.
        self.id_map: dict[EventId, CrdtRecord] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def clear(self, document_length: int) -> None:
        """Discard all records and restart from a placeholder (§3.5–3.6).

        ``document_length`` is the length of the document at the version the
        state now represents.  An upper bound is acceptable: the spare
        placeholder units sit at the end of the sequence where no valid event
        can address them, so they never affect transformed indexes.
        """
        self.sequence.clear(document_length)
        self.id_map.clear()

    # ------------------------------------------------------------------
    # apply
    # ------------------------------------------------------------------
    def apply_insert(self, event_id: EventId, pos: int) -> int:
        """Apply an insertion at prepare-version index ``pos``.

        Returns the transformed (effect-version) index at which the character
        must be inserted into the document.
        """
        cursor = self.sequence.find_insert_cursor(pos)
        origin_left = self.sequence.origin_left_of_cursor(cursor)
        origin_right = self.sequence.next_existing_in_prepare(cursor)
        record = CrdtRecord(
            id=event_id,
            origin_left=origin_left,
            origin_right=origin_right,
            prepare_state=INSERTED,
            ever_deleted=False,
        )
        self._integrate(cursor, record, origin_left, origin_right)
        self.id_map[event_id] = record
        return self.sequence.effect_position_of_item(record)

    def apply_delete(self, event_id: EventId, pos: int) -> int | None:
        """Apply a deletion of the character at prepare-version index ``pos``.

        Returns the transformed index to delete from the document, or ``None``
        if the character was already deleted in the effect version (the
        transformed operation is a no-op).
        """
        item, offset = self.sequence.find_visible_unit(pos)
        if isinstance(item, PlaceholderPiece):
            # The deleted character was inserted before the replay's base
            # version; carve a record out of the placeholder (§3.6).
            effect_pos = self.sequence.effect_position_of_item(item, offset)
            record = CrdtRecord(
                id=synthetic_record_id(),
                prepare_state=INSERTED + 1,  # Del 1
                ever_deleted=True,
            )
            self.sequence.convert_placeholder_unit(item, offset, record)
            self.id_map[event_id] = record
            return effect_pos

        record = item
        if record.prepare_state != INSERTED:  # pragma: no cover - defensive
            raise RuntimeError(
                "delete targets a character that is not visible in the prepare "
                "version; the event graph is invalid"
            )
        was_effect_visible = not record.ever_deleted
        effect_pos = (
            self.sequence.effect_position_of_item(record) if was_effect_visible else None
        )
        record.prepare_state += 1
        d_effect = 0
        if was_effect_visible:
            record.ever_deleted = True
            d_effect = -1
        self.sequence.update_item_counts(record, -1, d_effect)
        self.id_map[event_id] = record
        return effect_pos

    # ------------------------------------------------------------------
    # retreat / advance
    # ------------------------------------------------------------------
    def retreat(self, event_id: EventId, is_insert: bool) -> None:
        """Remove ``event_id`` from the prepare version (§3.2)."""
        record = self.id_map[event_id]
        if is_insert:
            if record.prepare_state != INSERTED:  # pragma: no cover - defensive
                raise RuntimeError("retreating an insert whose record is not Ins")
            record.prepare_state = NOT_YET_INSERTED
            self.sequence.update_item_counts(record, -1, 0)
        else:
            if record.prepare_state < INSERTED + 1:  # pragma: no cover - defensive
                raise RuntimeError("retreating a delete whose record is not Del n")
            record.prepare_state -= 1
            if record.prepare_state == INSERTED:
                self.sequence.update_item_counts(record, +1, 0)

    def advance(self, event_id: EventId, is_insert: bool) -> None:
        """Add ``event_id`` back into the prepare version (§3.2)."""
        record = self.id_map[event_id]
        if is_insert:
            if record.prepare_state != NOT_YET_INSERTED:  # pragma: no cover - defensive
                raise RuntimeError("advancing an insert whose record is not NIY")
            record.prepare_state = INSERTED
            self.sequence.update_item_counts(record, +1, 0)
        else:
            if record.prepare_state < INSERTED:  # pragma: no cover - defensive
                raise RuntimeError("advancing a delete whose record is NIY")
            was_visible = record.prepare_state == INSERTED
            record.prepare_state += 1
            if was_visible:
                self.sequence.update_item_counts(record, -1, 0)

    # ------------------------------------------------------------------
    # Introspection (used by tests and the memory benchmarks)
    # ------------------------------------------------------------------
    def iter_records(self) -> Iterator[Item]:
        return self.sequence.iter_items()

    def prepare_length(self) -> int:
        return self.sequence.prepare_length()

    def effect_length(self) -> int:
        return self.sequence.effect_length()

    def record_count(self) -> int:
        return self.sequence.memory_items()

    # ------------------------------------------------------------------
    # Concurrent-insert ordering (YATA / YjsMod integration)
    # ------------------------------------------------------------------
    def _integrate(
        self,
        cursor: Cursor,
        record: CrdtRecord,
        origin_left: OriginRef,
        origin_right: OriginRef,
    ) -> None:
        """Place ``record`` among concurrent insertions at the same gap.

        Implements the YjsMod integration rule used by the paper's reference
        implementation: scan the not-yet-inserted records sitting between the
        new record's origins and decide, from *their* origins and a final id
        tie-break, whether the new record goes before or after each of them.
        The resulting order is independent of the replay order (Lemma C.5).
        """
        if cursor.item is not None and cursor.offset > 0:
            # The gap is strictly inside a placeholder piece: there can be no
            # concurrent records at this gap, so insert directly (splitting
            # the placeholder).
            self.sequence.insert_record_at_cursor(cursor, record)
            return

        seq = self.sequence
        # The origin positions are only needed if there is at least one
        # concurrent (not-yet-inserted) record at the insertion gap, which is
        # rare; compute them lazily so the common case stays cheap.
        left_pos: float | None = None
        right_pos: float | None = None

        dest_before: Item | None = cursor.item
        scanning = False
        exhausted = True
        for other in seq.iter_items_from_cursor(cursor):
            if not scanning:
                dest_before = other
            if isinstance(other, PlaceholderPiece) or other.exists_in_prepare:
                # Reached the first item that exists in the prepare version,
                # i.e. the new record's right origin: stop scanning.
                exhausted = False
                break
            if left_pos is None:
                left_pos = (
                    -1 if origin_left is None else seq.unit_position_of_ref(origin_left)
                )
                right_pos = (
                    math.inf
                    if origin_right is None
                    else seq.unit_position_of_ref(origin_right)
                )
            # ``other`` is a concurrent, not-yet-inserted record.
            oleft = (
                -1
                if other.origin_left is None
                else seq.unit_position_of_ref(other.origin_left)
            )
            oright = (
                math.inf
                if other.origin_right is None
                else seq.unit_position_of_ref(other.origin_right)
            )
            if oleft < left_pos or (
                oleft == left_pos and oright == right_pos and record.id < other.id
            ):
                exhausted = False
                break
            if oleft == left_pos:
                scanning = oright < right_pos
        if exhausted and not scanning:
            dest_before = None
        seq.insert_record_before_item(dest_before, record)
