"""The event graph: an append-only DAG of editing events (paper §2.2, §4).

Every replica stores the full editing history of a document as a directed
acyclic graph.  Each node is an :class:`Event` holding an insert or delete
**run** (one or more consecutive characters — the native unit of the whole
pipeline, matching the paper's run-length encoded storage and replay), a
globally unique :class:`~repro.core.ids.EventId` naming the run's first
character, and the set of ids of its parent events.  Character ``k`` of a run
event has id ``event.id.advance(k)`` and is addressable locally as
``(event_index, offset)``.  The graph is transitively reduced by construction:
a new event's parents are always the frontier of the graph as the generating
replica saw it.

Runs are atomic: they are created whole by :class:`~repro.core.oplog.OpLog`,
so no event can causally depend on a strict prefix of another run — a parent
reference to *any* character of a run is a dependency on the whole run.

Locally, events are stored in an append-only list.  Because an event can only
be added once all of its parents are present, the list order is always a valid
topological order, and most algorithms in this package address events by their
integer index in that list (the *local index*).  Versions (frontiers) are
represented as sorted tuples of local indices.

:func:`expand_to_chars` converts a run graph into the equivalent
one-event-per-character graph — the representation the paper uses for
presentation, kept here as a correctness oracle for the run-length pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .ids import EventId, Operation
from .range_map import RangeIndex

__all__ = ["Event", "EventGraph", "Version", "ROOT_VERSION", "expand_to_chars"]

#: A version (frontier) is a sorted tuple of local event indices.  The empty
#: tuple is the root version: the state of the document before any events.
Version = tuple[int, ...]

ROOT_VERSION: Version = ()


@dataclass(slots=True)
class Event:
    """A single run event in the graph.

    Attributes:
        index: local index of this event in the owning graph.
        id: globally unique ``(agent, seq)`` identifier of the run's first
            character; the run covers seqs ``id.seq .. id.seq + op.length - 1``.
        parents: local indices of this event's parent events (sorted).  The
            empty tuple means the event has no parents (it was generated
            against the empty document).
        op: the run operation this event performs.
    """

    index: int
    id: EventId
    parents: Version
    op: Operation

    @property
    def num_chars(self) -> int:
        """Number of characters this event covers."""
        return self.op.length

    @property
    def end_seq(self) -> int:
        """One past the seq of the run's last character."""
        return self.id.seq + self.op.length

    def id_at(self, offset: int) -> EventId:
        """Id of the ``offset``-th character of this run."""
        if offset < 0 or offset >= self.op.length:
            raise IndexError(f"offset {offset} out of range for event {self.index}")
        return self.id.advance(offset)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "ins" if self.op.is_insert else "del"
        payload = repr(self.op.content) if self.op.is_insert else f"x{self.op.length}"
        return (
            f"Event({self.index}, {self.id.agent}:{self.id.seq}, "
            f"parents={list(self.parents)}, {kind}@{self.op.pos}{payload})"
        )


class EventGraph:
    """Append-only store of run events plus the id <-> index range mapping.

    The graph grows monotonically; events are never removed and an existing
    event's parents never change (paper §2.2).  Two replicas merge their
    graphs by taking the union of their event sets, which here is implemented
    by :meth:`add_remote_event` / :meth:`merge_from`.

    The id mapping is a *range map*: per agent, a sorted list of run start
    seqs, so that any character id resolves to ``(event_index, offset)`` in
    O(log runs) with O(runs) memory — not O(chars).
    """

    def __init__(self) -> None:
        self._events: list[Event] = []
        #: Per-agent range map: run-start seq -> run event (shared RangeIndex
        #: machinery with the internal-state record index).
        self._agent_index: dict[str, RangeIndex[Event]] = {}
        self._children: list[list[int]] = []
        self._frontier: list[int] = []
        self._next_seq: dict[str, int] = {}
        self._num_chars = 0

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def events(self) -> Sequence[Event]:
        """All events in local (topological) order."""
        return self._events

    @property
    def num_chars(self) -> int:
        """Total number of characters across all run events."""
        return self._num_chars

    def contains_id(self, event_id: EventId) -> bool:
        return self._locate(event_id) is not None

    def locate(self, event_id: EventId) -> tuple[int, int]:
        """Resolve a character id to ``(event_index, offset)``.

        Raises:
            KeyError: if no run in this graph covers the id.
        """
        found = self._locate(event_id)
        if found is None:
            raise KeyError(f"event id {event_id} not in graph")
        return found

    def index_of(self, event_id: EventId) -> int:
        """Local index of the event whose run covers the given id.

        Raises:
            KeyError: if the id is not (yet) covered by this graph.
        """
        return self.locate(event_id)[0]

    def _locate(self, event_id: EventId) -> tuple[int, int] | None:
        index = self._agent_index.get(event_id.agent)
        if index is None:
            return None
        found = index.find(event_id.seq)
        if found is None:
            return None
        event, offset = found
        return event.index, offset

    def id_of(self, index: int) -> EventId:
        """Id of the first character of the event at ``index``."""
        return self._events[index].id

    def parents_of(self, index: int) -> Version:
        return self._events[index].parents

    def children_of(self, index: int) -> Sequence[int]:
        return self._children[index]

    @property
    def frontier(self) -> Version:
        """The current version of the graph: all events with no children."""
        return tuple(sorted(self._frontier))

    def next_seq_for(self, agent: str) -> int:
        """The next unused sequence number for ``agent`` in this graph."""
        return self._next_seq.get(agent, 0)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_event(
        self,
        event_id: EventId,
        parents: Iterable[EventId] | Iterable[int],
        op: Operation,
        *,
        parents_are_indices: bool = False,
    ) -> Event:
        """Add a run event to the graph.

        Args:
            event_id: the globally unique id of the run's first character.
                The run's whole id span must be fresh.
            parents: parent events, either as :class:`EventId` values (any
                character of the parent run identifies it — runs are atomic)
                or as local indices (set ``parents_are_indices``).  All
                parents must already be in the graph (causal delivery is the
                caller's responsibility — see
                :mod:`repro.network.causal_broadcast`).
            op: an insert or delete run operation (length >= 1).

        Returns:
            The newly created :class:`Event`.
        """
        agent_index = self._agent_index.get(event_id.agent)
        if self._locate(event_id) is not None or (
            agent_index is not None
            and agent_index.next_start_in(event_id.seq, event_id.seq + op.length)
            is not None
        ):
            raise ValueError(f"duplicate event id span {event_id}+{op.length}")
        if parents_are_indices:
            parent_indices = sorted(int(p) for p in parents)
        else:
            parent_indices = sorted({self.index_of(p) for p in parents})  # type: ignore[arg-type]
        index = len(self._events)
        for p in parent_indices:
            if p < 0 or p >= index:
                raise ValueError(f"parent index {p} out of range for event {index}")
        event = Event(index=index, id=event_id, parents=tuple(parent_indices), op=op)
        self._events.append(event)
        self._children.append([])
        if agent_index is None:
            agent_index = self._agent_index[event_id.agent] = RangeIndex(_event_length)
        agent_index.register(event_id.seq, event)
        self._num_chars += op.length
        for p in parent_indices:
            self._children[p].append(index)
        # Maintain the frontier incrementally: the new event replaces any of
        # its parents that were frontier members, and is itself a frontier
        # member (nothing can be its child yet).
        parent_set = set(parent_indices)
        self._frontier = [f for f in self._frontier if f not in parent_set]
        self._frontier.append(index)
        expected = self._next_seq.get(event_id.agent, 0)
        if event_id.seq + op.length > expected:
            self._next_seq[event_id.agent] = event_id.seq + op.length
        return event

    def add_local_event(self, agent: str, op: Operation) -> Event:
        """Add a run event generated locally by ``agent``.

        The new event's parents are the current frontier and its sequence
        numbers (one per character) are allocated automatically.
        """
        event_id = EventId(agent, self.next_seq_for(agent))
        return self.add_event(event_id, self.frontier, op, parents_are_indices=True)

    def add_remote_event(
        self, event_id: EventId, parent_ids: Iterable[EventId], op: Operation
    ) -> Event | None:
        """Add a run event received from another replica.

        Returns ``None`` (and ignores the event) if it is already present,
        which makes delivery idempotent.  A run that only *partially* overlaps
        an existing run is not a redelivery but a protocol violation (runs are
        atomic) and raises :class:`ValueError`.  Raises :class:`KeyError` if
        any parent is missing; the replication layer is expected to hold such
        events back until their parents arrive.
        """
        located = self._locate(event_id)
        if located is not None:
            event_index, offset = located
            if offset == 0 and self._events[event_index].op.length == op.length:
                return None
            raise ValueError(
                f"remote event {event_id}+{op.length} partially overlaps an "
                "existing run"
            )
        return self.add_event(event_id, parent_ids, op)

    def merge_from(self, other: "EventGraph") -> list[int]:
        """Union this graph with ``other`` (paper §2.2).

        Events of ``other`` that are missing locally are added in ``other``'s
        local order, which is guaranteed to deliver parents before children.

        Returns:
            The local indices (in *this* graph) of the newly added events.
        """
        added: list[int] = []
        for event in other.events():
            located = self._locate(event.id)
            if located is not None:
                event_index, offset = located
                if offset == 0 and self._events[event_index].op.length == event.op.length:
                    continue  # already present (same whole run)
                raise ValueError(
                    f"event {event.id}+{event.op.length} partially overlaps an "
                    "existing run; the graphs have diverged illegally"
                )
            parent_ids = [other.id_of(p) for p in event.parents]
            new_event = self.add_event(event.id, parent_ids, event.op)
            added.append(new_event.index)
        return added

    # ------------------------------------------------------------------
    # Version helpers
    # ------------------------------------------------------------------
    def version_from_ids(self, ids: Iterable[EventId]) -> Version:
        """Convert a set of event ids into a local-index version tuple."""
        return tuple(sorted({self.index_of(i) for i in ids}))

    def ids_from_version(self, version: Version) -> tuple[EventId, ...]:
        """Convert a local-index version into globally meaningful event ids."""
        return tuple(self._events[i].id for i in version)

    def is_valid_version(self, version: Version) -> bool:
        """Check that ``version`` only references events present in the graph."""
        return all(0 <= i < len(self._events) for i in version)

    def summary(self) -> dict[str, int]:
        """Cheap summary statistics used by the trace tooling.

        ``events`` counts run events; ``inserts`` / ``deletes`` / ``chars``
        count characters, so they are invariant under run-length encoding.
        """
        inserted = sum(e.op.length for e in self._events if e.op.is_insert)
        return {
            "events": len(self._events),
            "chars": self._num_chars,
            "inserts": inserted,
            "deletes": self._num_chars - inserted,
            "agents": len(self._next_seq),
        }


def _event_length(event: Event) -> int:
    return event.op.length


def expand_to_chars(graph: EventGraph) -> EventGraph:
    """The per-character expansion of a run graph (the correctness oracle).

    Every run event of length L becomes L chained single-character events
    carrying the same character ids: the first carries the run's parents, each
    subsequent character has the previous one as its sole parent — exactly how
    the history would look had it been recorded one keystroke at a time.
    Expanding an already per-character graph is the identity (up to object
    identity).
    """
    expanded = EventGraph()
    last_char_index: dict[int, int] = {}  # run event index -> index of its last char
    for event in graph.events():
        parents = tuple(sorted(last_char_index[p] for p in event.parents))
        for offset in range(event.op.length):
            char_event = expanded.add_event(
                event.id_at(offset),
                parents,
                event.op.char_at(offset),
                parents_are_indices=True,
            )
            parents = (char_event.index,)
        last_char_index[event.index] = len(expanded) - 1
    return expanded
