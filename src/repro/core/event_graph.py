"""The event graph: an append-only DAG of editing events (paper §2.2).

Every replica stores the full editing history of a document as a directed
acyclic graph.  Each node is an :class:`Event` holding a single-character
insert or delete operation, a globally unique :class:`~repro.core.ids.EventId`
and the set of ids of its parent events.  The graph is transitively reduced by
construction: a new event's parents are always the frontier of the graph as
the generating replica saw it.

Locally, events are stored in an append-only list.  Because an event can only
be added once all of its parents are present, the list order is always a valid
topological order, and most algorithms in this package address events by their
integer index in that list (the *local index*).  Versions (frontiers) are
represented as sorted tuples of local indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from .ids import EventId, Operation, OpKind

__all__ = ["Event", "EventGraph", "Version", "ROOT_VERSION"]

#: A version (frontier) is a sorted tuple of local event indices.  The empty
#: tuple is the root version: the state of the document before any events.
Version = tuple[int, ...]

ROOT_VERSION: Version = ()


@dataclass(slots=True)
class Event:
    """A single editing event in the graph.

    Attributes:
        index: local index of this event in the owning graph.
        id: globally unique ``(agent, seq)`` identifier.
        parents: local indices of this event's parent events (sorted).  The
            empty tuple means the event has no parents (it was generated
            against the empty document).
        op: the single-character operation this event performs.
    """

    index: int
    id: EventId
    parents: Version
    op: Operation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "ins" if self.op.is_insert else "del"
        payload = repr(self.op.content) if self.op.is_insert else ""
        return (
            f"Event({self.index}, {self.id.agent}:{self.id.seq}, "
            f"parents={list(self.parents)}, {kind}@{self.op.pos}{payload})"
        )


class EventGraph:
    """Append-only store of events plus the id <-> index mapping.

    The graph grows monotonically; events are never removed and an existing
    event's parents never change (paper §2.2).  Two replicas merge their
    graphs by taking the union of their event sets, which here is implemented
    by :meth:`add_remote_event` / :meth:`merge_from`.
    """

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._index_of: dict[EventId, int] = {}
        self._children: list[list[int]] = []
        self._frontier: list[int] = []
        self._next_seq: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def events(self) -> Sequence[Event]:
        """All events in local (topological) order."""
        return self._events

    def contains_id(self, event_id: EventId) -> bool:
        return event_id in self._index_of

    def index_of(self, event_id: EventId) -> int:
        """Local index of the event with the given id.

        Raises:
            KeyError: if the event is not (yet) in this graph.
        """
        return self._index_of[event_id]

    def id_of(self, index: int) -> EventId:
        return self._events[index].id

    def parents_of(self, index: int) -> Version:
        return self._events[index].parents

    def children_of(self, index: int) -> Sequence[int]:
        return self._children[index]

    @property
    def frontier(self) -> Version:
        """The current version of the graph: all events with no children."""
        return tuple(sorted(self._frontier))

    def next_seq_for(self, agent: str) -> int:
        """The next unused sequence number for ``agent`` in this graph."""
        return self._next_seq.get(agent, 0)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_event(
        self,
        event_id: EventId,
        parents: Iterable[EventId] | Iterable[int],
        op: Operation,
        *,
        parents_are_indices: bool = False,
    ) -> Event:
        """Add a single-character event to the graph.

        Args:
            event_id: the globally unique id of the new event.  Must not
                already be present.
            parents: parent events, either as :class:`EventId` values or as
                local indices (set ``parents_are_indices``).  All parents must
                already be in the graph (causal delivery is the caller's
                responsibility — see :mod:`repro.network.causal_broadcast`).
            op: a single-character insert or delete operation.

        Returns:
            The newly created :class:`Event`.
        """
        if op.length != 1:
            raise ValueError(
                "the event graph stores one event per character; expand "
                "multi-character operations before adding them"
            )
        if event_id in self._index_of:
            raise ValueError(f"duplicate event id {event_id}")
        if parents_are_indices:
            parent_indices = sorted(int(p) for p in parents)
        else:
            parent_indices = sorted(self._index_of[p] for p in parents)  # type: ignore[index]
        index = len(self._events)
        for p in parent_indices:
            if p < 0 or p >= index:
                raise ValueError(f"parent index {p} out of range for event {index}")
        event = Event(index=index, id=event_id, parents=tuple(parent_indices), op=op)
        self._events.append(event)
        self._children.append([])
        self._index_of[event_id] = index
        for p in parent_indices:
            self._children[p].append(index)
        # Maintain the frontier incrementally: the new event replaces any of
        # its parents that were frontier members, and is itself a frontier
        # member (nothing can be its child yet).
        parent_set = set(parent_indices)
        self._frontier = [f for f in self._frontier if f not in parent_set]
        self._frontier.append(index)
        expected = self._next_seq.get(event_id.agent, 0)
        if event_id.seq >= expected:
            self._next_seq[event_id.agent] = event_id.seq + 1
        return event

    def add_local_event(self, agent: str, op: Operation) -> Event:
        """Add an event generated locally by ``agent``.

        The new event's parents are the current frontier and its sequence
        number is allocated automatically.
        """
        event_id = EventId(agent, self.next_seq_for(agent))
        return self.add_event(event_id, self.frontier, op, parents_are_indices=True)

    def add_remote_event(
        self, event_id: EventId, parent_ids: Iterable[EventId], op: Operation
    ) -> Event | None:
        """Add an event received from another replica.

        Returns ``None`` (and ignores the event) if it is already present,
        which makes delivery idempotent.  Raises :class:`KeyError` if any
        parent is missing; the replication layer is expected to hold such
        events back until their parents arrive.
        """
        if event_id in self._index_of:
            return None
        return self.add_event(event_id, parent_ids, op)

    def merge_from(self, other: "EventGraph") -> list[int]:
        """Union this graph with ``other`` (paper §2.2).

        Events of ``other`` that are missing locally are added in ``other``'s
        local order, which is guaranteed to deliver parents before children.

        Returns:
            The local indices (in *this* graph) of the newly added events.
        """
        added: list[int] = []
        for event in other.events():
            if event.id in self._index_of:
                continue
            parent_ids = [other.id_of(p) for p in event.parents]
            new_event = self.add_event(event.id, parent_ids, event.op)
            added.append(new_event.index)
        return added

    # ------------------------------------------------------------------
    # Version helpers
    # ------------------------------------------------------------------
    def version_from_ids(self, ids: Iterable[EventId]) -> Version:
        """Convert a set of event ids into a local-index version tuple."""
        return tuple(sorted(self._index_of[i] for i in ids))

    def ids_from_version(self, version: Version) -> tuple[EventId, ...]:
        """Convert a local-index version into globally meaningful event ids."""
        return tuple(self._events[i].id for i in version)

    def is_valid_version(self, version: Version) -> bool:
        """Check that ``version`` only references events present in the graph."""
        return all(0 <= i < len(self._events) for i in version)

    def summary(self) -> dict[str, int]:
        """Cheap summary statistics used by the trace tooling."""
        inserts = sum(1 for e in self._events if e.op.is_insert)
        deletes = len(self._events) - inserts
        return {
            "events": len(self._events),
            "inserts": inserts,
            "deletes": deletes,
            "agents": len(self._next_seq),
        }
