"""The event graph: an append-only DAG of editing events (paper §2.2, §4).

Every replica stores the full editing history of a document as a directed
acyclic graph.  Each node is an :class:`Event` holding an insert or delete
**run** (one or more consecutive characters — the native unit of the whole
pipeline, matching the paper's run-length encoded storage and replay), a
globally unique :class:`~repro.core.ids.EventId` naming the run's first
character, and the set of ids of its parent events.  Character ``k`` of a run
event has id ``event.id.advance(k)`` and is addressable locally as
``(event_index, offset)``.  The graph is transitively reduced by construction:
a new event's parents are always the frontier of the graph as the generating
replica saw it.

Run boundaries are a **local encoding detail**, not a protocol invariant:
two replicas may carve the same per-character history into different runs
(e.g. one batched a paragraph into a single run while a peer received it in
two deliveries).  Locally a run event is stored whole, but ingesting a remote
run that only partially overlaps stored coverage *splits* runs on either side
until the two carvings agree (:meth:`EventGraph.ingest_run`), and a remote
parent reference to a mid-run character splits the stored run at that
boundary so the dependency covers exactly the referenced prefix
(:meth:`EventGraph.dependency_index`).  In replicated form a parent id names
the **last** character the event depends on; within a trusted local graph
(:meth:`EventGraph.add_event`) any character of a run still identifies the
whole run, because locally-created runs are only ever depended on whole.

Storage layout — columns keyed by **stable event handles**
----------------------------------------------------------

Algorithms address events by their integer position in the local topological
order (the *local index*; versions are sorted tuples of local indices).  But
local indices shift whenever an interop split inserts a right half mid-order,
so indices cannot be the storage key: the original row-of-objects layout
paid an O(n) Python re-indexing pass per split, and every listener had to
shift its own bookkeeping in lockstep.

The graph therefore separates *identity* from *position*:

* Each event gets a **handle** — a small integer allocated once and never
  reused or renumbered.  All per-event data lives in parallel columns
  indexed by handle (agent as an interned int, start seq, run length, parent
  handles, child handles, the operation payload) — the columnar layout the
  storage encoder uses on disk, here as the in-memory representation.
* The local order is one array of handles (``_order``) plus a parallel array
  of strictly increasing **order labels**.  ``index → handle`` is a list
  lookup (O(1)); ``handle → index`` is a bisect over the labels (O(log n)).
  A split allocates the right half a label midway between its neighbours, so
  no existing label (and no listener keyed by handles) needs touching; label
  space is re-spread in the rare case two neighbours become adjacent.

:meth:`split_event` is then O(log n + degree) Python work: rewrite the
whole-run parent references of the split run's children (via the child
column) and insert the right half's handle into the order — the only O(n)
residue is a pair of C-level array inserts.  Consumers that key off handles
(the merge engine's critical-cut tracker, the per-agent range map, the
frontier) do not shift anything; index-based caches (parents-as-indices) are
invalidated wholesale by a generation counter and recomputed lazily.

:class:`Event` is a permanent flyweight **view** (one per handle, ``__slots__``
only): ``event.index`` always reports the current position, ``event.op`` /
``event.id`` / ``event.parents`` read the columns, so holding an ``Event``
across splits is safe — the object never goes stale.

:func:`expand_to_chars` converts a run graph into the equivalent
one-event-per-character graph — the representation the paper uses for
presentation, kept here as a correctness oracle for the run-length pipeline.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterable, Iterator, Sequence

from .ids import EventId, Operation, delete_op, insert_op
from .range_map import RangeIndex

__all__ = ["Event", "EventGraph", "Version", "ROOT_VERSION", "expand_to_chars"]

#: A version (frontier) is a sorted tuple of local event indices.  The empty
#: tuple is the root version: the state of the document before any events.
Version = tuple[int, ...]

ROOT_VERSION: Version = ()

#: Gap left between consecutive order labels on append; a split bisects the
#: gap, so ~20 splits must land between the *same* two events before the
#: label space is re-spread (O(n), amortised away).
_LABEL_GAP = 1 << 20


class Event:
    """A view of one run event in the graph — a stable, never-stale handle.

    One ``Event`` object exists per stored event, for the graph's lifetime.
    All attributes read through to the graph's columns, so they are live:

    * ``index`` — the event's *current* local index (splits shift it);
    * ``id`` — globally unique ``(agent, seq)`` of the run's first character;
      the run covers seqs ``id.seq .. id.seq + op.length - 1``;
    * ``parents`` — current local indices of the parent events (sorted;
      empty tuple = generated against the empty document);
    * ``op`` — the run operation (shrinks on split, grows on extension);
    * ``handle`` — the graph-internal stable integer key.
    """

    __slots__ = ("graph", "handle")

    def __init__(self, graph: "EventGraph", handle: int) -> None:
        self.graph = graph
        self.handle = handle

    @property
    def index(self) -> int:
        return self.graph.index_of_handle(self.handle)

    @property
    def id(self) -> EventId:
        return self.graph._h_id[self.handle]

    @property
    def parents(self) -> Version:
        return self.graph._parent_indices(self.handle)

    @property
    def op(self) -> Operation:
        return self.graph._h_op[self.handle]

    @property
    def num_chars(self) -> int:
        """Number of characters this event covers."""
        return self.graph._h_len[self.handle]

    @property
    def end_seq(self) -> int:
        """One past the seq of the run's last character."""
        return self.graph._h_seq[self.handle] + self.graph._h_len[self.handle]

    def id_at(self, offset: int) -> EventId:
        """Id of the ``offset``-th character of this run."""
        if offset < 0 or offset >= self.graph._h_len[self.handle]:
            raise IndexError(f"offset {offset} out of range for event {self.index}")
        return self.id.advance(offset)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        op = self.op
        kind = "ins" if op.is_insert else "del"
        payload = repr(op.content) if op.is_insert else f"x{op.length}"
        return (
            f"Event({self.index}, {self.id.agent}:{self.id.seq}, "
            f"parents={list(self.parents)}, {kind}@{op.pos}{payload})"
        )


class EventGraph:
    """Append-only store of run events plus the id <-> index range mapping.

    The graph grows monotonically; events are never removed and an existing
    event's parents never change (paper §2.2).  Two replicas merge their
    graphs by taking the union of their event sets, which here is implemented
    by :meth:`add_remote_event` / :meth:`merge_from`.

    The id mapping is a *range map*: per agent, a sorted list of run start
    seqs resolving to event handles, so that any character id maps to
    ``(event_index, offset)`` in O(log runs) with O(runs) memory — not
    O(chars).  See the module docstring for the columnar, handle-keyed
    storage layout.
    """

    def __init__(self) -> None:
        # -- per-handle columns (parallel lists indexed by handle) ---------
        self._h_id: list[EventId] = []  # first-char id (cached composite)
        self._h_agent: list[int] = []  # interned agent (index into _agent_names)
        self._h_seq: list[int] = []  # run start seq
        self._h_len: list[int] = []  # run length (in sync with the op)
        self._h_op: list[Operation] = []  # operation payload
        self._h_parents: list[tuple[int, ...]] = []  # parent handles
        self._h_children: list[list[int]] = []  # child handles (append order)
        self._h_label: list[int] = []  # order label (monotone along _order)
        self._h_view: list[Event] = []  # the one Event view per handle
        # parents-as-sorted-index-tuples cache + the generation it was
        # computed at; bumping _gen (splits only) invalidates every entry in
        # O(1), recomputation is lazy and O(parents log n).
        self._h_pidx: list[Version] = []
        self._h_pgen: list[int] = []
        self._gen = 0
        # -- the local order ----------------------------------------------
        self._order: list[int] = []  # handles in local (topological) order
        self._labels: list[int] = []  # labels parallel to _order (ascending)
        # -- agent interning + id range maps --------------------------------
        self._agent_names: list[str] = []
        self._agent_ids: dict[str, int] = {}
        #: Per-agent range map: run-start seq -> event handle (shared
        #: RangeIndex machinery with the internal-state record index).
        self._agent_index: dict[str, RangeIndex[int]] = {}
        # -- aggregates ------------------------------------------------------
        self._frontier: list[int] = []  # handles of events with no children
        self._next_seq: dict[str, int] = {}
        self._num_chars = 0
        #: ``_cum_inserts[i]`` = total characters inserted by events ``0..i``
        #: (index-parallel, like ``_order``).  Kept in lockstep (O(1) per
        #: append/extension; splits insert one entry) so
        #: :meth:`inserted_chars_through` is O(1).  The history subsystem
        #: uses it as a safe upper bound on the document length at any
        #: version contained in a prefix, to size replay placeholders.
        self._cum_inserts: list[int] = []
        #: Structural-change observers (see :meth:`add_listener`).  Listeners
        #: are how incremental consumers (the merge engine's critical-cut
        #: tracker) stay in sync without rescanning the graph.
        self._listeners: list[object] = []

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------
    def add_listener(self, listener: object) -> None:
        """Register a structural-change observer.

        A listener may implement any of

        * ``event_added(event)`` — called after a new event is appended,
        * ``event_split(index)`` — called after the run at ``index`` was split
          in place (the right half now lives at ``index + 1`` and every later
          index shifted up by one; handles and order labels of existing
          events are untouched), and
        * ``event_extended(index, added_length)`` — called after the run at
          ``index`` grew in place by ``added_length`` characters (sender-side
          run coalescing; only ever the frontier run).

        Missing methods are simply skipped, so listeners only implement what
        they care about.  Listeners that key their bookkeeping by *handle*
        (:meth:`handle_at` / :meth:`order_key`) never need to shift anything
        on a split.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener: object) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, method: str, *args: object) -> None:
        for listener in self._listeners:
            hook = getattr(listener, method, None)
            if hook is not None:
                hook(*args)

    # ------------------------------------------------------------------
    # Handles <-> indices
    # ------------------------------------------------------------------
    def handle_at(self, index: int) -> int:
        """The stable handle of the event currently at ``index``.  O(1).

        Handles are never reused or renumbered: they survive splits (the
        handle stays with the *left* half; the right half gets a fresh one),
        in-place extensions, and any amount of later growth.
        """
        return self._order[index]

    def index_of_handle(self, handle: int) -> int:
        """Current local index of the event with the given handle.  O(log n)."""
        return bisect_left(self._labels, self._h_label[handle])

    def order_key(self, handle: int) -> int:
        """The handle's order label: comparing two events' labels orders them
        by current local index, without resolving either index.  O(1).

        Labels are reassigned only when a label-space re-spread occurs (rare,
        amortised), so consumers must read them live, never cache them.
        """
        return self._h_label[handle]

    def _parent_indices(self, handle: int) -> Version:
        """Parent handles resolved to sorted local indices, cached per
        generation (splits bump the generation; appends/extensions do not
        move anything, so caches stay valid)."""
        if self._h_pgen[handle] == self._gen:
            return self._h_pidx[handle]
        labels = self._h_label
        order_labels = self._labels
        resolved = tuple(
            sorted(bisect_left(order_labels, labels[p]) for p in self._h_parents[handle])
        )
        self._h_pidx[handle] = resolved
        self._h_pgen[handle] = self._gen
        return resolved

    def _intern_agent(self, agent: str) -> int:
        aid = self._agent_ids.get(agent)
        if aid is None:
            aid = self._agent_ids[agent] = len(self._agent_names)
            self._agent_names.append(agent)
        return aid

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Event]:
        views = self._h_view
        return iter([views[h] for h in self._order])

    def __getitem__(self, index: int) -> Event:
        return self._h_view[self._order[index]]

    def events(self) -> Sequence[Event]:
        """All events in local (topological) order."""
        views = self._h_view
        return [views[h] for h in self._order]

    @property
    def num_chars(self) -> int:
        """Total number of characters across all run events."""
        return self._num_chars

    def contains_id(self, event_id: EventId) -> bool:
        """Does some stored run cover this character id?  O(log runs)."""
        return self._locate_handle(event_id) is not None

    def locate(self, event_id: EventId) -> tuple[int, int]:
        """Resolve a character id to ``(event_index, offset)``.

        O(log runs) via the per-agent range map (no per-character memory).

        Raises:
            KeyError: if no run in this graph covers the id.
        """
        found = self._locate_handle(event_id)
        if found is None:
            raise KeyError(f"event id {event_id} not in graph")
        handle, offset = found
        return self.index_of_handle(handle), offset

    def index_of(self, event_id: EventId) -> int:
        """Local index of the event whose run covers the given id.

        O(log runs).

        Raises:
            KeyError: if the id is not (yet) covered by this graph.
        """
        return self.locate(event_id)[0]

    def _locate_handle(self, event_id: EventId) -> tuple[int, int] | None:
        index = self._agent_index.get(event_id.agent)
        if index is None:
            return None
        return index.find(event_id.seq)

    def id_of(self, index: int) -> EventId:
        """Id of the first character of the event at ``index``.  O(1)."""
        return self._h_id[self._order[index]]

    def parents_of(self, index: int) -> Version:
        """Local indices of the event's parents (sorted).  O(1) amortized
        (cached per handle; the cache is invalidated by splits and rebuilt
        lazily at O(parents log n))."""
        return self._parent_indices(self._order[index])

    def children_of(self, index: int) -> Sequence[int]:
        """Local indices of the event's children, maintained incrementally as
        events are appended or split.  O(children log n)."""
        return [self.index_of_handle(c) for c in self._h_children[self._order[index]]]

    @property
    def frontier(self) -> Version:
        """The current version of the graph: all events with no children."""
        return tuple(sorted(self.index_of_handle(h) for h in self._frontier))

    @property
    def frontier_handles(self) -> tuple[int, ...]:
        """The frontier as stable handles, unordered.  O(frontier size).

        Handle-keyed consumers (the critical-cut tracker) use this to test
        "is the newest event the sole head" without resolving any indices.
        """
        return tuple(self._frontier)

    def next_seq_for(self, agent: str) -> int:
        """The next unused sequence number for ``agent`` in this graph.

        O(1).  Covers everything the graph has ever stored for the agent,
        including runs later split or extended in place.
        """
        return self._next_seq.get(agent, 0)

    def inserted_chars_through(self, index: int) -> int:
        """Total characters inserted by events ``0 .. index`` (inclusive).

        O(1).  For any version ``V`` whose events all have indices
        ``<= index`` this is a safe **upper bound** on the document length at
        ``V`` (deletions only shrink it, and ``Events(V)`` is a subset of the
        prefix), which is exactly what a partial replay needs to size its
        placeholder (§3.6) — oversizing leaves unreferenced slack at the end
        of the placeholder and is harmless.
        """
        return self._cum_inserts[index]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_event(
        self,
        event_id: EventId,
        parents: Iterable[EventId] | Iterable[int],
        op: Operation,
        *,
        parents_are_indices: bool = False,
    ) -> Event:
        """Add a run event to the graph.

        Args:
            event_id: the globally unique id of the run's first character.
                The run's whole id span must be fresh.
            parents: parent events, either as :class:`EventId` values (any
                character of the parent run identifies it, and the dependency
                covers the whole run — use :meth:`ingest_run` for remote
                references, where a mid-run id means a dependency on only a
                prefix) or as local indices (set ``parents_are_indices``).  All
                parents must already be in the graph (causal delivery is the
                caller's responsibility — see
                :mod:`repro.network.causal_broadcast`).
            op: an insert or delete run operation (length >= 1).

        Returns:
            The newly created :class:`Event`.

        Complexity: O(parents + log runs) amortized — the children, frontier,
        range-map and cumulative-insert indices all update in place, which is
        what lets long-lived consumers (the merge engine, the cut tracker)
        avoid ever rescanning the graph.

        Raises:
            ValueError: if any character of the run's id span is already
                covered (duplicate), or a parent index is out of range.
        """
        agent_index = self._agent_index.get(event_id.agent)
        if self._locate_handle(event_id) is not None or (
            agent_index is not None
            and agent_index.next_start_in(event_id.seq, event_id.seq + op.length)
            is not None
        ):
            raise ValueError(f"duplicate event id span {event_id}+{op.length}")
        if parents_are_indices:
            parent_indices = sorted(int(p) for p in parents)
        else:
            parent_indices = sorted({self.index_of(p) for p in parents})  # type: ignore[arg-type]
        index = len(self._order)
        for p in parent_indices:
            if p < 0 or p >= index:
                raise ValueError(f"parent index {p} out of range for event {index}")
        order = self._order
        parent_handles = tuple(order[p] for p in parent_indices)

        handle = len(self._h_id)
        self._h_id.append(event_id)
        self._h_agent.append(self._intern_agent(event_id.agent))
        self._h_seq.append(event_id.seq)
        self._h_len.append(op.length)
        self._h_op.append(op)
        self._h_parents.append(parent_handles)
        self._h_children.append([])
        self._h_pidx.append(tuple(parent_indices))
        self._h_pgen.append(self._gen)
        label = self._labels[-1] + _LABEL_GAP if self._labels else 0
        self._h_label.append(label)
        event = Event(self, handle)
        self._h_view.append(event)

        order.append(handle)
        self._labels.append(label)
        if agent_index is None:
            agent_index = self._agent_index[event_id.agent] = RangeIndex(
                self._h_len.__getitem__
            )
        agent_index.register(event_id.seq, handle)
        self._num_chars += op.length
        previous = self._cum_inserts[-1] if self._cum_inserts else 0
        self._cum_inserts.append(previous + (op.length if op.is_insert else 0))
        for ph in parent_handles:
            self._h_children[ph].append(handle)
        # Maintain the frontier incrementally: the new event replaces any of
        # its parents that were frontier members, and is itself a frontier
        # member (nothing can be its child yet).
        if parent_handles:
            parent_set = set(parent_handles)
            self._frontier = [f for f in self._frontier if f not in parent_set]
        self._frontier.append(handle)
        expected = self._next_seq.get(event_id.agent, 0)
        if event_id.seq + op.length > expected:
            self._next_seq[event_id.agent] = event_id.seq + op.length
        self._notify("event_added", event)
        return event

    def extend_event(self, index: int, op: Operation) -> Event:
        """Grow the run at ``index`` in place by the run ``op`` continues.

        This is the sender-side run coalescing: a local edit that continues
        the frontier run (same agent, contiguous seqs, an insert continuing at
        the run's end or a delete at the same index) is folded into the
        existing event instead of creating a new one, so a single-keystroke
        session stores O(runs) events at the source.  The result is a legal
        re-encoding of the same history — a peer that already received the
        shorter run resolves the difference through the usual split-on-ingest
        machinery (:meth:`ingest_run` / :meth:`dependency_index`).

        The event must be the sole frontier head (which also makes it the last
        event in local order): the new characters depend on everything, which
        is exactly what "continuing the run" means.
        """
        handle = self._order[index]
        if self._frontier != [handle]:
            raise ValueError("only the sole frontier run can be extended in place")
        event_id = self._h_id[handle]
        old = self._h_op[handle]
        if self._next_seq.get(event_id.agent, 0) != event_id.seq + old.length:
            raise ValueError("cannot extend a run that is not the agent's latest")
        if old.kind is not op.kind:
            raise ValueError("cannot extend a run with an operation of another kind")
        if op.is_insert:
            if op.pos != old.pos + old.length:
                raise ValueError("insert does not continue the run")
            new_op = insert_op(old.pos, old.content + op.content)
        else:
            if op.pos != old.pos:
                raise ValueError("delete does not continue the run")
            new_op = delete_op(old.pos, old.length + op.length)
        self._h_op[handle] = new_op
        self._h_len[handle] = new_op.length
        self._num_chars += op.length
        if op.is_insert:
            self._cum_inserts[index] += op.length  # the sole frontier run is last
        self._next_seq[event_id.agent] = event_id.seq + new_op.length
        self._notify("event_extended", index, op.length)
        return self._h_view[handle]

    def add_local_event(self, agent: str, op: Operation) -> Event:
        """Add a run event generated locally by ``agent``.

        The new event's parents are the current frontier and its sequence
        numbers (one per character) are allocated automatically.
        """
        event_id = EventId(agent, self.next_seq_for(agent))
        return self.add_event(event_id, self.frontier, op, parents_are_indices=True)

    def split_event(self, index: int, offset: int) -> Event:
        """Split the run event at ``index`` in place, before character ``offset``.

        The event keeps its first ``offset`` characters (and its handle); the
        remainder becomes a new event inserted directly after it (at
        ``index + 1``) whose sole parent is the left half — exactly the
        chaining :func:`expand_to_chars` produces, so the split is
        semantically a no-op.  Every existing parent reference to the
        original event is rewritten to the right half (a dependency on a
        whole run is a dependency on its last character, which now lives in
        the right half and implies the left transitively).

        Returns the right half.  O(log n + children of the split run) Python
        work: the right half's order label is bisected between its
        neighbours, the split run's children (found via the child column)
        have one parent handle rewritten, and the parents-as-indices caches
        are invalidated wholesale by a generation bump.  The only O(n)
        residue is a pair of C-level array inserts into the order.  Splits
        only happen when interoperating with a peer that carved runs
        differently, never on the local editing path.
        """
        left = self._order[index]
        op = self._h_op[left]
        if offset <= 0 or offset >= op.length:
            raise ValueError(f"cannot split a run of length {op.length} at {offset}")

        label = self._split_label(index)
        right = len(self._h_id)
        right_op = op.slice(offset, op.length - offset)
        self._h_id.append(self._h_id[left].advance(offset))
        self._h_agent.append(self._h_agent[left])
        self._h_seq.append(self._h_seq[left] + offset)
        self._h_len.append(right_op.length)
        self._h_op.append(right_op)
        self._h_parents.append((left,))
        self._h_label.append(label)
        view = Event(self, right)
        self._h_view.append(view)

        self._h_op[left] = op.slice(0, offset)
        self._h_len[left] = offset

        # Children who depended on the whole run now depend on the right
        # half; the left half's only child is the right half.  Handles are
        # rewritten via the child column — no scan over the graph.
        moved = self._h_children[left]
        self._h_children.append(moved)
        self._h_children[left] = [right]
        for child in moved:
            self._h_parents[child] = tuple(
                right if p == left else p for p in self._h_parents[child]
            )
        # Invalidate the parents-as-indices caches (positions after the split
        # shift, and references to the split run change identity); the right
        # half's fresh cache entry is exact.
        self._gen += 1
        self._h_pidx.append((index,))
        self._h_pgen.append(self._gen)

        self._order.insert(index + 1, right)
        self._labels.insert(index + 1, label)
        # A frontier entry for the whole run moves to the right half.
        self._frontier = [right if f == left else f for f in self._frontier]
        # Cumulative insert counts: the left half's running total drops by the
        # right half's inserted chars; every later entry keeps its value (the
        # totals are unchanged, only the positions shift by one).
        right_inserts = right_op.length if right_op.is_insert else 0
        self._cum_inserts.insert(index, self._cum_inserts[index] - right_inserts)
        # The id range map refines: the left entry now covers less (its
        # length is consulted live) and the right half gets its own entry.
        self._agent_index[self._h_id[right].agent].register(self._h_seq[right], right)
        self._notify("event_split", index)
        return view

    def _split_label(self, index: int) -> int:
        """An order label strictly between positions ``index`` and
        ``index + 1``, re-spreading the label space if the gap is exhausted
        (needs ~20 splits between the same two events; O(n) then, amortised
        away)."""
        labels = self._labels
        left = labels[index]
        right = labels[index + 1] if index + 1 < len(labels) else left + 2 * _LABEL_GAP
        label = (left + right) // 2
        if label == left:
            h_label = self._h_label
            for pos, handle in enumerate(self._order):
                h_label[handle] = pos * _LABEL_GAP
            self._labels = [pos * _LABEL_GAP for pos in range(len(self._order))]
            left = self._labels[index]
            label = left + _LABEL_GAP // 2
        return label

    def dependency_id(self, index: int) -> EventId:
        """Id of the *last* character of the event at ``index``.

        This is the replication-safe way to reference a dependency on a run:
        a peer that carved the same history into finer runs resolves it to the
        event ending at that character, preserving exactly the intended causal
        coverage (a first-character id would under-specify it).
        """
        handle = self._order[index]
        return self._h_id[handle].advance(self._h_len[handle] - 1)

    def dependency_index(self, event_id: EventId) -> int:
        """Index of the event covering ids *up to and including* ``event_id``.

        If ``event_id`` falls mid-run, the stored run is split at the boundary
        first so that the returned event covers exactly the referenced prefix
        — the peer that emitted the reference did not causally depend on the
        rest of the run.  Raises :class:`KeyError` if the id is unknown.
        """
        found = self._locate_handle(event_id)
        if found is None:
            raise KeyError(f"event id {event_id} not in graph")
        handle, offset = found
        index = self.index_of_handle(handle)
        if offset + 1 < self._h_len[handle]:
            self.split_event(index, offset + 1)
        return index

    def ingest_run(
        self, event_id: EventId, parent_ids: Iterable[EventId], op: Operation
    ) -> list[Event]:
        """Add a (possibly differently-carved) remote run to the graph.

        The incoming id span is walked against stored coverage: sub-spans
        already covered are verified to carry the same operation (redelivery
        and legal re-carvings are idempotent), uncovered sub-spans are added
        as new events.  The first new sub-span takes ``parent_ids`` (resolved
        with :meth:`dependency_index`, splitting stored runs at mid-run parent
        references); later sub-spans chain onto the previous character of the
        run, mirroring :func:`expand_to_chars`.

        Returns the newly created events (empty for a full redelivery).
        Raises :class:`ValueError` if stored coverage disagrees with the
        incoming operation (same ids, different content — the one truly
        illegal divergence), and :class:`KeyError` if a needed parent is
        missing (the replication layer holds such events back).
        """
        added: list[Event] = []
        parent_events: list[Event] | None = None
        agent = event_id.agent
        seq = event_id.seq
        end = event_id.seq + op.length
        while seq < end:
            located = self._locate_handle(EventId(agent, seq))
            if located is not None:
                stored_handle, stored_offset = located
                span = min(self._h_len[stored_handle] - stored_offset, end - seq)
                self._verify_overlap(
                    stored_handle, stored_offset, op, seq - event_id.seq, span, event_id
                )
                seq += span
                continue
            agent_index = self._agent_index.get(agent)
            next_start = (
                agent_index.next_start_in(seq, end) if agent_index is not None else None
            )
            span = (next_start if next_start is not None else end) - seq
            offset = seq - event_id.seq
            if offset == 0:
                if parent_events is None:
                    # Resolve to Event views first: each dependency_index call
                    # may split a stored run, shifting later indices (the
                    # views' .index stays live).
                    parent_events = [
                        self[self.dependency_index(p)] for p in parent_ids
                    ]
                parent_indices: Iterable[int] = {e.index for e in parent_events}
            else:
                parent_indices = (self.dependency_index(EventId(agent, seq - 1)),)
            added.append(
                self.add_event(
                    EventId(agent, seq),
                    parent_indices,
                    op.slice(offset, span),
                    parents_are_indices=True,
                )
            )
            seq += span
        return added

    def _verify_overlap(
        self,
        stored_handle: int,
        stored_offset: int,
        op: Operation,
        op_offset: int,
        span: int,
        event_id: EventId,
    ) -> None:
        """Check that stored coverage agrees with an incoming run's sub-span."""
        stored_op = self._h_op[stored_handle]
        same = stored_op.kind is op.kind
        if same and op.is_insert:
            same = (
                stored_op.pos + stored_offset == op.pos + op_offset
                and stored_op.content[stored_offset : stored_offset + span]
                == op.content[op_offset : op_offset + span]
            )
        elif same:
            same = stored_op.pos == op.pos
        if not same:
            raise ValueError(
                f"remote event {event_id}+{op.length} conflicts with stored run "
                f"{self._h_id[stored_handle]}+{stored_op.length}: same ids, "
                f"different content"
            )

    def add_remote_event(
        self, event_id: EventId, parent_ids: Iterable[EventId], op: Operation
    ) -> list[Event]:
        """Add a run event received from another replica.

        Run boundaries are a local encoding detail, so the incoming run may be
        carved differently than this graph's coverage of the same characters:
        already-known sub-spans are skipped (delivery is idempotent), new
        sub-spans are added, and stored runs are split where the carvings
        disagree.  See :meth:`ingest_run` for the exact semantics and error
        cases.

        Returns the list of newly created events (empty if the run was fully
        known already).
        """
        return self.ingest_run(event_id, parent_ids, op)

    def merge_from(self, other: "EventGraph") -> list[int]:
        """Union this graph with ``other`` (paper §2.2).

        Events of ``other`` that are missing locally are added in ``other``'s
        local order, which is guaranteed to deliver parents before children.
        The two graphs may carve the same edits into different runs; the
        overlap handling is the same (shared) path as
        :meth:`add_remote_event`.

        Returns:
            The local indices (in *this* graph) of the events now covering the
            newly added id spans, ascending.  (A span added early in the merge
            may be split by a later event of the batch, in which case both
            halves are reported.)
        """
        added_spans: list[tuple[str, int, int]] = []
        for event in other.events():
            parent_ids = [other.dependency_id(p) for p in event.parents]
            for new_event in self.ingest_run(event.id, parent_ids, event.op):
                added_spans.append(
                    (new_event.id.agent, new_event.id.seq, new_event.op.length)
                )
        return self.indices_covering(added_spans)

    def indices_covering(self, spans: Iterable[tuple[str, int, int]]) -> list[int]:
        """Current event indices covering the given ``(agent, seq, length)`` spans.

        Used after a batch ingest: events added early in the batch may have
        been split (and every index shifted) by later events, so callers track
        the added *id spans* and resolve them to indices once the batch is
        done.
        """
        indices: set[int] = set()
        for agent, seq, length in spans:
            end = seq + length
            while seq < end:
                found = self._locate_handle(EventId(agent, seq))
                if found is None:
                    raise KeyError(f"event id {agent}:{seq} not in graph")
                handle, offset = found
                indices.add(self.index_of_handle(handle))
                seq += self._h_len[handle] - offset
        return sorted(indices)

    # ------------------------------------------------------------------
    # Version helpers
    # ------------------------------------------------------------------
    def version_from_ids(self, ids: Iterable[EventId]) -> Version:
        """Convert a set of event ids into a local-index version tuple."""
        return tuple(sorted({self.index_of(i) for i in ids}))

    def ids_from_version(self, version: Version) -> tuple[EventId, ...]:
        """Convert a local-index version into globally meaningful event ids.

        Each event is represented by the id of its **last** character (its
        :meth:`dependency_id`): a version means "everything up to and
        including these characters", and a peer that carved the same history
        into finer runs resolves a last-character id to exactly the right
        causal coverage.
        """
        return tuple(self.dependency_id(i) for i in version)

    def is_valid_version(self, version: Version) -> bool:
        """Check that ``version`` only references events present in the graph."""
        return all(0 <= i < len(self._order) for i in version)

    def summary(self) -> dict[str, int]:
        """Cheap summary statistics used by the trace tooling.

        ``events`` counts run events; ``inserts`` / ``deletes`` / ``chars``
        count characters, so they are invariant under run-length encoding.
        """
        inserted = sum(
            self._h_len[h] for h in self._order if self._h_op[h].is_insert
        )
        return {
            "events": len(self._order),
            "chars": self._num_chars,
            "inserts": inserted,
            "deletes": self._num_chars - inserted,
            "agents": len(self._next_seq),
        }


def expand_to_chars(graph: EventGraph) -> EventGraph:
    """The per-character expansion of a run graph (the correctness oracle).

    Every run event of length L becomes L chained single-character events
    carrying the same character ids: the first carries the run's parents, each
    subsequent character has the previous one as its sole parent — exactly how
    the history would look had it been recorded one keystroke at a time.
    Expanding an already per-character graph is the identity (up to object
    identity).
    """
    expanded = EventGraph()
    last_char_index: dict[int, int] = {}  # run event index -> index of its last char
    for event in graph.events():
        parents = tuple(sorted(last_char_index[p] for p in event.parents))
        for offset in range(event.op.length):
            char_event = expanded.add_event(
                event.id_at(offset),
                parents,
                event.op.char_at(offset),
                parents_are_indices=True,
            )
            parents = (char_event.index,)
        last_char_index[event.index] = len(expanded) - 1
    return expanded
