"""The persistent merge engine: live merges in O(new events) (paper §3.5–3.6).

The paper's headline promise for the *steady state* is that sequential events
bypass the walker entirely and a merge only replays the graph since the last
critical version.  A naive :class:`~repro.core.document.Document` gets the
replay-window part right but pays O(history) *bookkeeping* on every merge:
rebuilding the walker, materialising the full local order and re-scanning the
whole graph for critical versions even when a single event arrived.  Over a
long-lived replica that is quadratic.

:class:`MergeEngine` is the fix.  A document owns one engine for its whole
lifetime, and the engine maintains everything a merge needs *incrementally*:

* the :class:`~repro.core.causal_graph.CausalGraph` view and
  :class:`~repro.core.walker.EgWalker` are created once and reused — the
  event graph updates its children/frontier indices in place as events are
  appended, ingested or split, so there is nothing to rebuild;
* the critical cuts of the local order are tracked by a
  :class:`~repro.core.critical_versions.CriticalCutTracker` — O(1) amortized
  per appended event — so the replay base of §3.6 is a binary search over a
  short sorted list, not a linear scan;
* remote events that are causally after everything we have seen take the
  **sequential fast path**: their operations apply verbatim to the text,
  batched through :func:`~repro.core.walker.coalesce_ops`, and the walker is
  never touched (§3.5's transform-free case, done without even computing a
  replay order);
* when concurrency *is* in play, the walker's internal state stays resident
  between merges (a :class:`WalkerCheckpoint`): the next merge
  retreats/advances/applies only the new events against the live state
  instead of re-replaying the whole post-cut window.  Interop splits and
  in-place run extensions are folded into the resident state surgically
  (``checkpoints_patched``) rather than invalidating it.  The checkpoint is
  dropped only once a new critical version has *survived* subsequent
  deliveries (observed as the replay base advancing at the next merge, or a
  sequential run taking the fast path): a cut that merely forms at a batch's
  tail is routinely un-made by the next concurrent delivery, and dropping on
  it would force a full-window re-replay per delivery.  Once an episode
  really closes, memory returns to just the text (§3.5).

Per-merge cost, for a history of N events, a post-cut window of W events and
a batch of k new events:

====================================  ==============  =================
situation                             legacy rebuild  incremental engine
====================================  ==============  =================
sequential events (quiescent tail)    O(N)            O(k)
concurrent, state resident            O(N + W)        O(k) amortized
concurrent, first merge after a cut   O(N + W)        O(W)
====================================  ==============  =================

The legacy behaviour is kept (``incremental=False``) as the ablation
baseline; both paths produce identical documents, which the convergence
fuzzer checks against the per-character oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..rope import Rope
from .critical_versions import CriticalCutTracker, latest_critical_cut_before
from .event_graph import Version
from .ids import Operation
from .internal_state import InternalState
from .oplog import OpLog
from .topo_sort import sort_branch_aware
from .walker import EgWalker, ReplayResult, coalesce_ops

__all__ = ["MergeEngine", "MergeEngineStats", "WalkerCheckpoint"]


@dataclass(slots=True)
class MergeEngineStats:
    """Counters proving (or disproving) the O(new events) merge claim.

    ``last_merge_events_touched`` is the headline number: how many events the
    most recent merge had to look at, *including* bookkeeping.  For the
    incremental engine it is O(new events) in the steady state; for the
    legacy rebuild path it is Ω(history) on every merge because of the
    full-order materialisation and critical-cut scan (counted separately in
    ``order_events_materialised`` / ``cut_scan_events``, which stay 0 for the
    incremental engine).
    """

    merges: int = 0
    events_integrated: int = 0
    chars_integrated: int = 0
    #: Merges (and run events / characters) that took the sequential fast
    #: path: ops applied verbatim, no walker, no replay order.
    fast_path_merges: int = 0
    fast_path_events: int = 0
    fast_path_chars: int = 0
    #: Merges that resumed the resident walker state (only new events were
    #: replayed) vs. merges that replayed the post-cut window from scratch.
    resumed_merges: int = 0
    fresh_replays: int = 0
    #: Events replayed through the walker: window/gap events (already in the
    #: text, replayed silently) and new events (emitted).
    replayed_window_events: int = 0
    replayed_new_events: int = 0
    #: Checkpoint lifecycle: kept = a live state survived the merge; dropped
    #: = a critical version (or an in-place split/extension of covered
    #: events) invalidated it, returning the replica to text-only memory.
    checkpoints_kept: int = 0
    checkpoints_dropped: int = 0
    #: Checkpoints surgically patched in place instead of dropped: interop
    #: splits and in-place run extensions landing inside the resident window
    #: are folded into the live state (see the listener hooks), so a
    #: concurrent episode survives re-carvings without re-replaying it.
    checkpoints_patched: int = 0
    #: O(history) bookkeeping — incremental engine keeps all three at 0.
    order_events_materialised: int = 0
    cut_scan_events: int = 0
    walkers_rebuilt: int = 0
    #: Batches whose new events did not form a contiguous tail of the local
    #: order (never expected; handled by falling back to the legacy path).
    non_tail_batches: int = 0
    #: Work profile of the most recent merge.
    last_merge_events_touched: int = 0
    #: History queries (``text_at`` / ``diff``) answered by a walker replay:
    #: ``history_window_events`` were replayed silently (the ancestor window
    #: between the chosen critical-cut base and the *from* version) and
    #: ``history_new_events`` emitted operations.  A diff whose *from*
    #: version is itself a critical version has an empty window — O(new
    #: events) walker work, which ``last_history_events_touched`` proves.
    history_replays: int = 0
    history_window_events: int = 0
    history_new_events: int = 0
    last_history_events_touched: int = 0
    #: History diffs with no replayable event set between the versions
    #: (concurrent or backwards pairs): answered by a character-level text
    #: diff instead of the walker.
    history_text_diffs: int = 0
    #: Text diffs whose inputs exceeded the quadratic-cost limit and went
    #: through the prefix/suffix-trimming length guard (see
    #: ``repro.history.history.QUADRATIC_DIFF_LIMIT``) instead of raw
    #: difflib — keeps a server-side diff request from pinning the event
    #: loop on two long concurrent texts.
    history_diff_guards: int = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


@dataclass(slots=True)
class WalkerCheckpoint:
    """The walker state kept resident between merges.

    ``state`` covers exactly the events ``base_cut + 1 .. through - 1`` of
    the local order (everything at or before ``base_cut`` is represented by
    the placeholder), and ``prepare_version`` is where the last replay left
    the prepare version.
    """

    state: InternalState
    prepare_version: Version
    #: Local index of the critical-cut event the state's placeholder stands
    #: for (``None`` = the root version).
    base_cut: int | None
    #: Exclusive upper bound of the local indices folded into ``state``.
    through: int


class MergeEngine:
    """Persistent merge machinery owned by one :class:`Document`.

    The engine listens to the event graph (splits and in-place extensions can
    invalidate the resident state) and is handed each batch of newly ingested
    event indices via :meth:`integrate`, which it turns into transformed
    operations applied to the rope.  It is also the walker backend of the
    history subsystem (:meth:`history_ops` — ``text_at`` / ``diff`` replays
    resumed from tracked critical cuts).

    Args:
        oplog: the replica's event log; the engine registers itself as a
            graph listener when ``incremental`` is set.
        rope: the document text the transformed operations apply to.
        walker_options: :class:`EgWalker` configuration (backend, clearing,
            span merging, sort strategy) — fixed for the engine's lifetime.
        incremental: ``True`` (default) uses the persistent machinery
            described above; ``False`` selects the legacy rebuild-everything
            merge, kept as the ablation baseline.
    """

    def __init__(
        self,
        oplog: OpLog,
        rope: Rope,
        walker_options: dict[str, Any],
        *,
        incremental: bool = True,
    ) -> None:
        self.oplog = oplog
        self.rope = rope
        self.incremental = incremental
        self.stats = MergeEngineStats()
        self._walker_options = dict(walker_options)
        #: One walker for the engine's whole lifetime: the event graph and
        #: causal-graph view update in place, so there is nothing to rebuild.
        self.walker = EgWalker(oplog.graph, **self._walker_options)
        self._ckpt: WalkerCheckpoint | None = None
        #: Version -> replay-base cut memo for :meth:`_history_cut`, tagged
        #: with the graph length it was computed at.  Any append or split
        #: changes the length (and may re-point local indices or un-make
        #: cuts), which discards the whole memo; in-place extensions change
        #: neither indices nor cuts, so the memo survives them.
        self._history_cut_memo: tuple[int, dict[Version, int | None]] = (-1, {})
        if incremental:
            self.tracker: CriticalCutTracker | None = CriticalCutTracker(oplog.graph)
            oplog.graph.add_listener(self)
        else:
            self.tracker = None

    # ------------------------------------------------------------------
    # Graph listener hooks (checkpoint invalidation)
    # ------------------------------------------------------------------
    def event_split(self, index: int) -> None:
        """An interop re-carving split the run at ``index`` in place.

        Called by the event graph (listener hook).  A split is a semantic
        no-op and the state's records are keyed by character ids (which a
        split never changes), so the resident checkpoint is *patched*, never
        dropped:

        * split inside the covered window: only the per-event bookkeeping is
          re-keyed — a delete run's target list is cut at the split boundary
          (:meth:`InternalState.split_delete_targets`); insert runs need
          nothing (their spans split lazily on demand).  Tracked positions at
          or above the split shift up by one.
        * split at or below the base: no state is involved; just re-index the
          tracked positions.
        * split above ``through``: the state does not cover the run; nothing
          to do.

        O(checkpoint prepare-version heads + split run's target spans).
        """
        ckpt = self._ckpt
        if ckpt is None:
            return
        base = -1 if ckpt.base_cut is None else ckpt.base_cut
        if index >= ckpt.through:
            return
        if base < index:
            # The split run is folded into the live state.  Its records stay
            # valid verbatim; a delete run's retreat/advance bookkeeping is
            # keyed by the event's first-char id, so it is re-keyed under the
            # two halves' ids.
            graph = self.oplog.graph
            left = graph[index]
            if left.op.is_delete:
                ckpt.state.split_delete_targets(left.id, left.op.length)
            self.stats.checkpoints_patched += 1
        else:
            ckpt.base_cut = base + 1
        # Tracked positions at or above the split shift up by one; a version
        # naming the whole split run now names its right half (which implies
        # the left transitively).
        ckpt.through += 1
        ckpt.prepare_version = tuple(
            p + 1 if p >= index else p for p in ckpt.prepare_version
        )

    def event_extended(self, index: int, added_length: int) -> None:
        """The frontier run grew in place (sender-side coalescing).

        Listener hook.  When the checkpoint's prepare version is exactly the
        extended run — the common live-typing shape: the local user keeps
        typing at the sole frontier head while remote concurrency is resident
        — the continuation is folded straight into the live state
        (:meth:`InternalState.apply_insert` of the run's next characters /
        :meth:`InternalState.extend_delete`), which is indistinguishable from
        the run having been applied at its full length: the sole-frontier
        precondition of :meth:`EventGraph.extend_event` guarantees no other
        event was prepared after the run, so origins and positions are
        unaffected.  The document text was already updated by the local-edit
        path, so only the state needs the fold.

        If retreats are active (the prepare version is not the extended run
        alone), the state cannot absorb the continuation in place and the
        checkpoint is dropped — the rare case.  O(1) + O(spans folded).
        """
        ckpt = self._ckpt
        if ckpt is None or index >= ckpt.through:
            return
        if ckpt.prepare_version != (index,):
            self._drop_checkpoint()
            return
        event = self.oplog.graph[index]
        op = event.op  # already extended; recover the pre-extension length
        old_length = op.length - added_length
        if op.is_insert:
            ckpt.state.apply_insert(
                event.id.advance(old_length), op.pos + old_length, added_length
            )
        else:
            ckpt.state.extend_delete(event.id, op.pos, added_length)
        self.stats.checkpoints_patched += 1

    # ------------------------------------------------------------------
    # The merge entry point
    # ------------------------------------------------------------------
    def integrate(self, added: list[int]) -> list[Operation]:
        """Fold newly ingested events into the text.

        Args:
            added: local indices of the events the oplog just ingested (a
                contiguous tail of the local order; interop splits land below
                it by construction).

        Returns:
            The transformed operations that were applied to the rope, in
            order — the incremental update of §2.4 (coalesced into maximal
            runs on the incremental engine; per-event on the legacy path).

        Complexity: O(new events) for a sequential batch or while walker
        state is resident; O(window + new) on the first merge after a
        critical cut; the legacy ``incremental=False`` path adds Ω(history)
        bookkeeping per merge (the measured ablation).  See the class
        docstring's table.
        """
        if not added:
            return []
        stats = self.stats
        stats.merges += 1
        stats.events_integrated += len(added)
        graph = self.oplog.graph
        stats.chars_integrated += sum(graph[idx].op.length for idx in added)
        if not self.incremental:
            return self._integrate_legacy(added)
        first_new = min(added)
        if len(added) != len(graph) - first_new:
            # New events always form a contiguous tail of the local order
            # (splits of stored runs land below the first appended event);
            # if that invariant ever breaks, fall back to the always-correct
            # legacy path rather than miscount.
            stats.non_tail_batches += 1
            return self._integrate_legacy(added)
        return self._integrate_incremental(first_new)

    # ------------------------------------------------------------------
    # Incremental path
    # ------------------------------------------------------------------
    def _integrate_incremental(self, first_new: int) -> list[Operation]:
        graph = self.oplog.graph
        tracker = self.tracker
        stats = self.stats
        n = len(graph)
        new_events = list(range(first_new, n))

        # Sequential fast path: every new event whose parent version *and*
        # own version are critical applies verbatim (§3.5) — no walker, no
        # replay order, no state.  With batched delivery a single batch can
        # hold a sequential prefix followed by a concurrent tail, so the
        # critical run is peeled off the front and only the tail (if any)
        # goes through the replay machinery below.
        parent_pos = first_new - 1 if first_new > 0 else 0
        run_end = tracker.critical_run_end(parent_pos)
        if run_end >= first_new:
            prefix = list(range(first_new, run_end + 1))
            self._drop_checkpoint()  # a critical version formed at run_end
            ops = coalesce_ops(graph[idx].op for idx in prefix)
            self._apply_to_rope(ops)
            stats.fast_path_events += len(prefix)
            stats.fast_path_chars += sum(graph[idx].op.length for idx in prefix)
            if run_end == n - 1:
                # The whole batch was sequential.
                stats.fast_path_merges += 1
                stats.last_merge_events_touched = len(prefix)
                return ops
            # Concurrent tail: integrate it from the critical version the
            # prefix just formed (base = run_end, empty window).
            rest = self._integrate_incremental(run_end + 1)
            stats.last_merge_events_touched += len(prefix)
            return ops + rest

        # Replay base: the latest critical cut before the new events — a
        # binary search over the tracked cuts, not a graph scan.
        cut = tracker.latest_cut_before(first_new)
        base_version: Version = () if cut is None else (cut,)
        replay_start = 0 if cut is None else cut + 1

        ckpt = self._ckpt

        if ckpt is not None and ckpt.base_cut == cut and ckpt.through <= first_new:
            # Resume: the live state already covers the window up to
            # ``through``; silently fold in the local gap events (edits made
            # since the last merge), then replay only the new events.
            gap = list(range(ckpt.through, first_new))
            order = sort_branch_aware(graph, gap) + sort_branch_aware(graph, new_events)
            result = self.walker.transform(
                gap + new_events,
                base_version=base_version,
                order=order,
                emit_only=set(new_events),
                state=ckpt.state,
                start_prepare_version=ckpt.prepare_version,
                clearing=False,
            )
            stats.resumed_merges += 1
            stats.replayed_window_events += len(gap)
            stats.last_merge_events_touched = len(gap) + len(new_events)
            ckpt.prepare_version = result.prepare_version
            ckpt.through = n
            stats.checkpoints_kept += 1
        else:
            # Fresh window replay from the critical cut (§3.6).  The old
            # window is replayed silently to rebuild the state the new events
            # need; it is kept resident afterwards so the *next* merge in
            # this concurrent episode costs only its own new events.  Only
            # reaching this branch drops a previous checkpoint: the replay
            # base advancing past its ``base_cut`` means a critical version
            # *survived* the deliveries since the last merge, so the events
            # it covers really are final (§3.5).  A cut that merely formed at
            # a batch's tail proves nothing — the next concurrent delivery
            # routinely reaches behind it and un-makes it, and dropping
            # eagerly on such transient cuts forces a full-window re-replay
            # per delivery on ping-pong concurrent sessions.
            if ckpt is not None:
                self._drop_checkpoint()
            old_range = list(range(replay_start, first_new))
            order = sort_branch_aware(graph, old_range) + sort_branch_aware(
                graph, new_events
            )
            deletes_in_old = sum(
                graph[idx].op.length for idx in old_range if graph[idx].op.is_delete
            )
            result = self.walker.transform(
                old_range + new_events,
                base_version=base_version,
                base_doc_length=len(self.rope) + deletes_in_old,
                order=order,
                emit_only=set(new_events),
                # The state stays resident, so walker-internal clearing
                # (which would leave it representing only a window suffix)
                # is disabled.
                clearing=False,
            )
            stats.fresh_replays += 1
            stats.replayed_window_events += len(old_range)
            stats.last_merge_events_touched = len(old_range) + len(new_events)
            self._ckpt = WalkerCheckpoint(
                state=result.state,
                prepare_version=result.prepare_version,
                base_cut=cut,
                through=n,
            )
            stats.checkpoints_kept += 1

        stats.replayed_new_events += len(new_events)
        ops = coalesce_ops(op for entry in result.transformed for op in entry.ops)
        self._apply_to_rope(ops)
        return ops

    # ------------------------------------------------------------------
    # History replays (text_at / diff, resumed from critical cuts)
    # ------------------------------------------------------------------
    def history_ops(self, from_version: Version, to_version: Version) -> list[Operation]:
        """Operations transforming the text at ``from_version`` into the text
        at ``to_version`` — the walker backend of the history subsystem.

        Args:
            from_version: local-index version; must be an ancestor of (or
                equal to) ``to_version``.  The empty tuple means the root
                (so the result builds the text at ``to_version`` from ``""``).
            to_version: local-index version to reach.

        The replay base is the latest critical cut contained in
        ``from_version`` (a binary-search-backed lookup on the incremental
        engine's :class:`CriticalCutTracker`; the root for the legacy
        ``incremental=False`` engine — its ablation role).  The window
        ``Events(from) - Events(base)`` is replayed silently to rebuild the
        walker state the new events need, then ``Events(to) - Events(from)``
        replays with operations emitted — the §3.6 merge procedure pointed at
        history instead of at the live frontier.  Cost: O(window + new)
        walker work; when ``from_version`` is itself a critical version the
        window is empty and the cost is O(new events) exactly
        (``stats.last_history_events_touched`` records it).

        Returns:
            The transformed operations, coalesced into maximal runs; applying
            them in order to the text at ``from_version`` yields the text at
            ``to_version``.
        """
        graph = self.oplog.graph
        stats = self.stats
        causal = self.walker.causal
        cut = self._history_cut(from_version)
        base_version: Version = () if cut is None else (cut,)
        base_length = 0 if cut is None else graph.inserted_chars_through(cut)
        _, window = causal.diff(base_version, from_version)
        _, new_events = causal.diff(from_version, to_version)
        order = sort_branch_aware(graph, window) + sort_branch_aware(graph, new_events)
        result = self.walker.transform(
            window + new_events,
            base_version=base_version,
            base_doc_length=base_length,
            order=order,
            emit_only=set(new_events),
        )
        stats.history_replays += 1
        stats.history_window_events += len(window)
        stats.history_new_events += len(new_events)
        stats.last_history_events_touched = len(window) + len(new_events)
        return coalesce_ops(op for entry in result.transformed for op in entry.ops)

    def _history_cut(self, version: Version) -> int | None:
        """The latest critical cut contained in ``version`` (replay base).

        A critical cut ``c`` qualifies iff ``c ∈ Events(version)``: then
        ``Events(c)`` is exactly the local-order prefix through ``c``
        (criticality), every event of ``Events(version) - Events(c)`` sits
        after ``c`` in local order with no parent before ``c``, and the
        partial replay from ``(c,)`` is closed.  Criticality also makes the
        lookup trivial: any cut ``c <= max(version)`` is an ancestor of
        ``max(version)`` (every event after a cut depends on it), hence
        contained — so the answer is a single binary search over the tracked
        cuts, O(log cuts), memoised per version while the graph is unchanged
        (history browsing hits the same versions repeatedly — ``text_at``
        then ``diff`` then ``events_between`` — and each hit is an O(1) dict
        lookup on the version tuple).  ``None`` (replay from the root) when
        no cut qualifies or on the legacy engine (``incremental=False``),
        which keeps full-history replays as its ablation behaviour.
        """
        if not version or self.tracker is None:
            return None
        n = len(self.oplog.graph)
        memo_n, memo = self._history_cut_memo
        if memo_n != n:
            memo = {}
            self._history_cut_memo = (n, memo)
        if version in memo:
            return memo[version]
        cut = self.tracker.latest_cut_before(version[-1] + 1)
        memo[version] = cut
        return cut

    # ------------------------------------------------------------------
    # Legacy rebuild path (the ablation baseline)
    # ------------------------------------------------------------------
    def _integrate_legacy(self, added: list[int]) -> list[Operation]:
        """The original rebuild-everything merge (kept for ``incremental=False``).

        Every call rebuilds a fresh walker (and with it a causal-graph view),
        materialises the full local order and re-scans the whole graph for
        the latest critical cut — O(history) bookkeeping per merge, which the
        stats record so benchmarks can show the gap.
        """
        graph = self.oplog.graph
        stats = self.stats
        first_new = min(added)

        walker = EgWalker(graph, **self._walker_options)
        stats.walkers_rebuilt += 1
        local_order = list(range(len(graph)))
        stats.order_events_materialised += len(local_order)
        cut = latest_critical_cut_before(graph, local_order, first_new)
        stats.cut_scan_events += len(local_order)
        if cut is None:
            base_version: Version = ()
            replay_start = 0
        else:
            base_version = (local_order[cut],)
            replay_start = cut + 1

        old_range = [idx for idx in range(replay_start, first_new)]
        new_events = sorted(added)
        order = sort_branch_aware(graph, old_range) + sort_branch_aware(graph, new_events)
        deletes_in_old_range = sum(
            graph[idx].op.length for idx in old_range if graph[idx].op.is_delete
        )
        base_doc_length = len(self.rope) + deletes_in_old_range

        result: ReplayResult = walker.transform(
            old_range + new_events,
            base_version=base_version,
            base_doc_length=base_doc_length,
            order=order,
            emit_only=set(new_events),
        )
        stats.replayed_window_events += len(old_range)
        stats.replayed_new_events += len(new_events)
        stats.last_merge_events_touched = len(local_order)

        # Per-event ops, deliberately uncoalesced: the rebuild path preserves
        # the pre-engine behaviour exactly, as the ablation baseline.
        applied = [op for entry in result.transformed for op in entry.ops]
        self._apply_to_rope(applied)
        return applied

    # ------------------------------------------------------------------
    # Helpers / introspection
    # ------------------------------------------------------------------
    def _apply_to_rope(self, ops: list[Operation]) -> None:
        rope = self.rope
        for op in ops:
            if op.is_insert:
                rope.insert(op.pos, op.content)
            else:
                rope.delete(op.pos, op.length)

    def _drop_checkpoint(self) -> None:
        if self._ckpt is not None:
            self._ckpt = None
            self.stats.checkpoints_dropped += 1

    @property
    def walker_options(self) -> dict[str, Any]:
        """The walker configuration this engine was built with (a copy)."""
        return dict(self._walker_options)

    @property
    def has_resident_state(self) -> bool:
        """Is walker state currently kept between merges?  ``False`` in the
        steady state (memory is just the text plus the event graph)."""
        return self._ckpt is not None

    def resident_record_count(self) -> int:
        """Span records held by the resident state (0 in the steady state)."""
        return 0 if self._ckpt is None else self._ckpt.state.record_count()
